//! Quickstart: build one leakage-aware crossbar slice, look at its
//! circuit, and characterize it — in under a minute of compute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use leakage_noc::core::characterize::Characterizer;
use leakage_noc::core::config::CrossbarConfig;
use leakage_noc::core::schematic;
use leakage_noc::core::scheme::Scheme;

fn main() {
    // A reduced configuration (32-bit flit) keeps this example snappy;
    // CrossbarConfig::paper() is the full evaluation point.
    let cfg = CrossbarConfig::test_small();

    // 1. The circuit itself: Figure 1 as a netlist.
    println!("{}", schematic::export_summary(Scheme::Dfc, &cfg));

    // 2. Characterize the baseline and the DFC.
    let ch = Characterizer::new(&cfg);
    let sc = ch.characterize(Scheme::Sc).expect("SC characterization");
    let dfc = ch.characterize(Scheme::Dfc).expect("DFC characterization");

    println!(
        "SC  : H→L {}  L→H {}",
        sc.delay_high_to_low, sc.delay_low_to_high
    );
    println!(
        "DFC : H→L {}  L→H {}",
        dfc.delay_high_to_low, dfc.delay_low_to_high
    );
    println!(
        "DFC active leakage saving vs SC: {:.2}%",
        (1.0 - dfc.active_leakage.0 / sc.active_leakage.0) * 100.0
    );
    println!(
        "DFC standby leakage saving vs SC: {:.2}%",
        (1.0 - dfc.standby_leakage.0 / sc.standby_leakage.0) * 100.0
    );
    println!(
        "DFC minimum idle time at {}: {} cycles",
        cfg.clock, dfc.min_idle_time_cycles
    );
}
