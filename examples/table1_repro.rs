//! Reproduces the paper's Table 1 end-to-end at the full §3
//! configuration (5×5 crossbar, 128-bit flit, 3 GHz) and prints it
//! side-by-side with the published numbers.
//!
//! ```sh
//! cargo run --release --example table1_repro
//! ```
//!
//! Expect a few minutes of transient simulation in release mode.

use leakage_noc::core::config::CrossbarConfig;
use leakage_noc::core::table1::Table1;

fn main() {
    let cfg = CrossbarConfig::paper();
    let measured = Table1::generate(&cfg).expect("characterization pipeline");
    println!("=== measured ===\n{measured}");
    println!("=== published ===\n{}", Table1::paper_reference());

    let claims = measured.abstract_claims();
    println!(
        "headline ranges: active {:.1}%–{:.1}% | standby {:.1}%–{:.1}% | penalty ≤ {:.1}%",
        claims.active_savings_range.0 * 100.0,
        claims.active_savings_range.1 * 100.0,
        claims.standby_savings_range.0 * 100.0,
        claims.standby_savings_range.1 * 100.0,
        claims.delay_penalty_range.1 * 100.0,
    );
    let (g1, g2) = measured.segmentation_gains();
    println!(
        "segmentation gains: SDFC {:.1}% / SDPC {:.1}% (paper ≈20% / ≈30%)",
        g1 * 100.0,
        g2 * 100.0
    );
}
