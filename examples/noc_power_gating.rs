//! Network-level power gating (experiment X2, single-point view): run a
//! 4×4 mesh under uniform traffic, extract the crossbar-port
//! idle-interval distribution, compare what each crossbar scheme's
//! standby characteristics deliver under an idle-threshold sleep policy
//! — and then re-run the network with the sleep FSM *in the loop*, so
//! wake latency stalls real flits and the offline model is
//! cross-validated against measured cycle counters.
//!
//! ```sh
//! cargo run --release --example noc_power_gating
//! ```

use leakage_noc::core::characterize::Characterizer;
use leakage_noc::core::config::CrossbarConfig;
use leakage_noc::core::scheme::Scheme;
use leakage_noc::netsim::{MeshConfig, NetworkStats, Simulation, SleepConfig, TrafficPattern};
use leakage_noc::power::gating::{energy_from_counters, evaluate_policy, GatingPolicy};
use leakage_noc::power::report::TextTable;
use leakage_noc::power::router::RouterPowerModel;

fn mesh_cfg() -> MeshConfig {
    MeshConfig {
        width: 4,
        height: 4,
        injection_rate: 0.05,
        pattern: TrafficPattern::UniformRandom,
        packet_len_flits: 4,
        buffer_depth: 4,
        seed: 2005,
        ..MeshConfig::default()
    }
}

fn main() {
    let cfg = CrossbarConfig::paper();

    // 1. Simulate the (ungated) network and collect idle intervals.
    let mut sim = Simulation::new(mesh_cfg());
    let stats = sim.run(1000, 20000);
    let hist = stats.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS);
    println!(
        "mesh: latency {:.1} cycles, throughput {:.3} flits/node/cycle, \
         crossbar utilization {:.1}%, {} idle intervals",
        stats.avg_latency(),
        stats.throughput(),
        stats.crossbar_utilization() * 100.0,
        hist.interval_count()
    );

    // 2. Characterize every scheme and evaluate gating offline.
    let ch = Characterizer::new(&cfg);
    let mut table = TextTable::new(vec![
        "scheme".into(),
        "MIT (cycles)".into(),
        "threshold saved".into(),
        "oracle saved".into(),
        "sleep events".into(),
    ]);
    let mut scheme_params = Vec::new();
    for scheme in Scheme::ALL {
        let c = ch.characterize(scheme).expect("characterization");
        let model = RouterPowerModel::from_characterization(&c, &cfg);
        let params = model.port_gating_params(cfg.radix);
        let mit = params.min_idle_cycles(cfg.clock);
        let threshold =
            evaluate_policy(&hist, &params, GatingPolicy::IdleThreshold(mit), cfg.clock);
        let oracle = evaluate_policy(&hist, &params, GatingPolicy::Oracle, cfg.clock);
        table.row(vec![
            scheme.name().into(),
            mit.to_string(),
            format!("{:.1}%", threshold.savings_fraction() * 100.0),
            format!("{:.1}%", oracle.savings_fraction() * 100.0),
            threshold.sleep_events.to_string(),
        ]);
        scheme_params.push((scheme, params, mit));
    }
    println!("\ncrossbar leakage saved by sleep policies (vs never gating):");
    println!("{table}");

    // 3. Put the sleep FSM in the loop: wake latency now stalls real
    // flits, so each scheme pays a measurable latency penalty — and the
    // in-loop energy must agree with the offline model evaluated on the
    // same run's histograms.
    let base_latency = stats.avg_latency();
    let mut live = TextTable::new(vec![
        "scheme".into(),
        "policy".into(),
        "saved (live)".into(),
        "offline Δ".into(),
        "latency +cy".into(),
        "wake stalls".into(),
    ]);
    for (scheme, params, mit) in &scheme_params {
        let policy = GatingPolicy::IdleThreshold(*mit);
        let mut gated = Simulation::new(MeshConfig {
            gating: Some(SleepConfig {
                policy,
                wake_latency: params.wake_latency_cycles,
            }),
            ..mesh_cfg()
        });
        let gstats = gated.run(1000, 20000);
        let counters = gstats.total_gating_counters();
        let in_loop = energy_from_counters(&counters, params, cfg.clock);
        let offline = evaluate_policy(
            &gstats.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS),
            params,
            policy,
            cfg.clock,
        );
        let disagreement =
            (in_loop.energy_policy.0 - offline.energy_policy.0).abs() / offline.energy_policy.0;
        assert!(
            disagreement < 0.05,
            "{scheme}: in-loop vs offline energy disagree by {disagreement:.4}"
        );
        live.row(vec![
            scheme.name().into(),
            policy.to_string(),
            format!("{:.1}%", in_loop.savings_fraction() * 100.0),
            format!("{:.2}%", disagreement * 100.0),
            format!("{:+.2}", gstats.avg_latency() - base_latency),
            gstats.wake_stall_cycles().to_string(),
        ]);
    }
    println!("in-loop gating (sleep FSM in the cycle loop, wake latency stalls flits):");
    println!("{live}");
    println!(
        "reading: the pre-charged schemes (DPC/SDPC) save the most — their standby\n\
         state parks every off transistor on a high-Vt device and their short\n\
         breakeven lets them exploit even modest idle intervals; the in-loop runs\n\
         show the latency price of that sleep, which the offline histogram model\n\
         cannot see, while agreeing with it on energy to within 5%."
    );
}
