//! Network-level power gating (experiment X2, single-point view): run a
//! 4×4 mesh under uniform traffic, extract the crossbar-port
//! idle-interval distribution, and compare what each crossbar scheme's
//! standby characteristics deliver under an idle-threshold sleep policy.
//!
//! ```sh
//! cargo run --release --example noc_power_gating
//! ```

use leakage_noc::core::characterize::Characterizer;
use leakage_noc::core::config::CrossbarConfig;
use leakage_noc::core::scheme::Scheme;
use leakage_noc::netsim::{MeshConfig, Simulation, TrafficPattern};
use leakage_noc::power::gating::{evaluate_policy, GatingPolicy};
use leakage_noc::power::report::TextTable;
use leakage_noc::power::router::RouterPowerModel;

fn main() {
    let cfg = CrossbarConfig::paper();

    // 1. Simulate the network and collect idle intervals.
    let mut sim = Simulation::new(MeshConfig {
        width: 4,
        height: 4,
        injection_rate: 0.05,
        pattern: TrafficPattern::UniformRandom,
        packet_len_flits: 4,
        buffer_depth: 4,
        seed: 2005,
    });
    let stats = sim.run(1000, 20000);
    let hist = stats.merged_idle_histogram(4096);
    println!(
        "mesh: latency {:.1} cycles, throughput {:.3} flits/node/cycle, \
         crossbar utilization {:.1}%, {} idle intervals",
        stats.avg_latency(),
        stats.throughput(),
        stats.crossbar_utilization() * 100.0,
        hist.interval_count()
    );

    // 2. Characterize every scheme and evaluate gating.
    let ch = Characterizer::new(&cfg);
    let mut table = TextTable::new(vec![
        "scheme".into(),
        "MIT (cycles)".into(),
        "threshold saved".into(),
        "oracle saved".into(),
        "sleep events".into(),
    ]);
    for scheme in Scheme::ALL {
        let c = ch.characterize(scheme).expect("characterization");
        let model = RouterPowerModel::from_characterization(&c, &cfg);
        let params = model.port_gating_params(cfg.radix);
        let mit = params.min_idle_cycles(cfg.clock);
        let threshold =
            evaluate_policy(&hist, &params, GatingPolicy::IdleThreshold(mit), cfg.clock);
        let oracle = evaluate_policy(&hist, &params, GatingPolicy::Oracle, cfg.clock);
        table.row(vec![
            scheme.name().into(),
            mit.to_string(),
            format!("{:.1}%", threshold.savings_fraction() * 100.0),
            format!("{:.1}%", oracle.savings_fraction() * 100.0),
            threshold.sleep_events.to_string(),
        ]);
    }
    println!("\ncrossbar leakage saved by sleep policies (vs never gating):");
    println!("{table}");
    println!(
        "reading: the pre-charged schemes (DPC/SDPC) save the most — their standby\n\
         state parks every off transistor on a high-Vt device and their short\n\
         breakeven lets them exploit even modest idle intervals, which is the\n\
         paper's core argument for deploying them in an on-chip network."
    );
}
