//! Process/temperature sensitivity of the leakage savings (sign-off
//! style corner table): does the DPC/SDPC advantage survive at FF/SS
//! corners and across temperature? (The paper reports TT only.)
//!
//! ```sh
//! cargo run --release --example corner_sweep
//! ```

use leakage_noc::core::characterize::Characterizer;
use leakage_noc::core::config::CrossbarConfig;
use leakage_noc::core::scheme::Scheme;
use leakage_noc::power::report::TextTable;
use leakage_noc::tech::corners::{Corner, Temperature};
use leakage_noc::tech::node45::Node45;

fn main() {
    let mut table = TextTable::new(vec![
        "corner".into(),
        "SC standby (mW)".into(),
        "DFC saved".into(),
        "DPC saved".into(),
    ]);
    for corner in Corner::ALL {
        let cfg = CrossbarConfig {
            flit_bits: 32,
            sim_dt: 0.5e-12,
            tech: Node45::new(corner, Temperature::ROOM),
            ..CrossbarConfig::paper()
        };
        let ch = Characterizer::new(&cfg);
        let sc = ch.characterize(Scheme::Sc).expect("SC");
        let dfc = ch.characterize(Scheme::Dfc).expect("DFC");
        let dpc = ch.characterize(Scheme::Dpc).expect("DPC");
        let saved = |x: f64| format!("{:.1}%", (1.0 - x / sc.standby_leakage.0) * 100.0);
        table.row(vec![
            corner.to_string(),
            format!("{:.2}", sc.standby_leakage.0 * 1e3),
            saved(dfc.standby_leakage.0),
            saved(dpc.standby_leakage.0),
        ]);
    }
    println!("standby leakage savings across process corners (leakage at 110 °C):");
    println!("{table}");
    println!(
        "reading: the dual-Vt savings are corner-stable — the Vth offset between\n\
         flavours survives corner shifts, so the paper's conclusions do not hinge\n\
         on the typical corner."
    );
}
