//! Design-space exploration (experiment X3): run the slack-driven
//! dual-Vt optimizer over a range of delay budgets and print the
//! leakage/delay Pareto the paper's hand-designed schemes live on.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use leakage_noc::core::config::CrossbarConfig;
use leakage_noc::core::dual_vt;
use leakage_noc::core::scheme::Scheme;
use leakage_noc::power::report::TextTable;

fn main() {
    // A small flit keeps each optimizer trial (two transients per
    // candidate device) fast; the Vt conclusions are width-independent.
    let cfg = CrossbarConfig {
        flit_bits: 16,
        sim_dt: 1.0e-12,
        ..CrossbarConfig::paper()
    };

    let mut table = TextTable::new(vec![
        "budget".into(),
        "high-Vt devices".into(),
        "leakage saved".into(),
        "delay cost".into(),
    ]);
    for budget in [1.00, 1.02, 1.05, 1.10, 1.20] {
        let outcome = dual_vt::assign(Scheme::Sc, &cfg, budget).expect("optimizer run");
        let mut names = outcome.high_vt_devices.clone();
        names.sort();
        table.row(vec![
            format!("{:.0}%", (budget - 1.0) * 100.0),
            names.join(","),
            format!("{:.1}%", outcome.leakage_saving() * 100.0),
            format!("{:.1}%", outcome.delay_cost() * 100.0),
        ]);
    }
    println!("slack-driven dual-Vt assignment on the SC topology:");
    println!("{table}");
    println!(
        "reading: even a 0% budget admits off-critical-path devices (keeper, sleep) —\n\
         exactly the paper's DFC plan; larger budgets buy the driver halves, moving\n\
         toward the SDFC/SDPC assignments."
    );
}
