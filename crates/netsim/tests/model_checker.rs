//! Schedule-exploring model-checker tests for the `netsim::sync`
//! primitives (`cargo test -p lnoc-netsim --features model`).
//!
//! Positive tests prove the protocol: for 2 shards every schedule (and
//! every value a weak load may observe) is explored exhaustively; for
//! 3 shards exploration is CHESS-style preemption-bounded. Negative
//! tests prove the checker has teeth: each seeded mutation of the
//! barrier (a removed release edge, a removed acquire edge, a cut
//! release-sequence chain, a skipped generation bump) and a frozen
//! mailbox parity must be detected as a failing schedule.

#![cfg(feature = "model")]

use lnoc_netsim::sync::model::Explorer;
use lnoc_netsim::sync::{BarrierMutation, Mailboxes, ShardSlots, SpinBarrier};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A barrier plus per-shard watchdog slots — the exact shape of the
/// sharded kernel's compute→exchange handoff.
struct BarrierRig {
    barrier: SpinBarrier,
    slots: Vec<ShardSlots>,
}

fn rig(n: usize, mutation: BarrierMutation) -> BarrierRig {
    BarrierRig {
        barrier: SpinBarrier::with_mutation(n, mutation),
        slots: (0..n).map(|_| ShardSlots::default()).collect(),
    }
}

/// One watchdog round: publish, cross the barrier, check that every
/// *peer* shard's publication is visible — the invariant the global
/// watchdog decision rests on. (A shard's own slots are trivially
/// fresh, so reading them back would only inflate the schedule space
/// without adding coverage.) Any stale read fails the round.
fn watchdog_round(state: &BarrierRig, tid: usize, round: u64) {
    let parity = (round % 2) as usize;
    state.slots[tid].publish(parity, round * 10 + tid as u64 + 7, tid as u64 + 1);
    state.barrier.wait();
    for (peer, slots) in state.slots.iter().enumerate() {
        if peer == tid {
            continue;
        }
        assert_eq!(
            slots.read_progress(parity),
            round * 10 + peer as u64 + 7,
            "stale progress slot crossed the barrier"
        );
        assert_eq!(
            slots.read_buffered(parity),
            peer as u64 + 1,
            "stale buffered slot crossed the barrier"
        );
    }
}

#[test]
fn slots_publish_visible_after_barrier_two_shards_exhaustive() {
    let report = Explorer::exhaustive().check(
        2,
        || rig(2, BarrierMutation::None),
        |state, tid| watchdog_round(state, tid, 0),
    );
    report.assert_passed();
    assert!(
        report.executions > 50,
        "expected a real schedule space, explored only {}",
        report.executions
    );
}

#[test]
fn slots_publish_visible_after_barrier_three_shards_bounded() {
    let report = Explorer::with_preemption_bound(2).check(
        3,
        || rig(3, BarrierMutation::None),
        |state, tid| watchdog_round(state, tid, 0),
    );
    report.assert_passed();
    assert!(
        report.executions > 100,
        "expected a real schedule space, explored only {}",
        report.executions
    );
}

#[test]
fn barrier_two_rounds_no_lost_flip() {
    // Two consecutive crossings: the count reset (Relaxed, ordered by
    // the Release publish) must leave round 2 starting from zero, and
    // no generation flip may be lost between rounds.
    let report = Explorer::with_preemption_bound(3).check(
        2,
        || rig(2, BarrierMutation::None),
        |state, tid| {
            watchdog_round(state, tid, 0);
            watchdog_round(state, tid, 1);
        },
    );
    report.assert_passed();
}

#[test]
fn poison_unblocks_every_waiter() {
    // Thread 0 never joins the barrier — it poisons instead (what
    // PoisonGuard does when a worker unwinds). In *every* schedule the
    // waiters must panic out of `wait` rather than deadlock.
    let report = Explorer::exhaustive().check(
        2,
        || rig(2, BarrierMutation::None),
        |state, tid| {
            if tid == 0 {
                state.barrier.poison();
            } else {
                let caught = catch_unwind(AssertUnwindSafe(|| state.barrier.wait()));
                assert!(caught.is_err(), "waiter crossed a poisoned barrier");
            }
        },
    );
    report.assert_passed();
}

#[test]
fn poison_unblocks_every_waiter_three_shards() {
    let report = Explorer::with_preemption_bound(2).check(
        3,
        || rig(3, BarrierMutation::None),
        |state, tid| {
            if tid == 0 {
                state.barrier.poison();
            } else {
                let caught = catch_unwind(AssertUnwindSafe(|| state.barrier.wait()));
                assert!(caught.is_err(), "waiter crossed a poisoned barrier");
            }
        },
    );
    report.assert_passed();
}

/// Two shards exchanging one message per cycle through the
/// double-buffered mailboxes, parity-switching each cycle — the claim
/// under test is that *one* barrier per cycle is enough because the
/// parity a shard refills is never the parity its peer is draining.
struct MailRig {
    barrier: SpinBarrier,
    mail: Mailboxes<u64>,
    freeze_parity: bool,
}

fn mail_round(state: &MailRig, tid: usize) {
    let peer = 1 - tid;
    let mut staged: Vec<u64> = Vec::new();
    let mut drained: Vec<u64> = Vec::new();
    for cycle in 1..=2u64 {
        let parity = if state.freeze_parity {
            0
        } else {
            (cycle % 2) as usize
        };
        staged.push(tid as u64 * 100 + cycle);
        let (_, out_bx) = state.mail.outboxes(tid)[0];
        state.mail.send(out_bx, parity, &mut staged);
        state.barrier.wait();
        let (_, in_bx) = state.mail.inboxes(tid)[0];
        state.mail.receive(in_bx, parity, &mut drained);
        assert_eq!(
            drained.as_slice(),
            &[peer as u64 * 100 + cycle],
            "torn or stale mailbox read"
        );
        drained.clear();
    }
}

#[test]
fn mailbox_parity_roundtrip_never_tears() {
    let report = Explorer::with_preemption_bound(3).check(
        2,
        || MailRig {
            barrier: SpinBarrier::new(2),
            mail: Mailboxes::from_edges(2, &[(0, 1, 1), (1, 0, 1)]),
            freeze_parity: false,
        },
        mail_round,
    );
    report.assert_passed();
}

#[test]
fn detects_frozen_mailbox_parity() {
    // Collapse the double-buffering to a single parity: a shard that
    // races ahead now refills the very box its peer is still draining.
    // The checker must find the schedule where the send hits an
    // undrained box (the emptiness invariant the real kernel asserts).
    let report = Explorer::with_preemption_bound(3).check(
        2,
        || MailRig {
            barrier: SpinBarrier::new(2),
            mail: Mailboxes::from_edges(2, &[(0, 1, 1), (1, 0, 1)]),
            freeze_parity: true,
        },
        mail_round,
    );
    report.assert_failed("drained");
}

#[test]
fn detects_skipped_generation_bump() {
    // The lost flip leaves every waiter spinning on a generation that
    // will never advance: a deadlock in every schedule.
    let report = Explorer::exhaustive().check(
        2,
        || rig(2, BarrierMutation::SkipGenerationBump),
        |state, tid| watchdog_round(state, tid, 0),
    );
    report.assert_failed("deadlock");
}

#[test]
fn detects_relaxed_generation_store() {
    // Removed release edge (publisher side): waiters cross the barrier
    // without inheriting the publishers' slot stores.
    let report = Explorer::exhaustive().check(
        2,
        || rig(2, BarrierMutation::RelaxedGenerationStore),
        |state, tid| watchdog_round(state, tid, 0),
    );
    let f = report.assert_failed("stale");
    assert!(!f.trace.is_empty(), "counterexample must carry a trace");
}

#[test]
fn detects_relaxed_spin_load() {
    // Removed acquire edge (waiter side): same stale reads, other half
    // of the release/acquire pair.
    let report = Explorer::exhaustive().check(
        2,
        || rig(2, BarrierMutation::RelaxedSpinLoad),
        |state, tid| watchdog_round(state, tid, 0),
    );
    report.assert_failed("stale");
}

#[test]
fn detects_relaxed_arrival() {
    // Cut release-sequence chain through the arrival counter: the last
    // arriver crosses without its peers' stores.
    let report = Explorer::exhaustive().check(
        2,
        || rig(2, BarrierMutation::RelaxedArrival),
        |state, tid| watchdog_round(state, tid, 0),
    );
    report.assert_failed("stale");
}
