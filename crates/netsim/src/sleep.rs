//! Per-output-VC-lane sleep FSM — power gating *inside* the cycle
//! loop.
//!
//! The offline model in [`lnoc_power::gating`] integrates a policy over
//! idle-interval histograms after the run; it cannot see that a sleeping
//! port stalls real flits while it wakes. This module puts the sleep
//! controller in the loop: every router output VC lane — an
//! `(output port, VC)` pair, physically the downstream input VC buffer
//! plus its share of the crossbar output — carries a four-state FSM
//!
//! ```text
//! Active ──idle──► DrowsyCountdown ──counter ≥ threshold──► Asleep
//!    ▲                                                         │
//!    └────────── Waking(wake_latency) ◄──────flit can move─────┘
//! ```
//!
//! driven by a [`GatingPolicy`]. A flit that arrives at a sleeping lane
//! waits out the wake latency — so gated runs report both the energy
//! *and* the latency/throughput penalty, and the measured
//! [`GatingCounters`] cross-validate the offline model on the same run.
//! Because the FSM granularity is the VC lane, an empty VC bank sleeps
//! while a sibling VC of the same port streams a worm.
//!
//! Timing contract (what makes in-loop energy agree with
//! [`lnoc_power::gating::evaluate_policy`] on the same histograms):
//!
//! * the sleep signal asserts at the end of the cycle on which the idle
//!   counter *reaches* the threshold — an interval of exactly
//!   `threshold` cycles still pays the transition;
//! * [`GatingPolicy::Immediate`] parks the port the moment a send
//!   completes with nothing queued behind it, so whole intervals are
//!   spent in standby;
//! * waking cycles are billed at standby power (the transition energy
//!   carries the switching overhead);
//! * a port sleeps at most once per idle interval — after a wake it
//!   stays powered until the pending flit departs.

use lnoc_power::gating::{GatingCounters, GatingPolicy};
use serde::{Deserialize, Serialize};

/// In-loop gating configuration for every router output VC lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SleepConfig {
    /// When to assert the sleep signal. [`GatingPolicy::Oracle`] needs
    /// future knowledge and is rejected by the simulator.
    pub policy: GatingPolicy,
    /// Cycles a sleeping port needs before it can carry a flit again.
    pub wake_latency: u32,
}

impl SleepConfig {
    /// The idle-cycle count at which the FSM asserts sleep, or `None`
    /// when the policy never sleeps in-loop.
    pub fn threshold(&self) -> Option<u32> {
        match self.policy {
            GatingPolicy::Never => None,
            GatingPolicy::Immediate => Some(0),
            GatingPolicy::IdleThreshold(th) => Some(th),
            // Rejected by `Simulation::new`; treated as Never here so
            // the FSM itself stays total.
            GatingPolicy::Oracle => None,
        }
    }
}

/// The four sleep states of one output VC lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SleepState {
    /// Powered and either carrying a flit or just finished one.
    #[default]
    Active,
    /// Powered but idle, counting toward the sleep threshold (the
    /// count itself is the router's authoritative idle-run counter,
    /// passed into [`SleepFsm::settle`] as `idle_run`).
    DrowsyCountdown,
    /// In standby: leaking at the standby level, unable to carry flits.
    Asleep,
    /// Powering back up; flits stall until the countdown expires.
    Waking {
        /// Stall cycles remaining before the port is usable.
        remaining: u32,
    },
}

/// One port's sleep controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SleepFsm {
    state: SleepState,
    /// Set while the current idle interval has already slept once;
    /// suppresses sleep/wake thrash when a woken port is back-pressured
    /// before its flit can depart.
    slept_this_interval: bool,
}

impl SleepFsm {
    /// Current state (for diagnostics and tests).
    pub fn state(&self) -> SleepState {
        self.state
    }

    /// Start-of-cycle gate: advances the wake countdown and triggers
    /// `Asleep → Waking` when a flit can actually move (`wants` — a
    /// flit is queued for this output *and* downstream can accept it).
    /// Returns whether the port may transmit this cycle.
    pub fn gate(&mut self, wants: bool, wake_latency: u32) -> bool {
        match self.state {
            SleepState::Active | SleepState::DrowsyCountdown => true,
            SleepState::Asleep => {
                if wants {
                    if wake_latency == 0 {
                        self.state = SleepState::Active;
                        true
                    } else {
                        self.state = SleepState::Waking {
                            remaining: wake_latency,
                        };
                        false
                    }
                } else {
                    false
                }
            }
            SleepState::Waking { remaining } => {
                if remaining <= 1 {
                    self.state = SleepState::Active;
                    true
                } else {
                    self.state = SleepState::Waking {
                        remaining: remaining - 1,
                    };
                    false
                }
            }
        }
    }

    /// End-of-cycle settle: bills this cycle to a counter bucket,
    /// applies the sleep-entry rule, and resets on a send.
    ///
    /// `idle_run` is the port's consecutive-idle-cycle count after this
    /// cycle — or, on a send, the length of the idle interval that just
    /// ended. `stalled` is whether a transmittable flit waited on the
    /// wakeup this cycle; `wants_after` is whether another flit is
    /// already queued for this output (and deliverable) after this
    /// cycle's send — [`GatingPolicy::Immediate`] parks the port only
    /// when nothing is waiting, since a zero-length gap can never
    /// recoup the transition energy.
    pub fn settle(
        &mut self,
        sent: bool,
        stalled: bool,
        wants_after: bool,
        idle_run: u64,
        cfg: &SleepConfig,
        counters: &mut GatingCounters,
    ) {
        // Account the cycle by the state it was spent in.
        match self.state {
            SleepState::Active | SleepState::DrowsyCountdown => {
                if sent {
                    counters.cycles_busy += 1;
                } else {
                    counters.cycles_idle_awake += 1;
                }
            }
            SleepState::Asleep => counters.cycles_asleep += 1,
            SleepState::Waking { .. } => counters.cycles_waking += 1,
        }
        if stalled {
            counters.wake_stall_cycles += 1;
        }

        let threshold = cfg.threshold();
        if sent {
            // A sleep that ended with a zero-length idle interval
            // (Immediate park, zero wake latency, flit on the very next
            // cycle) never materialized: the offline model cannot even
            // record the interval, so refund the transition.
            if self.slept_this_interval && idle_run == 0 {
                counters.sleep_entries = counters.sleep_entries.saturating_sub(1);
            }
            self.slept_this_interval = false;
            // Immediate gating parks the port the moment a send
            // completes with nothing queued behind it, so whole idle
            // intervals are spent in standby.
            if threshold == Some(0) && !wants_after {
                self.state = SleepState::Asleep;
                self.slept_this_interval = true;
                counters.sleep_entries += 1;
            } else {
                self.state = SleepState::Active;
            }
            return;
        }

        // Idle cycle: drowsy countdown / sleep entry, from awake states
        // only, at most once per interval.
        if matches!(self.state, SleepState::Active | SleepState::DrowsyCountdown) {
            if let Some(th) = threshold {
                if !self.slept_this_interval && idle_run >= th as u64 {
                    self.state = SleepState::Asleep;
                    self.slept_this_interval = true;
                    counters.sleep_entries += 1;
                } else {
                    self.state = SleepState::DrowsyCountdown;
                }
            }
        }
    }

    /// Forces the controller back to `Active` and clears interval
    /// state — used when the measurement window opens so in-loop
    /// accounting and the (also reset) idle histograms see the same
    /// intervals.
    pub fn reset(&mut self) {
        *self = SleepFsm::default();
    }

    /// Whether this controller's future under continued idleness is a
    /// closed-form function of the skipped cycle count — the
    /// active-set kernel's per-port precondition for bulk settling.
    ///
    /// Every state except `Waking` qualifies:
    ///
    /// * `Asleep` bills standby forever;
    /// * `Active`/`DrowsyCountdown` either stays awake forever (no
    ///   threshold, or the interval already slept once) or sleeps on
    ///   the *predictable* cycle its idle run reaches the threshold;
    /// * `Waking` advances per cycle, but a waking port always has a
    ///   buffered flit waiting on it, so it can never belong to an
    ///   empty (quiescent) router in the first place.
    pub fn idle_predictable(&self) -> bool {
        !matches!(self.state, SleepState::Waking { .. })
    }

    /// Settles `k` consecutive idle cycles in O(1) — the bulk
    /// equivalent of `k` calls to [`SleepFsm::settle`] with
    /// `sent = false`. `idle_run_before` is the port's idle-run
    /// counter *before* those `k` cycles, so a threshold walk still
    /// asserts sleep on exactly the cycle the run reaches the
    /// threshold, bills the transition once, and spends the remainder
    /// in standby — bit-identical to the dense replay. Returns how
    /// many of the `k` cycles the port spent awake, each of which
    /// performs one switch arbitration in the dense loop (so callers
    /// can bulk-account that too).
    ///
    /// # Panics
    ///
    /// Panics (in debug) on a `Waking` port — see
    /// [`SleepFsm::idle_predictable`].
    pub fn settle_idle_bulk(
        &mut self,
        k: u64,
        idle_run_before: u64,
        threshold: Option<u32>,
        counters: &mut GatingCounters,
    ) -> u64 {
        debug_assert!(self.idle_predictable(), "bulk settle on a waking port");
        match self.state {
            SleepState::Asleep => {
                counters.cycles_asleep += k;
                0
            }
            SleepState::Active | SleepState::DrowsyCountdown => {
                let walk = match threshold {
                    // Sleeping can still fire: it does so on the cycle
                    // the idle run reaches the threshold (at least one
                    // cycle out — the run had not reached it yet).
                    Some(th) if !self.slept_this_interval => {
                        Some((th as u64).saturating_sub(idle_run_before).max(1))
                    }
                    _ => None,
                };
                match walk {
                    Some(until_sleep) if k >= until_sleep => {
                        counters.cycles_idle_awake += until_sleep;
                        counters.cycles_asleep += k - until_sleep;
                        counters.sleep_entries += 1;
                        self.state = SleepState::Asleep;
                        self.slept_this_interval = true;
                        until_sleep
                    }
                    _ => {
                        counters.cycles_idle_awake += k;
                        // The per-cycle settle moves an idle Active
                        // port into DrowsyCountdown when a threshold
                        // policy is armed; mirror that so the state
                        // after the bulk matches the dense loop.
                        if threshold.is_some() {
                            self.state = SleepState::DrowsyCountdown;
                        }
                        k
                    }
                }
            }
            SleepState::Waking { .. } => unreachable!("waking ports are never quiescent"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(policy: GatingPolicy, wake: u32) -> SleepConfig {
        SleepConfig {
            policy,
            wake_latency: wake,
        }
    }

    #[test]
    fn threshold_fsm_walks_all_four_states() {
        let c = cfg(GatingPolicy::IdleThreshold(2), 1);
        let mut f = SleepFsm::default();
        let mut k = GatingCounters::default();

        // Two idle cycles: countdown, then sleep on the cycle the
        // counter reaches the threshold.
        assert!(f.gate(false, c.wake_latency));
        f.settle(false, false, false, 1, &c, &mut k);
        assert_eq!(f.state(), SleepState::DrowsyCountdown);
        assert!(f.gate(false, c.wake_latency));
        f.settle(false, false, false, 2, &c, &mut k);
        assert_eq!(f.state(), SleepState::Asleep);
        assert_eq!(k.sleep_entries, 1);
        assert_eq!(k.cycles_idle_awake, 2);

        // Stays asleep while nothing wants it.
        assert!(!f.gate(false, c.wake_latency));
        f.settle(false, false, false, 3, &c, &mut k);
        assert_eq!(k.cycles_asleep, 1);

        // A flit arrives: one waking stall cycle, then transmit.
        assert!(!f.gate(true, c.wake_latency));
        assert_eq!(f.state(), SleepState::Waking { remaining: 1 });
        f.settle(false, true, false, 4, &c, &mut k);
        assert_eq!(k.cycles_waking, 1);
        assert_eq!(k.wake_stall_cycles, 1);
        assert!(f.gate(true, c.wake_latency));
        f.settle(true, false, false, 5, &c, &mut k);
        assert_eq!(f.state(), SleepState::Active);
        assert_eq!(k.cycles_busy, 1);
        assert_eq!(k.sleep_entries, 1, "real sleep keeps its transition");
    }

    #[test]
    fn immediate_parks_after_send() {
        let c = cfg(GatingPolicy::Immediate, 1);
        let mut f = SleepFsm::default();
        let mut k = GatingCounters::default();
        f.gate(true, c.wake_latency);
        f.settle(true, false, false, 0, &c, &mut k);
        assert_eq!(f.state(), SleepState::Asleep);
        assert_eq!(k.sleep_entries, 1);
    }

    #[test]
    fn sleeps_at_most_once_per_interval() {
        let c = cfg(GatingPolicy::IdleThreshold(1), 1);
        let mut f = SleepFsm::default();
        let mut k = GatingCounters::default();
        // Idle to sleep.
        f.gate(false, c.wake_latency);
        f.settle(false, false, false, 1, &c, &mut k);
        assert_eq!(f.state(), SleepState::Asleep);
        // Wake, but the flit stays blocked (no send) for many cycles:
        // the port must not re-enter sleep mid-interval.
        f.gate(true, c.wake_latency);
        f.settle(false, true, false, 2, &c, &mut k);
        for i in 0..10 {
            f.gate(false, c.wake_latency);
            f.settle(false, false, false, 3 + i, &c, &mut k);
            assert_ne!(f.state(), SleepState::Asleep);
        }
        assert_eq!(k.sleep_entries, 1);
        // After the send the interval ends and sleeping re-arms.
        f.gate(true, c.wake_latency);
        f.settle(true, false, false, 13, &c, &mut k);
        f.gate(false, c.wake_latency);
        f.settle(false, false, false, 1, &c, &mut k);
        assert_eq!(k.sleep_entries, 2);
    }

    #[test]
    fn zero_wake_latency_transmits_same_cycle() {
        let c = cfg(GatingPolicy::Immediate, 0);
        let mut f = SleepFsm::default();
        let mut k = GatingCounters::default();
        f.gate(true, c.wake_latency);
        f.settle(true, false, false, 0, &c, &mut k);
        assert_eq!(f.state(), SleepState::Asleep);
        assert_eq!(k.sleep_entries, 1);
        assert!(f.gate(true, c.wake_latency), "L=0 wake is free");
        // The park lasted zero idle cycles — no histogram interval ever
        // existed, so the transition is refunded.
        f.settle(true, false, false, 0, &c, &mut k);
        assert_eq!(k.sleep_entries, 1, "park + refund + re-park nets one");
        assert_eq!(f.state(), SleepState::Asleep);
        let refunded = k.sleep_entries;
        // A park that does cover idle cycles keeps its transition.
        f.gate(false, c.wake_latency);
        f.settle(false, false, false, 1, &c, &mut k);
        f.gate(true, c.wake_latency);
        f.settle(true, false, false, 1, &c, &mut k);
        assert_eq!(k.sleep_entries, refunded + 1);
    }

    #[test]
    fn bulk_idle_settle_matches_repeated_settles() {
        // Drive controllers into every idle-predictable configuration
        // — including mid-walk states where the threshold will still
        // fire — then check that settling k idle cycles in bulk
        // produces the same state and counters as k per-cycle
        // gate+settle rounds.
        let asleep = |c: &SleepConfig| {
            let mut f = SleepFsm::default();
            let mut k = GatingCounters::default();
            let mut run = 0;
            while f.state() != SleepState::Asleep {
                run += 1;
                f.gate(false, c.wake_latency);
                f.settle(false, false, false, run, c, &mut k);
            }
            (f, run)
        };
        let drowsy_after_sleep = |c: &SleepConfig| {
            // Sleep, wake on a flit that stays blocked, then go idle
            // again: slept_this_interval suppresses re-entry.
            let (mut f, mut run) = asleep(c);
            f.gate(true, c.wake_latency);
            f.settle(false, true, false, run + 1, c, &mut k_scratch());
            f.gate(false, c.wake_latency);
            run += 2;
            f.settle(false, false, false, run, c, &mut k_scratch());
            assert_eq!(f.state(), SleepState::DrowsyCountdown);
            (f, run)
        };
        let mid_walk = |c: &SleepConfig, idles: u64| {
            // A fresh interval partway toward the sleep threshold.
            let mut f = SleepFsm::default();
            let mut k = GatingCounters::default();
            for run in 1..=idles {
                f.gate(false, c.wake_latency);
                f.settle(false, false, false, run, c, &mut k);
            }
            assert_ne!(f.state(), SleepState::Asleep);
            (f, idles)
        };
        fn k_scratch() -> GatingCounters {
            GatingCounters::default()
        }

        let never = cfg(GatingPolicy::Never, 1);
        let th2 = cfg(GatingPolicy::IdleThreshold(2), 1);
        let th9 = cfg(GatingPolicy::IdleThreshold(9), 1);
        let imm = cfg(GatingPolicy::Immediate, 1);
        let cases: Vec<(SleepFsm, SleepConfig, u64)> = vec![
            (SleepFsm::default(), never, 0),
            (SleepFsm::default(), th2, 0), // walks to sleep inside the bulk
            (SleepFsm::default(), th9, 0), // sleeps mid-bulk for larger k
            (SleepFsm::default(), imm, 0), // immediate: sleeps on cycle 1
            (mid_walk(&th9, 4).0, th9, 4), // partially walked already
            (mid_walk(&th9, 8).0, th9, 8), // sleeps on the very next cycle
            (asleep(&th2).0, th2, asleep(&th2).1),
            (drowsy_after_sleep(&th2).0, th2, drowsy_after_sleep(&th2).1),
        ];
        for (fsm, c, run0) in cases {
            for k in [1u64, 5, 17, 100] {
                assert!(fsm.idle_predictable());
                let mut dense = fsm;
                let mut dense_k = GatingCounters::default();
                let mut bulk = fsm;
                let mut bulk_k = GatingCounters::default();
                let mut arbs = 0;
                for i in 1..=k {
                    if dense.gate(false, c.wake_latency) {
                        arbs += 1;
                    }
                    dense.settle(false, false, false, run0 + i, &c, &mut dense_k);
                }
                let bulk_arbs = bulk.settle_idle_bulk(k, run0, c.threshold(), &mut bulk_k);
                assert_eq!(dense, bulk, "state diverged for {c:?} k={k}");
                assert_eq!(dense_k, bulk_k, "counters diverged for {c:?} k={k}");
                assert_eq!(arbs, bulk_arbs, "awake cycles diverged for {c:?} k={k}");
            }
        }
    }

    #[test]
    fn waking_is_never_idle_predictable() {
        let c = cfg(GatingPolicy::IdleThreshold(1), 3);
        let mut f = SleepFsm::default();
        let mut k = GatingCounters::default();
        f.gate(false, c.wake_latency);
        f.settle(false, false, false, 1, &c, &mut k);
        assert_eq!(f.state(), SleepState::Asleep);
        assert!(f.idle_predictable());
        f.gate(true, c.wake_latency);
        assert!(matches!(f.state(), SleepState::Waking { .. }));
        assert!(!f.idle_predictable());
    }

    #[test]
    fn never_policy_stays_awake() {
        let c = cfg(GatingPolicy::Never, 1);
        let mut f = SleepFsm::default();
        let mut k = GatingCounters::default();
        for i in 0..50 {
            assert!(f.gate(false, c.wake_latency));
            f.settle(false, false, false, i + 1, &c, &mut k);
        }
        assert_eq!(k.sleep_entries, 0);
        assert_eq!(k.cycles_idle_awake, 50);
        assert_eq!(k.cycles_asleep, 0);
    }

    #[test]
    fn bulk_idle_settle_composes_across_threshold_boundary() {
        // Deferred settlement's load-bearing algebraic property: a span
        // settled as two deferred pieces equals the same span settled
        // in one piece — *including* when the split lands the sleep
        // threshold inside either piece, so the first settle ends
        // mid-walk (DrowsyCountdown) or already asleep and the second
        // must pick up exactly where the dense replay would be. Sweep
        // every split point of a span that crosses an IdleThreshold
        // boundary, plus Immediate and Never for the degenerate
        // thresholds.
        for c in [
            cfg(GatingPolicy::IdleThreshold(5), 1),
            cfg(GatingPolicy::Immediate, 1),
            cfg(GatingPolicy::Never, 1),
        ] {
            let span = 12u64; // threshold 5 sits strictly inside
            for split in 0..=span {
                let mut whole = SleepFsm::default();
                let mut whole_k = GatingCounters::default();
                let whole_arbs = whole.settle_idle_bulk(span, 0, c.threshold(), &mut whole_k);

                let mut parts = SleepFsm::default();
                let mut parts_k = GatingCounters::default();
                let mut parts_arbs = parts.settle_idle_bulk(split, 0, c.threshold(), &mut parts_k);
                parts_arbs +=
                    parts.settle_idle_bulk(span - split, split, c.threshold(), &mut parts_k);

                assert_eq!(whole, parts, "state diverged for {c:?} split={split}");
                assert_eq!(
                    whole_k, parts_k,
                    "counters diverged for {c:?} split={split}"
                );
                assert_eq!(
                    whole_arbs, parts_arbs,
                    "awake cycles diverged for {c:?} split={split}"
                );
            }
        }
    }
}
