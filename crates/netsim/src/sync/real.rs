//! The real (production) side of the [`crate::sync`] facade: thin
//! re-exports of the `std` primitives plus the spin-wait helper.
//!
//! This file is the one place in the workspace allowed to name
//! `std::sync::atomic` types (the `atomic-outside-facade` lint rule
//! enforces it); everything else goes through the facade so the
//! `model` feature can swap in the instrumented shadow versions.

pub use std::sync::atomic::{AtomicBool, AtomicU64};
pub use std::sync::Mutex;

/// Spins (briefly) and then yields until `cond` returns `true`.
///
/// The condition is re-evaluated every iteration, so eventual
/// visibility of the store that satisfies it is all that is required
/// of the caller's memory orderings. Under the `model` feature this
/// helper is replaced by a scheduler-aware version that blocks the
/// model thread instead of burning schedule steps
/// ([`super::shadow::spin_until`]).
pub fn spin_until(mut cond: impl FnMut() -> bool) {
    let mut spins = 0u32;
    while !cond() {
        spins = spins.saturating_add(1);
        if spins < 64 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}
