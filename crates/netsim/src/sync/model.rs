//! A mini-loom: deterministic, schedule-exploring model checker for
//! the [`crate::sync`] primitives (`--features model` builds only).
//!
//! [`Explorer::check`] runs a closure on `n` model threads over and
//! over, each execution following one schedule, until the whole
//! decision tree is exhausted (or a bound is hit). Two kinds of
//! decisions are explored depth-first:
//!
//! * **Schedule choices** — which thread runs at each shadow-atomic
//!   operation. By default exploration is fully exhaustive; setting
//!   [`Explorer::max_preemptions`] bounds *preemptive* switches
//!   (switches away from a thread that could have continued)
//!   CHESS-style, which keeps larger harnesses tractable while still
//!   exploring every non-preemptive interleaving.
//! * **Value choices** — which store a weak load observes. Loads pick
//!   among every store that per-location coherence and happens-before
//!   (tracked with vector clocks) leave visible, so a missing
//!   `Acquire`/`Release` edge shows up as a stale read, not just as a
//!   reordering.
//!
//! The memory model is a pragmatic C11 subset: release/acquire edges
//! and release sequences (through RMW chains) are tracked exactly;
//! `SeqCst` is approximated with a global clock (slightly stronger
//! than C11, never weaker than acquire/release); RMWs read the newest
//! store (their mod-order placement is not permuted); and spin loops
//! get eventual visibility — a spinning thread re-reads the freshest
//! value once before blocking, which is what makes exploration finite
//! without masking ordering bugs (clock merges still follow the
//! declared orderings). Threads blocked in [`shadow::spin_until`] wake
//! on any store; a state where every live thread is blocked is
//! reported as a deadlock.
//!
//! Failures (harness panics, deadlocks, livelock step budgets) abort
//! the execution and are returned with the interleaving trace that
//! produced them, so a seeded mutation's counterexample is readable.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once};

/// One recorded decision: which branch was taken of how many.
#[derive(Debug, Clone, Copy)]
struct Choice {
    taken: u32,
    options: u32,
}

/// Scheduler status of a model thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Runnable (or running).
    Ready,
    /// Blocked in a spin loop; any store makes it `Ready` again.
    SpinBlocked,
    /// Blocked acquiring the shadow mutex with this id.
    MutexBlocked(usize),
    /// Returned from the harness closure (or unwound).
    Done,
}

/// How loads inside a spin-loop attempt behave (see
/// [`shadow::spin_until`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SpinMode {
    /// Normal: loads branch over every visible store, every op is a
    /// potential preemption point.
    Normal,
    /// One spin-loop attempt runs as a single step (no preemption
    /// points), loads still branch over visible stores.
    Attempt,
    /// Eventual-visibility retry: loads read the newest store.
    Freshest,
}

/// One store in a location's modification order.
#[derive(Debug)]
struct StoreRec {
    value: u64,
    /// `None` for the initial value (visible to everyone).
    writer: Option<usize>,
    /// The writer's own clock component at the store — `clock[t][w] >=
    /// stamp` means the store happens-before thread `t`'s next op.
    stamp: u64,
    /// Clock released by this store: set for `Release`-or-stronger
    /// stores and propagated through RMW chains (release sequences).
    release: Option<Vec<u64>>,
}

#[derive(Debug, Default)]
struct Loc {
    stores: Vec<StoreRec>,
    /// Index of the newest `SeqCst` store (SC loads may not read
    /// anything older).
    last_sc: usize,
}

#[derive(Debug)]
struct MutexState {
    held_by: Option<usize>,
    clock: Vec<u64>,
}

/// Per-execution state: scheduler, decision path, and the shadow
/// memory (store histories, vector clocks, visibility floors).
#[derive(Debug)]
pub(crate) struct Exec {
    n: usize,
    status: Vec<Status>,
    active: usize,
    path: Vec<Choice>,
    cursor: usize,
    locs: Vec<Loc>,
    loc_addrs: Vec<usize>,
    mutexes: Vec<MutexState>,
    mutex_addrs: Vec<usize>,
    clocks: Vec<Vec<u64>>,
    sc_clock: Vec<u64>,
    /// `floors[t][loc]`: oldest store index thread `t` may still read
    /// (coherence: raised by its own reads/writes; happens-before:
    /// raised lazily in [`Exec::load`]).
    floors: Vec<Vec<usize>>,
    spin_mode: Vec<SpinMode>,
    preemptions: usize,
    max_preemptions: Option<usize>,
    steps: usize,
    max_steps: usize,
    failure: Option<String>,
    trace: Vec<String>,
    abort: bool,
}

/// Shared handle of one execution: the state plus the handoff condvar.
#[derive(Debug)]
pub(crate) struct Ctl {
    m: StdMutex<Exec>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Ctl>, usize)>> = const { RefCell::new(None) };
}

/// The current model-thread context, if this OS thread is a worker of
/// a running exploration.
pub(crate) fn ctx() -> Option<(Arc<Ctl>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Sentinel panic payload used to unwind workers of an aborted
/// execution; never reported as a harness failure.
struct AbortToken;

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn join_clock(into: &mut [u64], from: &[u64]) {
    for (a, b) in into.iter_mut().zip(from) {
        *a = (*a).max(*b);
    }
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl Exec {
    fn new(n: usize, path: Vec<Choice>, max_preemptions: Option<usize>, max_steps: usize) -> Exec {
        Exec {
            n,
            status: vec![Status::Ready; n],
            active: 0,
            path,
            cursor: 0,
            locs: Vec::new(),
            loc_addrs: Vec::new(),
            mutexes: Vec::new(),
            mutex_addrs: Vec::new(),
            clocks: vec![vec![0; n]; n],
            sc_clock: vec![0; n],
            floors: vec![Vec::new(); n],
            spin_mode: vec![SpinMode::Normal; n],
            preemptions: 0,
            max_preemptions,
            steps: 0,
            max_steps,
            failure: None,
            trace: Vec::new(),
            abort: false,
        }
    }

    fn fail(&mut self, msg: &str) {
        if self.failure.is_none() {
            self.failure = Some(msg.to_string());
        }
        self.abort = true;
    }

    /// Takes (replaying) or records (extending) one decision.
    fn choose(&mut self, options: usize) -> usize {
        if options <= 1 {
            return 0;
        }
        if self.cursor < self.path.len() {
            let c = self.path[self.cursor];
            self.cursor += 1;
            if c.options != options as u32 {
                self.fail("replay divergence: the harness is not deterministic");
                return 0;
            }
            c.taken as usize
        } else {
            self.path.push(Choice {
                taken: 0,
                options: options as u32,
            });
            self.cursor += 1;
            0
        }
    }

    fn push_trace(&mut self, tid: usize, msg: String) {
        if self.trace.len() < 10_000 {
            self.trace.push(format!("t{tid}: {msg}"));
        }
    }

    fn ready_others(&self, tid: usize) -> Vec<usize> {
        (0..self.n)
            .filter(|&t| t != tid && self.status[t] == Status::Ready)
            .collect()
    }

    /// Registers (or finds) the shadow location at `addr`.
    pub(crate) fn register_loc(&mut self, addr: usize, init: u64) -> usize {
        if let Some(i) = self.loc_addrs.iter().position(|&a| a == addr) {
            return i;
        }
        self.locs.push(Loc {
            stores: vec![StoreRec {
                value: init,
                writer: None,
                stamp: 0,
                release: None,
            }],
            last_sc: 0,
        });
        self.loc_addrs.push(addr);
        for f in &mut self.floors {
            f.push(0);
        }
        self.locs.len() - 1
    }

    fn register_mutex(&mut self, addr: usize) -> usize {
        if let Some(i) = self.mutex_addrs.iter().position(|&a| a == addr) {
            return i;
        }
        self.mutexes.push(MutexState {
            held_by: None,
            clock: vec![0; self.n],
        });
        self.mutex_addrs.push(addr);
        self.mutexes.len() - 1
    }

    fn sc_join(&mut self, tid: usize) {
        let sc = self.sc_clock.clone();
        join_clock(&mut self.clocks[tid], &sc);
        let c = self.clocks[tid].clone();
        join_clock(&mut self.sc_clock, &c);
    }

    /// A load: picks (a branch point) among every visible store.
    pub(crate) fn load(&mut self, tid: usize, loc: usize, ord: Ordering) -> u64 {
        if ord == Ordering::SeqCst {
            self.sc_join(tid);
        }
        let mut lo = self.floors[tid][loc];
        {
            let stores = &self.locs[loc].stores;
            // Happens-before raises the visibility floor: a store this
            // thread's clock already covers hides everything older.
            for (i, rec) in stores.iter().enumerate().skip(lo + 1) {
                if let Some(w) = rec.writer {
                    if self.clocks[tid][w] >= rec.stamp {
                        lo = i;
                    }
                }
            }
            if ord == Ordering::SeqCst {
                lo = lo.max(self.locs[loc].last_sc);
            }
        }
        let hi = self.locs[loc].stores.len() - 1;
        let idx = if self.spin_mode[tid] == SpinMode::Freshest {
            hi
        } else {
            lo + self.choose(hi - lo + 1)
        };
        self.floors[tid][loc] = idx;
        let (val, release) = {
            let rec = &self.locs[loc].stores[idx];
            (rec.value, rec.release.clone())
        };
        if is_acquire(ord) {
            if let Some(rc) = &release {
                join_clock(&mut self.clocks[tid], rc);
            }
        }
        self.push_trace(tid, format!("load loc{loc}[{idx}] -> {val} ({ord:?})"));
        val
    }

    /// A store: appends to the modification order and wakes spinners.
    pub(crate) fn store(&mut self, tid: usize, loc: usize, val: u64, ord: Ordering) {
        self.clocks[tid][tid] += 1;
        if ord == Ordering::SeqCst {
            self.sc_join(tid);
        }
        let stamp = self.clocks[tid][tid];
        let release = is_release(ord).then(|| self.clocks[tid].clone());
        self.locs[loc].stores.push(StoreRec {
            value: val,
            writer: Some(tid),
            stamp,
            release,
        });
        let idx = self.locs[loc].stores.len() - 1;
        if ord == Ordering::SeqCst {
            self.locs[loc].last_sc = idx;
        }
        self.floors[tid][loc] = idx;
        self.wake_spinners();
        self.push_trace(tid, format!("store loc{loc}[{idx}] <- {val} ({ord:?})"));
    }

    /// An atomic read-modify-write: reads the newest store (RMW
    /// atomicity), continues its release sequence, appends the result.
    pub(crate) fn rmw(
        &mut self,
        tid: usize,
        loc: usize,
        f: impl FnOnce(u64) -> u64,
        ord: Ordering,
    ) -> u64 {
        self.clocks[tid][tid] += 1;
        if ord == Ordering::SeqCst {
            self.sc_join(tid);
        }
        let hi = self.locs[loc].stores.len() - 1;
        let (old, prev_release) = {
            let rec = &self.locs[loc].stores[hi];
            (rec.value, rec.release.clone())
        };
        if is_acquire(ord) {
            if let Some(rc) = &prev_release {
                join_clock(&mut self.clocks[tid], rc);
            }
        }
        // Release sequence: the new store releases this thread's clock
        // (if release-or-stronger) *and* keeps carrying the clock of
        // the sequence it extends, so an acquire load of any later
        // element still synchronizes with the head.
        let release = match (
            is_release(ord).then(|| self.clocks[tid].clone()),
            prev_release,
        ) {
            (Some(mut mine), Some(prev)) => {
                join_clock(&mut mine, &prev);
                Some(mine)
            }
            (Some(mine), None) => Some(mine),
            (None, prev) => prev,
        };
        let new = f(old);
        let stamp = self.clocks[tid][tid];
        self.locs[loc].stores.push(StoreRec {
            value: new,
            writer: Some(tid),
            stamp,
            release,
        });
        let idx = self.locs[loc].stores.len() - 1;
        if ord == Ordering::SeqCst {
            self.locs[loc].last_sc = idx;
        }
        self.floors[tid][loc] = idx;
        self.wake_spinners();
        self.push_trace(tid, format!("rmw loc{loc}[{idx}] {old} -> {new} ({ord:?})"));
        old
    }

    fn wake_spinners(&mut self) {
        for t in 0..self.n {
            if self.status[t] == Status::SpinBlocked {
                self.status[t] = Status::Ready;
            }
        }
    }
}

/// Runs `f` as one shadow operation of the current model thread:
/// grants are assumed (the caller is the active thread), the step
/// budget is charged, and a scheduling decision is taken afterwards.
/// Returns `None` when the calling OS thread is not a model worker
/// (pass-through mode).
pub(crate) fn atomic_op<R>(f: impl FnOnce(&mut Exec, usize) -> R) -> Option<R> {
    let (ctl, tid) = ctx()?;
    let mut ex = ctl.m.lock().unwrap_or_else(|e| e.into_inner());
    abort_check(&ctl, &mut ex);
    ex.steps += 1;
    if ex.steps > ex.max_steps {
        ex.fail("step budget exceeded: livelock or runaway harness");
        abort_check(&ctl, &mut ex);
    }
    let r = f(&mut ex, tid);
    reschedule(&ctl, ex, tid);
    Some(r)
}

/// If the execution aborted: unwind this worker (unless it is already
/// unwinding, in which case it just keeps going — its ops are inert).
fn abort_check(ctl: &Ctl, ex: &mut StdMutexGuard<'_, Exec>) {
    if ex.abort && !std::thread::panicking() {
        ctl.cv.notify_all();
        std::panic::panic_any(AbortToken);
    }
}

/// The post-op scheduling decision: possibly preempt (a branch), hand
/// off if blocked, detect deadlocks, wait for the next grant.
fn reschedule(ctl: &Ctl, mut ex: StdMutexGuard<'_, Exec>, tid: usize) {
    if ex.abort || std::thread::panicking() {
        ctl.cv.notify_all();
        if ex.abort {
            drop(ex);
            if !std::thread::panicking() {
                std::panic::panic_any(AbortToken);
            }
        }
        return;
    }
    if ex.status[tid] == Status::Ready {
        // Spin-loop attempts run as one atomic step: no preemption
        // points until the attempt fails and the thread blocks.
        if ex.spin_mode[tid] != SpinMode::Normal {
            return;
        }
        let can_preempt = ex.max_preemptions.is_none_or(|k| ex.preemptions < k);
        let others = ex.ready_others(tid);
        if can_preempt && !others.is_empty() {
            let pick = ex.choose(1 + others.len());
            if pick > 0 {
                ex.preemptions += 1;
                ex.active = others[pick - 1];
                ctl.cv.notify_all();
                wait_for_grant(ctl, ex, tid);
            }
        }
    } else {
        // This thread just blocked: hand off or declare deadlock.
        let others = ex.ready_others(tid);
        if others.is_empty() {
            if ex.status.iter().any(|s| *s != Status::Done) {
                ex.fail("deadlock: every live thread is blocked");
            }
            ctl.cv.notify_all();
            abort_check(ctl, &mut ex);
        } else {
            let pick = ex.choose(others.len());
            ex.active = others[pick];
            ctl.cv.notify_all();
            wait_for_grant(ctl, ex, tid);
        }
    }
}

/// Parks the worker until it is the active thread again (or the
/// execution aborts).
fn wait_for_grant(ctl: &Ctl, ex: StdMutexGuard<'_, Exec>, tid: usize) {
    let ex = ctl
        .cv
        .wait_while(ex, |e| {
            !(e.abort || (e.active == tid && e.status[tid] == Status::Ready))
        })
        .unwrap_or_else(|e| e.into_inner());
    if ex.abort {
        drop(ex);
        if !std::thread::panicking() {
            std::panic::panic_any(AbortToken);
        }
    }
}

/// Sets the spin mode of a model thread (no step is charged).
pub(crate) fn set_spin_mode(ctl: &Arc<Ctl>, tid: usize, mode: SpinMode) {
    let mut ex = ctl.m.lock().unwrap_or_else(|e| e.into_inner());
    ex.spin_mode[tid] = mode;
}

/// Blocks the model thread until any store happens (spin-loop wait).
pub(crate) fn spin_block(ctl: &Arc<Ctl>, tid: usize) {
    let mut ex = ctl.m.lock().unwrap_or_else(|e| e.into_inner());
    abort_check(ctl, &mut ex);
    ex.steps += 1;
    ex.status[tid] = Status::SpinBlocked;
    ex.push_trace(tid, "spin-blocked (waiting for any store)".to_string());
    reschedule(ctl, ex, tid);
}

/// Acquires the shadow mutex at `addr` for the model thread,
/// blocking (in model time) while a peer holds it.
pub(crate) fn mutex_lock(ctl: &Arc<Ctl>, tid: usize, addr: usize) {
    loop {
        let mut ex = ctl.m.lock().unwrap_or_else(|e| e.into_inner());
        abort_check(ctl, &mut ex);
        ex.steps += 1;
        let mid = ex.register_mutex(addr);
        if ex.mutexes[mid].held_by.is_none() {
            ex.mutexes[mid].held_by = Some(tid);
            // Lock acquisition synchronizes with the previous unlock.
            let c = ex.mutexes[mid].clock.clone();
            join_clock(&mut ex.clocks[tid], &c);
            ex.push_trace(tid, format!("lock mutex{mid}"));
            reschedule(ctl, ex, tid);
            return;
        }
        ex.status[tid] = Status::MutexBlocked(mid);
        ex.push_trace(tid, format!("blocked on mutex{mid}"));
        reschedule(ctl, ex, tid);
    }
}

/// Releases the shadow mutex at `addr` and wakes its waiters.
pub(crate) fn mutex_unlock(ctl: &Arc<Ctl>, tid: usize, addr: usize) {
    let mut ex = ctl.m.lock().unwrap_or_else(|e| e.into_inner());
    if !ex.abort {
        ex.steps += 1;
    }
    let mid = ex.register_mutex(addr);
    ex.mutexes[mid].held_by = None;
    let c = ex.clocks[tid].clone();
    join_clock(&mut ex.mutexes[mid].clock, &c);
    for t in 0..ex.n {
        if ex.status[t] == Status::MutexBlocked(mid) {
            ex.status[t] = Status::Ready;
        }
    }
    ex.push_trace(tid, format!("unlock mutex{mid}"));
    reschedule(ctl, ex, tid);
}

/// A failing schedule found by [`Explorer::check`].
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong (harness panic message, deadlock, budget).
    pub message: String,
    /// The interleaving that produced it, one line per shadow op.
    pub trace: Vec<String>,
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Executions (schedules) explored.
    pub executions: u64,
    /// Whether the decision tree was exhausted (`false` when the
    /// execution budget stopped exploration early, or a failure did).
    pub complete: bool,
    /// The first failing schedule, if any was found.
    pub failure: Option<Failure>,
}

impl Report {
    /// Panics (with the counterexample trace) unless the exploration
    /// exhausted the schedule space without finding a failure.
    pub fn assert_passed(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "model checker found a failing schedule after {} executions: {}\n{}",
                self.executions,
                f.message,
                f.trace.join("\n")
            );
        }
        assert!(
            self.complete,
            "exploration hit the execution budget ({}) before exhausting the schedule space",
            self.executions
        );
    }

    /// Panics unless a failing schedule was found; returns the failure.
    pub fn assert_failed(&self, expect_in_message: &str) -> &Failure {
        let f = self.failure.as_ref().unwrap_or_else(|| {
            panic!(
                "expected a failing schedule, explored {} cleanly",
                self.executions
            )
        });
        assert!(
            f.message.contains(expect_in_message),
            "failure message {:?} does not contain {:?}",
            f.message,
            expect_in_message
        );
        f
    }
}

/// The DFS schedule explorer. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Bound on preemptive context switches per execution (`None` =
    /// fully exhaustive).
    pub max_preemptions: Option<usize>,
    /// Stop after this many executions even if the tree is not
    /// exhausted.
    pub max_executions: u64,
    /// Per-execution shadow-op budget (livelock guard).
    pub max_steps: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_preemptions: None,
            max_executions: 2_000_000,
            max_steps: 100_000,
        }
    }
}

impl Explorer {
    /// An exhaustive explorer (no preemption bound).
    pub fn exhaustive() -> Explorer {
        Explorer::default()
    }

    /// A CHESS-style explorer: every non-preemptive schedule plus all
    /// placements of up to `k` preemptions.
    pub fn with_preemption_bound(k: usize) -> Explorer {
        Explorer {
            max_preemptions: Some(k),
            ..Explorer::default()
        }
    }

    /// Explores `body` running on `threads` model threads. `setup`
    /// builds one fresh shared state per execution (this is where the
    /// harness constructs its barriers/slots/mailboxes); `body(state,
    /// tid)` is the per-thread program. Both must be deterministic:
    /// the only allowed nondeterminism is what the shadow primitives
    /// introduce.
    pub fn check<S, F>(&self, threads: usize, setup: impl Fn() -> S, body: F) -> Report
    where
        S: Send + Sync + 'static,
        F: Fn(&S, usize) + Send + Sync + 'static,
    {
        assert!(threads >= 1, "need at least one model thread");
        install_quiet_panic_hook();
        let body = Arc::new(body);
        let mut path: Vec<Choice> = Vec::new();
        let mut executions = 0u64;
        loop {
            executions += 1;
            let (failure, trace, out_path) = self.run_once(threads, &setup, &body, path);
            if let Some(message) = failure {
                return Report {
                    executions,
                    complete: false,
                    failure: Some(Failure { message, trace }),
                };
            }
            path = out_path;
            if !advance(&mut path) {
                return Report {
                    executions,
                    complete: true,
                    failure: None,
                };
            }
            if executions >= self.max_executions {
                return Report {
                    executions,
                    complete: false,
                    failure: None,
                };
            }
        }
    }

    fn run_once<S, F>(
        &self,
        n: usize,
        setup: &impl Fn() -> S,
        body: &Arc<F>,
        path: Vec<Choice>,
    ) -> (Option<String>, Vec<String>, Vec<Choice>)
    where
        S: Send + Sync + 'static,
        F: Fn(&S, usize) + Send + Sync + 'static,
    {
        let state = Arc::new(setup());
        let ctl = Arc::new(Ctl {
            m: StdMutex::new(Exec::new(n, path, self.max_preemptions, self.max_steps)),
            cv: Condvar::new(),
        });
        {
            let mut ex = ctl.m.lock().unwrap();
            let pick = ex.choose(n);
            ex.active = pick;
        }
        let mut handles = Vec::with_capacity(n);
        for tid in 0..n {
            let ctl = ctl.clone();
            let state = state.clone();
            let body = body.clone();
            let h = std::thread::Builder::new()
                .name(format!("model-worker-{tid}"))
                .spawn(move || {
                    CTX.with(|c| *c.borrow_mut() = Some((ctl.clone(), tid)));
                    {
                        let ex = ctl.m.lock().unwrap_or_else(|e| e.into_inner());
                        let ex = ctl
                            .cv
                            .wait_while(ex, |e| !e.abort && e.active != tid)
                            .unwrap_or_else(|e| e.into_inner());
                        if ex.abort {
                            drop(ex);
                            CTX.with(|c| *c.borrow_mut() = None);
                            ctl.cv.notify_all();
                            return;
                        }
                    }
                    let r = catch_unwind(AssertUnwindSafe(|| body(&state, tid)));
                    CTX.with(|c| *c.borrow_mut() = None);
                    let mut ex = ctl.m.lock().unwrap_or_else(|e| e.into_inner());
                    ex.status[tid] = Status::Done;
                    if let Err(p) = r {
                        if p.downcast_ref::<AbortToken>().is_none() {
                            let msg = panic_message(p);
                            ex.push_trace(tid, format!("panicked: {msg}"));
                            ex.fail(&format!("model thread {tid} panicked: {msg}"));
                        }
                    }
                    // Exit handoff (never unwinds: workers must join).
                    if !ex.abort {
                        let others = ex.ready_others(tid);
                        if others.is_empty() {
                            if ex.status.iter().any(|s| *s != Status::Done) {
                                ex.fail("deadlock: every live thread is blocked");
                            }
                        } else {
                            let pick = ex.choose(others.len());
                            ex.active = others[pick];
                        }
                    }
                    ctl.cv.notify_all();
                })
                .expect("spawn model worker");
            handles.push(h);
        }
        for h in handles {
            h.join().expect("model worker must not die unwinding");
        }
        let ex = Arc::try_unwrap(ctl)
            .expect("all workers joined")
            .m
            .into_inner()
            .unwrap_or_else(|e| e.into_inner());
        (ex.failure, ex.trace, ex.path)
    }
}

/// DFS backtrack: bumps the deepest decision that still has an
/// untaken branch. Returns `false` when the whole tree is exhausted.
fn advance(path: &mut Vec<Choice>) -> bool {
    while let Some(mut last) = path.pop() {
        if last.taken + 1 < last.options {
            last.taken += 1;
            path.push(last);
            return true;
        }
    }
    false
}

/// Silences panic output from model workers (mutation tests *expect*
/// panics; their messages are captured and re-reported through
/// [`Failure`]). Other threads keep the default hook.
fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let name = std::thread::current().name().map(str::to_string);
            if name.is_some_and(|n| n.starts_with("model-worker")) {
                return;
            }
            prev(info);
        }));
    });
}
