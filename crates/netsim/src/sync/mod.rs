//! Synchronization facade for the sharded kernel.
//!
//! Every atomic the simulator owns lives behind this module — that is
//! a workspace lint rule (`atomic-outside-facade`, see
//! `crates/xtask`), not a convention. Centralizing the primitives buys
//! two things:
//!
//! 1. **Auditability.** Each atomic access below carries a comment
//!    naming the invariant its memory ordering protects, and every
//!    `Ordering::Relaxed` carries a lint waiver with a written
//!    justification.
//! 2. **Model checking.** Under `--features model` the re-exports at
//!    the bottom of this file swap [`real`] for [`shadow`]: the same
//!    `SpinBarrier` / `ShardSlots` / `Mailboxes` source compiles
//!    against instrumented shadow atomics whose every access yields to
//!    a deterministic DFS schedule explorer ([`model`]). The explorer
//!    permutes thread interleavings *and* the values weak loads may
//!    observe, so the orderings chosen here are not folklore: the
//!    model-checker tests (`tests/model_checker.rs`) prove the
//!    weakest orderings used below sufficient on this single-core
//!    host, and prove the checker has teeth by detecting seeded
//!    mutations (a relaxed publish edge, a skipped generation bump, a
//!    frozen mailbox parity).
//!
//! The primitives themselves are documented where they are used: the
//! compute→exchange cycle protocol in [`crate::shard`] and the
//! determinism argument in [`crate::sim`].

pub mod real;

#[cfg(feature = "model")]
pub mod model;
#[cfg(feature = "model")]
pub mod shadow;

#[cfg(not(feature = "model"))]
pub use real::{spin_until, AtomicBool, AtomicU64, Mutex};
#[cfg(feature = "model")]
pub use shadow::{spin_until, AtomicBool, AtomicU64, Mutex};

pub use std::sync::atomic::Ordering;

/// All boundary mailboxes of a tiled run: one double-buffered box per
/// directed tile adjacency, generic over the staged message type.
///
/// Mailboxes are **double-buffered by cycle parity**, which is what
/// makes a *single* barrier per cycle sufficient: while shard `B` is
/// still draining parity-0 boxes for cycle `c`, shard `A` may already
/// be filling parity-1 boxes for cycle `c + 1` — the barrier between
/// compute and exchange guarantees `B`'s previous drain of the
/// parity-1 box (in cycle `c − 1`) happened before `A`'s refill.
///
/// Each box is `Mutex`-wrapped, but the lock is taken once per shard
/// per cycle to *swap* a whole staged batch in (or out), never per
/// message — and batches are exchanged by `mem::swap`, so the Vec
/// capacities warm up once and the steady-state loop performs no
/// allocation.
#[derive(Debug)]
pub struct Mailboxes<T> {
    /// `boxes[i][parity]` — the two parity buffers of directed edge `i`.
    boxes: Vec<[Mutex<Vec<T>>; 2]>,
    /// Per receiving shard: `(sender shard, box index)`, ascending by
    /// sender — the documented deterministic drain order.
    inboxes: Vec<Vec<(usize, usize)>>,
    /// Per sending shard: `(destination shard, box index)`, ascending
    /// by destination.
    outboxes: Vec<Vec<(usize, usize)>>,
}

impl<T> Mailboxes<T> {
    /// Builds the mailbox set for `shards` shards from explicit
    /// directed edges `(sender, receiver, capacity)`, pre-sizing each
    /// box to its fixed per-cycle message budget. Edges must be given
    /// in ascending `(sender, receiver)` order (the deterministic
    /// drain order is derived from it).
    pub fn from_edges(shards: usize, edges: &[(usize, usize, usize)]) -> Mailboxes<T> {
        let mut boxes = Vec::new();
        let mut inboxes = vec![Vec::new(); shards];
        let mut outboxes = vec![Vec::new(); shards];
        for &(sender, dst, cap) in edges {
            let idx = boxes.len();
            boxes.push([
                Mutex::new(Vec::with_capacity(cap)),
                Mutex::new(Vec::with_capacity(cap)),
            ]);
            outboxes[sender].push((dst, idx));
            inboxes[dst].push((sender, idx));
        }
        for inbox in &mut inboxes {
            inbox.sort_unstable();
        }
        Mailboxes {
            boxes,
            inboxes,
            outboxes,
        }
    }

    /// The outboxes of shard `s`: `(destination, box index)` pairs.
    pub fn outboxes(&self, s: usize) -> &[(usize, usize)] {
        &self.outboxes[s]
    }

    /// The inboxes of shard `s`: `(sender, box index)` pairs, ascending
    /// by sender — drain in this order.
    pub fn inboxes(&self, s: usize) -> &[(usize, usize)] {
        &self.inboxes[s]
    }

    /// Sender side: swaps the staged batch into the parity box (which
    /// must be empty — its receiver drained it two cycles ago) and
    /// hands the drained-empty Vec back as the next staging buffer.
    ///
    /// The emptiness invariant is exactly the property the model
    /// checker's torn-read test pins: it holds *because* of the
    /// barrier + parity protocol, not because of this mutex.
    pub fn send(&self, box_idx: usize, parity: usize, staged: &mut Vec<T>) {
        let mut slot = self.boxes[box_idx][parity]
            .lock()
            .expect("mailbox poisoned");
        debug_assert!(slot.is_empty(), "mailbox parity buffer not yet drained");
        std::mem::swap(&mut *slot, staged);
    }

    /// Receiver side: swaps the parity box's contents out into `into`
    /// (which must be empty), leaving the box empty for its sender.
    pub fn receive(&self, box_idx: usize, parity: usize, into: &mut Vec<T>) {
        debug_assert!(into.is_empty());
        let mut slot = self.boxes[box_idx][parity]
            .lock()
            .expect("mailbox poisoned");
        std::mem::swap(&mut *slot, into);
    }
}

/// Per-shard, parity-indexed progress slots: written by each shard at
/// the end of its compute phase, read by every shard after the barrier
/// to take the *same* global watchdog decision. Parity indexing keeps
/// a shard's cycle-`c + 1` store from racing a peer's cycle-`c` read.
#[derive(Debug, Default)]
pub struct ShardSlots {
    /// Transfers applied plus source-queue flits drained this cycle.
    progress: [AtomicU64; 2],
    /// Flits buffered in this shard's routers at the end of compute.
    buffered: [AtomicU64; 2],
}

impl ShardSlots {
    /// Publishes this shard's compute-phase outcome for `parity`.
    ///
    /// Ordering invariant: peers only read these slots *after* the
    /// phase barrier, and the barrier crossing is a release/acquire
    /// edge from every publisher to every reader (see
    /// [`SpinBarrier::wait`]). The stores therefore need no ordering
    /// of their own; the model checker's `slots_publish_*` tests fail
    /// the moment the barrier edge is weakened, proving it is the
    /// barrier — not these stores — carrying the synchronization.
    pub fn publish(&self, parity: usize, progress: u64, buffered: u64) {
        // lint:allow(relaxed-needs-waiver) -- ordered by the phase
        // barrier's release/acquire edge; model-checked in
        // slots_publish_visible_after_barrier.
        self.progress[parity].store(progress, Ordering::Relaxed);
        // lint:allow(relaxed-needs-waiver) -- same barrier edge as the
        // progress store above.
        self.buffered[parity].store(buffered, Ordering::Relaxed);
    }

    /// Reads a shard's published progress for `parity`.
    pub fn read_progress(&self, parity: usize) -> u64 {
        // lint:allow(relaxed-needs-waiver) -- reader side of the
        // barrier-ordered publish; see ShardSlots::publish.
        self.progress[parity].load(Ordering::Relaxed)
    }

    /// Reads a shard's published buffered-flit count for `parity`.
    pub fn read_buffered(&self, parity: usize) -> u64 {
        // lint:allow(relaxed-needs-waiver) -- reader side of the
        // barrier-ordered publish; see ShardSlots::publish.
        self.buffered[parity].load(Ordering::Relaxed)
    }
}

/// Which seeded bug a [`SpinBarrier`] carries — model-checker builds
/// only. The mutation tests prove the checker detects each one; the
/// real kernel can never construct a mutated barrier.
#[cfg(feature = "model")]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BarrierMutation {
    /// The correct barrier.
    #[default]
    None,
    /// The last arriver publishes the generation flip with `Relaxed`
    /// instead of `Release` — the removed release edge lets waiters
    /// cross the barrier without acquiring the publishers' stores.
    RelaxedGenerationStore,
    /// Waiters poll the generation with `Relaxed` instead of
    /// `Acquire` — the removed acquire edge on the reader side.
    RelaxedSpinLoad,
    /// Arrivals count themselves in with `Relaxed` instead of
    /// `AcqRel` — the release-sequence chain through the counter is
    /// cut, so the last arriver crosses without its peers' stores.
    RelaxedArrival,
    /// The last arriver resets the count but never bumps the
    /// generation — the lost flip leaves every waiter spinning.
    SkipGenerationBump,
}

/// A sense-reversing spin barrier for the per-cycle phase handoff.
///
/// `std::sync::Barrier` parks threads through a mutex/condvar pair —
/// microseconds per crossing, paid once per cycle. This barrier spins
/// briefly and then yields, which keeps the crossing in the
/// sub-microsecond range when every worker has its own core and
/// degrades gracefully (to yields) when workers share cores.
///
/// A worker that panics poisons the barrier from its unwind guard, so
/// peers spin-waiting on it panic too instead of hanging the run.
///
/// # Ordering audit
///
/// The barrier is the only release/acquire edge the sharded kernel
/// has; everything else (`ShardSlots`, the mailbox parity discipline)
/// is ordered *through* a crossing. A crossing works like this:
///
/// ```text
/// arrival:   count.fetch_add(1, AcqRel)      // join release sequence
/// last:      count.store(0, Relaxed)         // ordered by the …
///            generation.store(g+1, Release)  // … publish below
/// waiters:   generation.load(Acquire) != g   // acquire the publish
/// ```
///
/// Each ordering is the weakest the model checker proves sufficient —
/// every `SeqCst` the original implementation used has been downgraded
/// (the equivalence suites pin that the stats stayed bit-identical,
/// and `barrier_publishes_every_shards_stores` explores every
/// schedule). Per-op justifications sit on the accesses below.
#[derive(Debug)]
pub struct SpinBarrier {
    n: u64,
    count: AtomicU64,
    generation: AtomicU64,
    poisoned: AtomicBool,
    #[cfg(feature = "model")]
    mutation: BarrierMutation,
}

impl SpinBarrier {
    /// A barrier for `n` participating workers.
    pub fn new(n: usize) -> SpinBarrier {
        SpinBarrier {
            n: n as u64,
            count: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            #[cfg(feature = "model")]
            mutation: BarrierMutation::None,
        }
    }

    /// A barrier carrying a seeded bug — model-checker builds only,
    /// used to prove the checker detects each mutation.
    #[cfg(feature = "model")]
    pub fn with_mutation(n: usize, mutation: BarrierMutation) -> SpinBarrier {
        SpinBarrier {
            mutation,
            ..SpinBarrier::new(n)
        }
    }

    /// Marks the barrier poisoned (a peer is unwinding).
    pub fn poison(&self) {
        // lint:allow(relaxed-needs-waiver) -- one-way abort flag; the
        // waiters' panic needs no happens-before edge, only eventual
        // visibility, which the spin loop's re-read provides
        // (model-checked in poison_unblocks_every_waiter).
        self.poisoned.store(true, Ordering::Relaxed);
    }

    /// Blocks until all `n` workers have arrived.
    ///
    /// # Panics
    ///
    /// Panics if a peer poisons the barrier while this worker waits.
    pub fn wait(&self) {
        if self.n == 1 {
            return;
        }
        // Invariant: a thread's previous crossing of generation `g`
        // already ordered the `g`-th flip into its past, and the
        // `g + 1`-th flip cannot happen before this thread arrives —
        // so a relaxed load reads exactly the current generation.
        // lint:allow(relaxed-needs-waiver) -- coherence alone pins the
        // value; model-checked (no schedule reads a stale generation
        // here).
        let gen = self.generation.load(Ordering::Relaxed);
        // AcqRel: the release half chains this worker's pre-barrier
        // stores into the counter's release sequence; the acquire half
        // makes the last arriver inherit every earlier arriver's
        // stores through that chain (mutating this to Relaxed is
        // detected by barrier_mutation_relaxed_arrival).
        let arrival_order = Ordering::AcqRel;
        #[cfg(feature = "model")]
        let arrival_order = if self.mutation == BarrierMutation::RelaxedArrival {
            // lint:allow(relaxed-needs-waiver) -- seeded bug under
            // test (cuts the release-sequence chain); never compiled
            // into the real kernel.
            Ordering::Relaxed
        } else {
            arrival_order
        };
        if self.count.fetch_add(1, arrival_order) + 1 == self.n {
            // Last arriver: reset the count *before* releasing the
            // generation, so early re-arrivers of the next phase start
            // from zero. The reset itself can be relaxed: it is
            // sequenced before the Release publish below, and waiters
            // only touch the count again after acquiring that publish.
            // lint:allow(relaxed-needs-waiver) -- ordered by the
            // generation Release store below; model-checked in
            // barrier_two_rounds_no_lost_flip.
            self.count.store(0, Ordering::Relaxed);
            #[cfg(feature = "model")]
            match self.mutation {
                BarrierMutation::SkipGenerationBump => return,
                BarrierMutation::RelaxedGenerationStore => {
                    // lint:allow(relaxed-needs-waiver) -- seeded bug
                    // under test, never compiled into the real kernel.
                    self.generation.store(gen + 1, Ordering::Relaxed);
                    return;
                }
                _ => {}
            }
            // Release: publishes the whole round — every arriver's
            // pre-barrier stores (inherited through the AcqRel chain)
            // plus the count reset above. Only the last arriver ever
            // stores the generation, so a plain store (not an RMW)
            // suffices.
            self.generation.store(gen + 1, Ordering::Release);
        } else {
            #[cfg(feature = "model")]
            let spin_order = if self.mutation == BarrierMutation::RelaxedSpinLoad {
                // lint:allow(relaxed-needs-waiver) -- seeded bug under
                // test (drops the waiters' acquire edge); never
                // compiled into the real kernel.
                Ordering::Relaxed
            } else {
                Ordering::Acquire
            };
            #[cfg(not(feature = "model"))]
            let spin_order = Ordering::Acquire;
            spin_until(|| {
                // lint:allow(relaxed-needs-waiver) -- abort flag, see
                // SpinBarrier::poison.
                if self.poisoned.load(Ordering::Relaxed) {
                    panic!("a peer shard worker panicked; aborting this worker");
                }
                // Acquire: pairs with the last arriver's Release
                // publish — crossing the barrier is what makes every
                // peer's compute-phase stores visible to this worker's
                // exchange phase.
                self.generation.load(spin_order) != gen
            });
        }
    }
}

/// Poisons the barrier if the owning worker unwinds, so peers abort
/// instead of spinning forever on a barrier that will never fill.
#[derive(Debug)]
pub struct PoisonGuard<'a>(pub &'a SpinBarrier);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_synchronizes_workers() {
        let barrier = SpinBarrier::new(4);
        let hits = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for round in 1..=50u64 {
                        // lint:allow(relaxed-needs-waiver) -- test
                        // counter; the barrier supplies the ordering
                        // the assertion below relies on.
                        hits.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // After the barrier every worker of this round
                        // has contributed.
                        // lint:allow(relaxed-needs-waiver) -- read
                        // side of the barrier-ordered test counter.
                        assert!(hits.load(Ordering::Relaxed) >= round * 4);
                        barrier.wait();
                    }
                });
            }
        });
        // lint:allow(relaxed-needs-waiver) -- workers joined; no
        // concurrency left.
        assert_eq!(hits.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn poisoned_barrier_panics_waiters() {
        let barrier = SpinBarrier::new(2);
        barrier.poison();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            barrier.wait();
        }));
        assert!(caught.is_err(), "waiting on a poisoned barrier must abort");
    }

    #[test]
    fn mailboxes_from_edges_orders_inboxes() {
        let mail: Mailboxes<u32> = Mailboxes::from_edges(3, &[(2, 0, 4), (0, 2, 4), (1, 0, 4)]);
        let senders: Vec<usize> = mail.inboxes(0).iter().map(|&(s, _)| s).collect();
        assert_eq!(senders, vec![1, 2]);
        let mut staged = vec![7, 9];
        let (_, bx) = mail.outboxes(2)[0];
        mail.send(bx, 1, &mut staged);
        assert!(staged.is_empty());
        let mut drained = Vec::new();
        mail.receive(bx, 1, &mut drained);
        assert_eq!(drained, vec![7, 9]);
    }
}
