//! Instrumented shadow primitives (`--features model` builds).
//!
//! Each shadow type embeds the real `std` primitive and delegates to
//! it whenever the calling OS thread is *not* a model worker, so the
//! whole crate (including the production engine and its tests) still
//! builds and runs normally under the `model` feature. Inside an
//! [`super::model::Explorer`] run, every operation instead goes
//! through the shared [`super::model::Exec`] state: loads branch over
//! all visible stores, stores extend per-location histories, and each
//! op is a scheduling decision point.
//!
//! Shadow locations are registered lazily by address, so the harness
//! needs no special setup: it just constructs the ordinary facade
//! types ([`super::SpinBarrier`], [`super::ShardSlots`],
//! [`super::Mailboxes`]) inside the explorer's `setup` closure.

use std::sync::atomic::Ordering;
use std::sync::{Arc, LockResult};

use super::model::{self, Ctl, SpinMode};

fn addr<T>(x: &T) -> usize {
    x as *const T as usize
}

/// Shadow of [`std::sync::atomic::AtomicU64`].
#[derive(Debug, Default)]
pub struct AtomicU64 {
    real: std::sync::atomic::AtomicU64,
}

impl AtomicU64 {
    /// Creates a shadow atomic with the given initial value.
    pub const fn new(v: u64) -> AtomicU64 {
        AtomicU64 {
            real: std::sync::atomic::AtomicU64::new(v),
        }
    }

    /// Shadow of [`std::sync::atomic::AtomicU64::load`].
    pub fn load(&self, ord: Ordering) -> u64 {
        model::atomic_op(|ex, tid| {
            let loc = ex.register_loc(addr(self), self.real.load(Ordering::Relaxed));
            ex.load(tid, loc, ord)
        })
        .unwrap_or_else(|| self.real.load(ord))
    }

    /// Shadow of [`std::sync::atomic::AtomicU64::store`].
    pub fn store(&self, v: u64, ord: Ordering) {
        model::atomic_op(|ex, tid| {
            let loc = ex.register_loc(addr(self), self.real.load(Ordering::Relaxed));
            ex.store(tid, loc, v, ord);
            // Mirror into the embedded atomic so a later pass-through
            // (or fresh registration) sees the newest value.
            self.real.store(v, Ordering::Relaxed);
        })
        .unwrap_or_else(|| self.real.store(v, ord))
    }

    /// Shadow of [`std::sync::atomic::AtomicU64::fetch_add`].
    pub fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
        model::atomic_op(|ex, tid| {
            let loc = ex.register_loc(addr(self), self.real.load(Ordering::Relaxed));
            let old = ex.rmw(tid, loc, |x| x.wrapping_add(v), ord);
            self.real.store(old.wrapping_add(v), Ordering::Relaxed);
            old
        })
        .unwrap_or_else(|| self.real.fetch_add(v, ord))
    }
}

/// Shadow of [`std::sync::atomic::AtomicBool`].
#[derive(Debug, Default)]
pub struct AtomicBool {
    real: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a shadow atomic with the given initial value.
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool {
            real: std::sync::atomic::AtomicBool::new(v),
        }
    }

    /// Shadow of [`std::sync::atomic::AtomicBool::load`].
    pub fn load(&self, ord: Ordering) -> bool {
        model::atomic_op(|ex, tid| {
            let loc = ex.register_loc(addr(self), self.real.load(Ordering::Relaxed) as u64);
            ex.load(tid, loc, ord) != 0
        })
        .unwrap_or_else(|| self.real.load(ord))
    }

    /// Shadow of [`std::sync::atomic::AtomicBool::store`].
    pub fn store(&self, v: bool, ord: Ordering) {
        model::atomic_op(|ex, tid| {
            let loc = ex.register_loc(addr(self), self.real.load(Ordering::Relaxed) as u64);
            ex.store(tid, loc, v as u64, ord);
            self.real.store(v, Ordering::Relaxed);
        })
        .unwrap_or_else(|| self.real.store(v, ord))
    }
}

/// Shadow of [`std::sync::Mutex`]: lock contention and the
/// unlock→lock synchronization edge are arbitrated by the model
/// scheduler; the embedded real mutex then guards the actual data
/// (uncontended by construction, since the model grants exclusivity
/// first).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a shadow mutex holding `v`.
    pub const fn new(v: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(v),
        }
    }

    /// Shadow of [`std::sync::Mutex::lock`]. Never returns a poison
    /// error in model runs (a panicking model worker aborts the whole
    /// execution instead).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let ctx = model::ctx();
        if let Some((ctl, tid)) = &ctx {
            model::mutex_lock(ctl, *tid, addr(self));
        }
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Ok(MutexGuard {
            inner: Some(inner),
            ctx,
            addr: addr(self),
        })
    }
}

/// Guard returned by [`Mutex::lock`]; releases the model-level lock
/// (after the data lock) on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    ctx: Option<(Arc<Ctl>, usize)>,
    addr: usize,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard still holds the data lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard still holds the data lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Drop order matters: release the data lock before the model
        // lock, so the next model-granted holder finds it free.
        self.inner = None;
        if let Some((ctl, tid)) = self.ctx.take() {
            model::mutex_unlock(&ctl, tid, self.addr);
        }
    }
}

/// Shadow of [`super::real::spin_until`].
///
/// Each attempt of `cond` runs as one atomic step (loads inside it
/// still branch over visible stores). A failed attempt is retried
/// once in "freshest reads" mode — modeling C11 eventual visibility,
/// so a correctly-synchronized spin loop cannot report a spurious
/// deadlock just because the model kept handing it stale values —
/// and only then does the thread block until *some* store happens.
pub fn spin_until(mut cond: impl FnMut() -> bool) {
    let Some((ctl, tid)) = model::ctx() else {
        super::real::spin_until(cond);
        return;
    };
    struct ModeGuard<'a>(&'a Arc<Ctl>, usize);
    impl Drop for ModeGuard<'_> {
        fn drop(&mut self) {
            model::set_spin_mode(self.0, self.1, SpinMode::Normal);
        }
    }
    loop {
        let hit = {
            let _g = ModeGuard(&ctl, tid);
            model::set_spin_mode(&ctl, tid, SpinMode::Attempt);
            cond()
        };
        if hit {
            return;
        }
        let hit = {
            let _g = ModeGuard(&ctl, tid);
            model::set_spin_mode(&ctl, tid, SpinMode::Freshest);
            cond()
        };
        if hit {
            return;
        }
        model::spin_block(&ctl, tid);
    }
}
