//! # lnoc-netsim — flit-level NoC simulator
//!
//! The paper proposes its crossbars for on-chip networks and defines a
//! *Minimum Idle Time* for the sleep decision, but never shows network
//! data. This crate supplies the missing substrate: a flit-level 2-D
//! mesh/torus simulator with input-buffered wormhole routers carrying
//! **virtual channels with credit-based flow control** ([`router`]),
//! dimension-order routing with **dateline VC switching** on the torus
//! (deadlock-free DOR at `vcs ≥ 2`), synthetic traffic patterns (with
//! Bernoulli or bursty ON–OFF injection) and — crucially — per-VC-lane
//! **idle-interval histograms** plus an **in-loop sleep FSM** per
//! output VC lane ([`sleep`]), so power gating is simulated where it
//! belongs: inside the cycle loop, where wake latency back-pressures
//! real flits and an empty VC bank can sleep while its sibling carries
//! a worm. The offline policy models in [`lnoc_power::gating`] are
//! cross-validated against these in-loop measurements.
//!
//! The cycle loop itself runs on one of four result-identical kernels
//! ([`SimKernel`]): the dense `Reference` oracle; the `ActiveSet`
//! kernel that skips quiescent routers entirely and bulk-accounts
//! their idleness — a multiple-× cycle-rate win exactly in the
//! low-injection-rate regime the leakage study sweeps; the `Sharded`
//! kernel, which partitions the mesh into row-band tiles
//! ([`topology::TileMap`]) stepped by parallel workers exchanging
//! boundary traffic through double-buffered mailboxes — deterministic
//! by construction, bit-identical to the serial kernels for every
//! shard and thread count, and the way 64×64/128×128 sweeps stay
//! tractable; and the `EventDriven` kernel, which predicts each
//! source's next injection arrival ([`InjectionProcess::next_arrival`])
//! on a calendar-queue time wheel and **leaps the global clock over
//! dead windows**, bulk-replaying the skipped span with the same
//! closed-form idle machinery — the raw-speed lever that makes huge
//! low-rate sweeps routine. `Auto` (the default) picks between them by
//! mesh size and offered load ([`SimKernel::AUTO_SHARD_MIN_ROUTERS`],
//! [`SimKernel::AUTO_EVENT_MAX_RATE`],
//! [`SimKernel::AUTO_EVENT_MIN_ROUTERS`]). A
//! zero-progress watchdog ([`MeshConfig::watchdog_cycles`]) turns any
//! routing-deadlock regression into a fast, named failure instead of a
//! hung run — a panic from [`Simulation::run`], or a typed
//! [`SimAbort`] value from [`Simulation::try_run`] so sweep
//! orchestrators can record a deadlocked point and keep going.
//!
//! Robustness is first-class: a seeded [`FaultPlan`]
//! ([`MeshConfig::faults`]) schedules permanent and transient link and
//! router failures; routing swaps to per-epoch BFS detour tables
//! ([`FaultMap`], dateline-safe on the torus), doomed worms are reaped
//! with exact flit/credit conservation, unreachable destinations are
//! dropped with accounting, and [`NetworkStats`] reports the
//! degradation (drops, unroutable packets, reachable-pair floor,
//! post-fault latency) — all bit-identical across every kernel and
//! shard/thread geometry, faults included.
//!
//! ## Example
//!
//! ```
//! use lnoc_netsim::{
//!     GatingPolicy, InjectionProcess, MeshConfig, Simulation, SleepConfig, TrafficPattern,
//! };
//!
//! let cfg = MeshConfig {
//!     width: 4,
//!     height: 4,
//!     injection_rate: 0.05,
//!     pattern: TrafficPattern::UniformRandom,
//!     packet_len_flits: 4,
//!     buffer_depth: 4,                         // flits per VC
//!     vcs: 2,                                  // VCs per port
//!     seed: 7,
//!     wrap: false,                             // set for a torus
//!     injection: InjectionProcess::Bernoulli,  // or BurstyOnOff
//!     gating: Some(SleepConfig {
//!         policy: GatingPolicy::IdleThreshold(3),
//!         wake_latency: 1,
//!     }),
//!     // kernel: SimKernel::{Auto, ActiveSet, Reference, Sharded,
//!     // EventDriven} — Auto picks by mesh size and load (active-set
//!     // here); all kernels produce bit-identical statistics.
//!     // faults: Some(FaultPlan { .. }) arms a seeded fault scenario.
//!     ..MeshConfig::default()
//! };
//! let mut sim = Simulation::new(cfg);
//! let stats = sim.run(200, 1000);
//! assert!(stats.flits_delivered > 0);
//! assert!(stats.total_gating_counters().sleep_entries > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod fault;
pub mod router;
mod shard;
pub mod sim;
pub mod sleep;
pub mod stats;
pub mod sync;
pub mod topology;
pub mod traffic;
mod wheel;

pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use lnoc_power::gating::GatingPolicy;
pub use router::{RouteTarget, MAX_VCS};
pub use sim::{MeshConfig, SimAbort, SimKernel, Simulation};
pub use sleep::{SleepConfig, SleepState};
pub use stats::{IdleBank, NetworkStats};
pub use topology::FaultMap;
pub use traffic::{Flit, GapSampler, InjectionProcess, TrafficPattern};
