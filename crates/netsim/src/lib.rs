//! # lnoc-netsim — flit-level NoC simulator
//!
//! The paper proposes its crossbars for on-chip networks and defines a
//! *Minimum Idle Time* for the sleep decision, but never shows network
//! data. This crate supplies the missing substrate: a flit-level 2-D
//! mesh simulator with input-buffered wormhole routers, dimension-order
//! routing, synthetic traffic patterns and — crucially — per-output-port
//! **idle-interval histograms**, which feed the power-gating policy
//! evaluation in [`lnoc_power::gating`].
//!
//! ## Example
//!
//! ```
//! use lnoc_netsim::{MeshConfig, Simulation, TrafficPattern};
//!
//! let cfg = MeshConfig {
//!     width: 4,
//!     height: 4,
//!     injection_rate: 0.05,
//!     pattern: TrafficPattern::UniformRandom,
//!     packet_len_flits: 4,
//!     buffer_depth: 4,
//!     seed: 7,
//! };
//! let mut sim = Simulation::new(cfg);
//! let stats = sim.run(200, 1000);
//! assert!(stats.flits_delivered > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod router;
pub mod sim;
pub mod stats;
pub mod topology;
pub mod traffic;

pub use sim::{MeshConfig, Simulation};
pub use stats::NetworkStats;
pub use traffic::TrafficPattern;
