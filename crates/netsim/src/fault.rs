//! Deterministic fault injection: seeded schedules of permanent and
//! transient link/router failures.
//!
//! A [`FaultPlan`] describes *what should break and when* as data: a
//! seed, fault counts, and an onset window. [`FaultSchedule::build`]
//! expands it — before the simulation starts — into a sorted list of
//! **epochs**, each a cycle at which the fault set changes plus the
//! [`FaultMap`] describing the network from that cycle on. The
//! expansion is a pure function of `(plan, mesh)`, keyed like the
//! per-router RNG streams (a private salt XOR'd into the plan seed), so
//! the same plan produces bit-identical fault timelines under the
//! `Reference`, `ActiveSet` and `Sharded` kernels and every
//! shards×threads count.
//!
//! The simulation applies each epoch at a cycle boundary (between the
//! exchange phase of one cycle and the compute phase of the next), so
//! shard mailboxes are empty and credit conservation stays exact; see
//! the fault section in `sim.rs` for the reaping protocol.

use crate::topology::{Direction, FaultMap, Mesh};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Salt mixed into [`FaultPlan::seed`] so fault draws never collide
/// with the per-router injection streams derived from the same user
/// seed.
const FAULT_STREAM_SALT: u64 = 0xFA17_AB1E_0D00_5EED ^ 0x9e37_79b9_7f4a_7c15;

/// One scheduled change to the fault set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The physical link out of `router` in `dir` dies (both
    /// directions).
    LinkDown {
        /// Router on one end of the link.
        router: u32,
        /// Direction of the link out of `router`.
        dir: Direction,
    },
    /// A previously dead link heals (transient faults).
    LinkUp {
        /// Router on one end of the link.
        router: u32,
        /// Direction of the link out of `router`.
        dir: Direction,
    },
    /// Router `router` dies: every channel touching it blocks and it
    /// can neither inject nor eject.
    RouterDown {
        /// The dying router.
        router: u32,
    },
    /// A previously dead router heals.
    RouterUp {
        /// The healing router.
        router: u32,
    },
}

/// A [`FaultKind`] pinned to the cycle it takes effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Cycle the change applies (at the cycle's *start*; cycle numbers
    /// are absolute from simulation construction).
    pub at: u64,
    /// What breaks or heals.
    pub kind: FaultKind,
}

/// A declarative, seeded fault scenario.
///
/// The seeded draws pick distinct physical links / routers uniformly,
/// with onset cycles uniform in `[start_cycle, start_cycle + window)`;
/// `events` adds explicit hand-placed faults on top (tests and
/// reproductions). Attach the plan to [`crate::MeshConfig::faults`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the fault draws (independent of the traffic seed).
    pub seed: u64,
    /// Number of permanently failing links.
    pub link_faults: usize,
    /// Number of permanently failing routers.
    pub router_faults: usize,
    /// Number of transient link faults (each heals after
    /// [`FaultPlan::transient_duration`] cycles).
    pub transient_link_faults: usize,
    /// Cycles a transient link stays dead.
    pub transient_duration: u64,
    /// Earliest fault onset cycle.
    pub start_cycle: u64,
    /// Width of the onset window (0 = all faults strike at
    /// `start_cycle`).
    pub window: u64,
    /// Explicit events merged with the seeded draws.
    pub events: Vec<FaultEvent>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 2005,
            link_faults: 1,
            router_faults: 0,
            transient_link_faults: 0,
            transient_duration: 250,
            start_cycle: 200,
            window: 300,
            events: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan with `n` permanent link faults and defaults otherwise.
    pub fn links(n: usize) -> Self {
        FaultPlan {
            link_faults: n,
            ..FaultPlan::default()
        }
    }

    /// A plan with `n` permanent router faults and no link faults.
    pub fn routers(n: usize) -> Self {
        FaultPlan {
            link_faults: 0,
            router_faults: n,
            ..FaultPlan::default()
        }
    }

    /// A plan consisting only of the given explicit events.
    pub fn explicit(events: Vec<FaultEvent>) -> Self {
        FaultPlan {
            link_faults: 0,
            events,
            ..FaultPlan::default()
        }
    }

    /// The same plan under a different fault seed.
    pub fn with_seed(self, seed: u64) -> Self {
        FaultPlan { seed, ..self }
    }
}

/// One entry of an expanded schedule: from cycle `start` on, the
/// network looks like `map` (`None` = fully healed, route like the
/// pristine mesh).
#[derive(Debug, Clone)]
pub(crate) struct FaultEpoch {
    pub(crate) start: u64,
    pub(crate) map: Option<FaultMap>,
}

/// A [`FaultPlan`] expanded against a concrete mesh: cumulative
/// [`FaultMap`]s sorted by onset cycle.
#[derive(Debug, Clone)]
pub(crate) struct FaultSchedule {
    pub(crate) epochs: Vec<FaultEpoch>,
    /// Cycle of the first fault onset (post-fault metrics start here).
    pub(crate) first_fault_cycle: u64,
    /// Worst reachable-pair fraction over all epochs.
    pub(crate) min_reachable_fraction: f64,
}

impl FaultSchedule {
    /// Expands `plan` against `mesh`. Returns `None` when the plan
    /// produces no events at all (zero counts, no explicit events).
    pub(crate) fn build(plan: &FaultPlan, mesh: &Mesh) -> Option<FaultSchedule> {
        let n = mesh.len();
        let mut rng = StdRng::seed_from_u64(plan.seed ^ FAULT_STREAM_SALT);
        let mut events: Vec<FaultEvent> = Vec::new();
        // Distinct physical links, canonicalized to the lower-id end so
        // both directions of a link count as one draw (on a width-2
        // wrapped ring the East and West links between the same pair
        // are distinct channels and stay separately drawable).
        let mut links_taken: Vec<(usize, Direction)> = Vec::new();
        let mut draw_link = |rng: &mut StdRng| -> Option<(usize, Direction)> {
            for _ in 0..64 * n.max(1) {
                let rid = rng.gen_range(0..n);
                let dir = Direction::ALL[rng.gen_range(0..4usize)];
                let Some(nbr) = mesh.neighbor(rid, dir) else {
                    continue;
                };
                let canon = if rid <= nbr {
                    (rid, dir)
                } else {
                    (nbr, dir.opposite())
                };
                if links_taken.contains(&canon) {
                    continue;
                }
                links_taken.push(canon);
                return Some((rid, dir));
            }
            None
        };
        let window = plan.window.max(1);
        for _ in 0..plan.link_faults {
            let Some((rid, dir)) = draw_link(&mut rng) else {
                break;
            };
            let at = plan.start_cycle + rng.gen_range(0..window);
            events.push(FaultEvent {
                at,
                kind: FaultKind::LinkDown {
                    router: rid as u32,
                    dir,
                },
            });
        }
        let mut routers_taken: Vec<usize> = Vec::new();
        for _ in 0..plan.router_faults.min(n.saturating_sub(1)) {
            let rid = loop {
                let r = rng.gen_range(0..n);
                if !routers_taken.contains(&r) {
                    routers_taken.push(r);
                    break r;
                }
            };
            let at = plan.start_cycle + rng.gen_range(0..window);
            events.push(FaultEvent {
                at,
                kind: FaultKind::RouterDown { router: rid as u32 },
            });
        }
        for _ in 0..plan.transient_link_faults {
            let Some((rid, dir)) = draw_link(&mut rng) else {
                break;
            };
            let at = plan.start_cycle + rng.gen_range(0..window);
            let heal = at + plan.transient_duration.max(1);
            events.push(FaultEvent {
                at,
                kind: FaultKind::LinkDown {
                    router: rid as u32,
                    dir,
                },
            });
            events.push(FaultEvent {
                at: heal,
                kind: FaultKind::LinkUp {
                    router: rid as u32,
                    dir,
                },
            });
        }
        events.extend(plan.events.iter().copied());
        if events.is_empty() {
            return None;
        }
        for e in &mut events {
            // Cycle numbering starts at 1; an epoch at 0 would be
            // unreachable (faults apply at cycle starts).
            e.at = e.at.max(1);
        }
        events.sort_by_key(|e| e.at);

        let mut fm = FaultMap::new(mesh);
        let mut epochs: Vec<FaultEpoch> = Vec::new();
        let mut min_fraction = 1.0f64;
        let mut i = 0;
        while i < events.len() {
            let at = events[i].at;
            while i < events.len() && events[i].at == at {
                match events[i].kind {
                    FaultKind::LinkDown { router, dir } => {
                        fm.kill_link(mesh, router as usize, dir);
                    }
                    FaultKind::LinkUp { router, dir } => {
                        fm.revive_link(mesh, router as usize, dir);
                    }
                    FaultKind::RouterDown { router } => {
                        fm.kill_router(router as usize);
                    }
                    FaultKind::RouterUp { router } => {
                        fm.revive_router(router as usize);
                    }
                }
                i += 1;
            }
            fm.rebuild(mesh);
            let map = if fm.is_healthy() {
                None
            } else {
                min_fraction = min_fraction.min(fm.reachable_fraction());
                Some(fm.clone())
            };
            epochs.push(FaultEpoch { start: at, map });
        }
        let first = epochs[0].start;
        Some(FaultSchedule {
            epochs,
            first_fault_cycle: first,
            min_reachable_fraction: min_fraction,
        })
    }

    /// `true` when epoch `applied` (the number already in effect)
    /// exists and is due at or before `cycle` — a pure function of the
    /// schedule, so every shard agrees on every boundary.
    pub(crate) fn pending(&self, applied: usize, cycle: u64) -> bool {
        self.epochs.get(applied).is_some_and(|e| e.start <= cycle)
    }

    /// The fault map in effect once `applied` epochs have been applied
    /// (`None` = healthy network).
    pub(crate) fn map_after(&self, applied: usize) -> Option<&FaultMap> {
        if applied == 0 {
            None
        } else {
            self.epochs[applied - 1].map.as_ref()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic() {
        let mesh = Mesh::torus(8, 8);
        let plan = FaultPlan {
            link_faults: 3,
            router_faults: 2,
            transient_link_faults: 2,
            ..FaultPlan::default()
        };
        let a = FaultSchedule::build(&plan, &mesh).unwrap();
        let b = FaultSchedule::build(&plan, &mesh).unwrap();
        assert_eq!(a.epochs.len(), b.epochs.len());
        assert_eq!(a.first_fault_cycle, b.first_fault_cycle);
        assert_eq!(a.min_reachable_fraction, b.min_reachable_fraction);
        for (x, y) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(x.start, y.start);
            assert_eq!(x.map, y.map);
        }
        // A different seed reshuffles the draws.
        let c = FaultSchedule::build(&plan.clone().with_seed(7), &mesh).unwrap();
        assert!(
            a.epochs
                .iter()
                .zip(&c.epochs)
                .any(|(x, y)| x.start != y.start || x.map != y.map),
            "different fault seeds should produce different timelines"
        );
    }

    #[test]
    fn empty_plan_yields_no_schedule() {
        let mesh = Mesh::new(4, 4);
        let plan = FaultPlan {
            link_faults: 0,
            router_faults: 0,
            transient_link_faults: 0,
            events: vec![],
            ..FaultPlan::default()
        };
        assert!(FaultSchedule::build(&plan, &mesh).is_none());
    }

    #[test]
    fn transient_fault_heals_back_to_a_pristine_map() {
        let mesh = Mesh::new(4, 4);
        let plan = FaultPlan {
            link_faults: 0,
            transient_link_faults: 1,
            transient_duration: 100,
            window: 1,
            ..FaultPlan::default()
        };
        let s = FaultSchedule::build(&plan, &mesh).unwrap();
        assert_eq!(s.epochs.len(), 2, "one onset epoch, one healed epoch");
        assert!(s.epochs[0].map.is_some());
        assert!(
            s.epochs[1].map.is_none(),
            "after the only fault heals the map must revert to pristine"
        );
        assert_eq!(s.epochs[1].start, s.epochs[0].start + 100);
        assert!(s.min_reachable_fraction <= 1.0);
        assert!(!s.pending(2, u64::MAX));
        assert!(s.pending(0, s.epochs[0].start));
        assert!(!s.pending(0, s.epochs[0].start - 1));
        assert!(s.map_after(0).is_none());
        assert!(s.map_after(1).is_some());
        assert!(s.map_after(2).is_none());
    }

    #[test]
    fn explicit_events_are_honored_verbatim() {
        let mesh = Mesh::new(3, 3);
        let plan = FaultPlan::explicit(vec![FaultEvent {
            at: 50,
            kind: FaultKind::RouterDown { router: 4 },
        }]);
        let s = FaultSchedule::build(&plan, &mesh).unwrap();
        assert_eq!(s.epochs.len(), 1);
        assert_eq!(s.first_fault_cycle, 50);
        let map = s.epochs[0].map.as_ref().unwrap();
        assert!(!map.router_alive(4));
        assert_eq!(map.dead_router_count(), 1);
    }
}
