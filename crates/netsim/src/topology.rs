//! 2-D mesh / torus topology and port directions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Router port direction; `Local` is the PE port of the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Toward smaller y.
    North,
    /// Toward larger y.
    South,
    /// Toward larger x.
    East,
    /// Toward smaller x.
    West,
    /// The local processing element.
    Local,
}

impl Direction {
    /// All five directions, Local last.
    pub const ALL: [Direction; 5] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
        Direction::Local,
    ];

    /// Index into per-port arrays.
    pub fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::South => 1,
            Direction::East => 2,
            Direction::West => 3,
            Direction::Local => 4,
        }
    }

    /// Inverse of [`Direction::index`] (`ALL` is in index order).
    ///
    /// # Panics
    ///
    /// Panics when `i >= 5`.
    pub fn from_index(i: usize) -> Direction {
        Direction::ALL[i]
    }

    /// The port on the neighbouring router that a flit sent out of this
    /// port arrives on.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::Local => Direction::Local,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::South => "S",
            Direction::East => "E",
            Direction::West => "W",
            Direction::Local => "L",
        };
        f.write_str(s)
    }
}

/// A `width × height` mesh, optionally with torus wraparound links.
///
/// With `wrap` set, every row and column closes into a ring and
/// dimension-order routing takes the shorter way around. Note that
/// wormhole DOR on a torus is not provably deadlock-free without
/// virtual channels; the simulator is faithful to that hardware
/// reality, so torus experiments should stay at low-to-moderate load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    /// Routers per row.
    pub width: usize,
    /// Routers per column.
    pub height: usize,
    /// Torus wraparound links on both dimensions.
    pub wrap: bool,
}

impl Mesh {
    /// A plain mesh (no wraparound).
    pub fn new(width: usize, height: usize) -> Self {
        Mesh {
            width,
            height,
            wrap: false,
        }
    }

    /// A torus (wraparound in both dimensions).
    pub fn torus(width: usize, height: usize) -> Self {
        Mesh {
            width,
            height,
            wrap: true,
        }
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// `true` for a degenerate empty mesh.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Router id at coordinates.
    pub fn id(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    /// Coordinates of a router id.
    pub fn coords(&self, id: usize) -> (usize, usize) {
        (id % self.width, id / self.width)
    }

    /// The neighbour of `id` in `dir`, if it exists. On a torus every
    /// non-Local direction has a neighbour (wrapping around the edge).
    pub fn neighbor(&self, id: usize, dir: Direction) -> Option<usize> {
        let (x, y) = self.coords(id);
        let wrap_y = self.wrap && self.height > 1;
        let wrap_x = self.wrap && self.width > 1;
        match dir {
            Direction::North => {
                if y > 0 {
                    Some(self.id(x, y - 1))
                } else {
                    wrap_y.then(|| self.id(x, self.height - 1))
                }
            }
            Direction::South => {
                if y + 1 < self.height {
                    Some(self.id(x, y + 1))
                } else {
                    wrap_y.then(|| self.id(x, 0))
                }
            }
            Direction::East => {
                if x + 1 < self.width {
                    Some(self.id(x + 1, y))
                } else {
                    wrap_x.then(|| self.id(0, y))
                }
            }
            Direction::West => {
                if x > 0 {
                    Some(self.id(x - 1, y))
                } else {
                    wrap_x.then(|| self.id(self.width - 1, y))
                }
            }
            Direction::Local => None,
        }
    }

    /// Signed hop count along one ring dimension: positive = increasing
    /// coordinate. On a torus, the shorter way around (ties broken
    /// toward the positive direction).
    fn dim_step(&self, here: usize, there: usize, extent: usize) -> isize {
        if here == there {
            return 0;
        }
        if !self.wrap {
            return there as isize - here as isize;
        }
        let fwd = (there + extent - here) % extent;
        let back = extent - fwd;
        if fwd <= back {
            fwd as isize
        } else {
            -(back as isize)
        }
    }

    /// Dimension-order (XY) routing: the output direction a flit at
    /// router `here` must take toward `dst`. On a torus each dimension
    /// is traversed the shorter way around.
    pub fn route_xy(&self, here: usize, dst: usize) -> Direction {
        self.route_xy_at(self.coords(here), self.coords(dst))
    }

    /// [`Mesh::route_xy`] with both routers' coordinates already in
    /// hand — identical result by construction. The simulation kernels
    /// cache every router's `(x, y)`, so routing on meshes too large
    /// for a [`RouteTable`] performs no divisions per flit.
    pub fn route_xy_at(&self, (hx, hy): (usize, usize), (dx, dy): (usize, usize)) -> Direction {
        let step_x = self.dim_step(hx, dx, self.width);
        if step_x > 0 {
            return Direction::East;
        }
        if step_x < 0 {
            return Direction::West;
        }
        let step_y = self.dim_step(hy, dy, self.height);
        if step_y > 0 {
            Direction::South
        } else if step_y < 0 {
            Direction::North
        } else {
            Direction::Local
        }
    }

    /// Hop distance under dimension-order routing (wrap-aware minimal
    /// distance on a torus, Manhattan on a mesh).
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        self.dim_step(ax, bx, self.width).unsigned_abs()
            + self.dim_step(ay, by, self.height).unsigned_abs()
    }

    /// Dateline VC class of the link a packet from `src` takes out of
    /// `here` in direction `dir`: `0` until the packet's path in the
    /// current dimension has crossed that dimension's wraparound edge,
    /// `1` from the crossing link onward. Always `0` on a plain mesh.
    ///
    /// Each unidirectional ring's wrap edge is its dateline. Under
    /// shortest-way DOR a packet crosses it at most once per dimension,
    /// and the crossing history is a pure function of the source
    /// coordinate (the X phase starts at `src.x`, the Y phase at
    /// `src.y`), so no per-packet state is needed:
    ///
    /// * travelling East, the packet has wrapped iff `here.x < src.x`,
    ///   and the outgoing link itself wraps iff `here.x == width - 1`;
    /// * the other three directions are symmetric.
    ///
    /// Class-0 channels therefore never include a wrap link and class-1
    /// channels never wrap twice, so each class's channel-dependency
    /// graph is acyclic — the classic dateline deadlock-freedom
    /// argument for torus DOR with ≥ 2 virtual channels.
    pub fn dateline_class(&self, here: usize, src: usize, dir: Direction) -> u8 {
        if !self.wrap {
            return 0;
        }
        self.dateline_class_at(self.coords(here), self.coords(src), dir)
    }

    /// [`Mesh::dateline_class`] with both routers' coordinates already
    /// in hand — the active-set kernel caches every router's `(x, y)`
    /// so its per-flit route closure performs no divisions.
    pub fn dateline_class_at(
        &self,
        (hx, hy): (usize, usize),
        (sx, sy): (usize, usize),
        dir: Direction,
    ) -> u8 {
        if !self.wrap {
            return 0;
        }
        match dir {
            Direction::East => u8::from(hx < sx || hx == self.width - 1),
            Direction::West => u8::from(hx > sx || hx == 0),
            Direction::South => u8::from(hy < sy || hy == self.height - 1),
            Direction::North => u8::from(hy > sy || hy == 0),
            Direction::Local => 0,
        }
    }

    /// The virtual channel a packet requests for its next link.
    ///
    /// * `vcs == 1` — always VC 0 (the degenerate single-FIFO case; a
    ///   torus then has no dateline escape, faithfully reproducing the
    ///   deadlock-prone hardware the module docs warn about).
    /// * Plain mesh — all VCs are equivalent; packets are spread
    ///   `packet_id % vcs` so sibling VC banks share the load.
    /// * Torus with `vcs ≥ 2` — the VC space splits into a class-0
    ///   half `[0, ⌈vcs/2⌉)` and a class-1 half `[⌈vcs/2⌉, vcs)`;
    ///   [`Mesh::dateline_class`] picks the half and `packet_id`
    ///   spreads packets within it.
    ///
    /// The choice is a pure function of `(here, src, dst, packet_id)`,
    /// so every flit of a packet computes the same VC at a hop — body
    /// flits need no stored allocation state to follow their head.
    pub fn hop_vc(
        &self,
        here: usize,
        src: usize,
        packet_id: u64,
        dir: Direction,
        vcs: usize,
    ) -> u8 {
        if vcs == 1 || dir == Direction::Local {
            return 0;
        }
        if !self.wrap {
            return (packet_id % vcs as u64) as u8;
        }
        self.hop_vc_at(self.coords(here), self.coords(src), packet_id, dir, vcs)
    }

    /// [`Mesh::hop_vc`] with both routers' coordinates already in hand
    /// (see [`Mesh::dateline_class_at`]). Identical result by
    /// construction — the class logic lives in one place.
    pub fn hop_vc_at(
        &self,
        here: (usize, usize),
        src: (usize, usize),
        packet_id: u64,
        dir: Direction,
        vcs: usize,
    ) -> u8 {
        if vcs == 1 || dir == Direction::Local {
            return 0;
        }
        if !self.wrap {
            return (packet_id % vcs as u64) as u8;
        }
        let h0 = vcs.div_ceil(2);
        match self.dateline_class_at(here, src, dir) {
            0 => (packet_id % h0 as u64) as u8,
            _ => (h0 as u64 + packet_id % (vcs - h0) as u64) as u8,
        }
    }

    /// The virtual channel a freshly generated packet is injected into
    /// at its source's Local input port — the class-0 share of
    /// [`Mesh::hop_vc`] (injection never crosses a dateline).
    pub fn injection_vc(&self, packet_id: u64, vcs: usize) -> u8 {
        if vcs == 1 {
            return 0;
        }
        if !self.wrap {
            return (packet_id % vcs as u64) as u8;
        }
        (packet_id % vcs.div_ceil(2) as u64) as u8
    }
}

/// Flat, cache-linear neighbour lookup: `ids[router * 4 + dir]` holds
/// the neighbour in each cardinal direction (`u32::MAX` when the edge
/// has no link). The active-set kernel's hot downstream-readiness check
/// reads this instead of recomputing coordinates through
/// [`Mesh::neighbor`] every cycle.
#[derive(Debug, Clone)]
pub struct NeighborTable {
    ids: Vec<u32>,
}

/// Sentinel for "no neighbour on this edge".
const NO_NEIGHBOR: u32 = u32::MAX;

impl NeighborTable {
    /// Precomputes the table for a mesh/torus.
    pub fn new(mesh: &Mesh) -> Self {
        let n = mesh.len();
        let mut ids = vec![NO_NEIGHBOR; n * 4];
        for rid in 0..n {
            for d in &Direction::ALL[..4] {
                if let Some(next) = mesh.neighbor(rid, *d) {
                    ids[rid * 4 + d.index()] = next as u32;
                }
            }
        }
        NeighborTable { ids }
    }

    /// The neighbour of `rid` in cardinal direction `dir`, if any.
    ///
    /// # Panics
    ///
    /// Panics (in debug) when `dir` is [`Direction::Local`].
    pub fn get(&self, rid: usize, dir: Direction) -> Option<usize> {
        debug_assert!(dir != Direction::Local);
        let id = self.ids[rid * 4 + dir.index()];
        (id != NO_NEIGHBOR).then_some(id as usize)
    }
}

/// Precomputed dimension-order routes: `dirs[src * n + dst]` is the
/// [`Direction::index`] of [`Mesh::route_xy`]`(src, dst)`. One byte per
/// pair, so the table is only built for meshes up to
/// [`RouteTable::MAX_ROUTERS`] routers (1 MiB at the cap); larger
/// networks fall back to computing routes on the fly.
#[derive(Debug, Clone)]
pub struct RouteTable {
    dirs: Vec<u8>,
    n: usize,
}

impl RouteTable {
    /// Largest router count the table is built for (32×32).
    pub const MAX_ROUTERS: usize = 1024;

    /// Builds the table when the mesh is small enough.
    pub fn build(mesh: &Mesh) -> Option<Self> {
        let n = mesh.len();
        if n > Self::MAX_ROUTERS {
            return None;
        }
        let mut dirs = vec![0u8; n * n];
        for src in 0..n {
            for dst in 0..n {
                dirs[src * n + dst] = mesh.route_xy(src, dst).index() as u8;
            }
        }
        Some(RouteTable { dirs, n })
    }

    /// The output direction at `here` toward `dst` — identical to
    /// [`Mesh::route_xy`] by construction.
    pub fn route(&self, here: usize, dst: usize) -> Direction {
        Direction::from_index(self.dirs[here * self.n + dst] as usize)
    }
}

/// Sentinel direction index for "no surviving path".
const NO_ROUTE: u8 = u8::MAX;

/// Liveness state of the network under an active fault set, plus a
/// per-destination BFS next-hop table that routes *around* the dead
/// components.
///
/// A `FaultMap` answers two questions the routing layer needs:
///
/// * **liveness** — is this router / directed channel usable? Link
///   faults always take out both directions of a physical link, and a
///   dead router blocks every channel touching it.
/// * **routing** — what is the first hop of a shortest *surviving*
///   path from `rid` to `dst`? The table is rebuilt by breadth-first
///   search from every destination whenever the fault set changes
///   ([`FaultMap::rebuild`]), with a fixed direction expansion order so
///   the result is a pure function of the fault set — the property the
///   deterministic kernels need. Because every hop strictly decreases
///   the BFS distance to the destination, packets following the table
///   can neither loop nor livelock.
///
/// The table costs one byte per ordered router pair, so faulted
/// configurations are capped at [`FaultMap::MAX_ROUTERS`] routers
/// (16 MiB at the cap).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMap {
    n: usize,
    /// Explicit link faults, per directed channel `rid * 4 + dir`.
    /// [`FaultMap::kill_link`] always marks both directions.
    dead_link: Vec<bool>,
    /// Explicit router faults.
    dead_router: Vec<bool>,
    /// Effective channel liveness: blocked when the link itself is dead
    /// or either endpoint router is dead. Derived by `rebuild`.
    blocked: Vec<bool>,
    /// `next_hop[dst * n + rid]`: [`Direction::index`] of the first hop
    /// from `rid` toward `dst` on a shortest surviving path
    /// ([`Direction::Local`] at `rid == dst`); `NO_ROUTE` when
    /// unreachable.
    next_hop: Vec<u8>,
    reachable_pairs: u64,
    link_faults: usize,
    router_faults: usize,
}

impl FaultMap {
    /// Largest router count faulted configurations support (64×64);
    /// the per-destination next-hop table is quadratic in routers.
    pub const MAX_ROUTERS: usize = 4096;

    /// An all-alive map for `mesh` (routes not yet built — call
    /// [`FaultMap::rebuild`] after applying faults).
    pub fn new(mesh: &Mesh) -> Self {
        let n = mesh.len();
        assert!(
            n <= Self::MAX_ROUTERS,
            "faulted meshes are capped at {} routers, got {n}",
            Self::MAX_ROUTERS
        );
        FaultMap {
            n,
            dead_link: vec![false; n * 4],
            dead_router: vec![false; n],
            blocked: vec![false; n * 4],
            next_hop: vec![NO_ROUTE; n * n],
            reachable_pairs: 0,
            link_faults: 0,
            router_faults: 0,
        }
    }

    /// Marks the physical link out of `rid` in `dir` dead (both
    /// directions). Returns `false` when there is no such link or it is
    /// already dead. Routes are stale until [`FaultMap::rebuild`].
    pub fn kill_link(&mut self, mesh: &Mesh, rid: usize, dir: Direction) -> bool {
        let Some(nbr) = mesh.neighbor(rid, dir) else {
            return false;
        };
        if self.dead_link[rid * 4 + dir.index()] {
            return false;
        }
        self.dead_link[rid * 4 + dir.index()] = true;
        self.dead_link[nbr * 4 + dir.opposite().index()] = true;
        self.link_faults += 1;
        true
    }

    /// Revives a link previously killed with [`FaultMap::kill_link`].
    /// Returns `false` when the link does not exist or is already
    /// alive.
    pub fn revive_link(&mut self, mesh: &Mesh, rid: usize, dir: Direction) -> bool {
        let Some(nbr) = mesh.neighbor(rid, dir) else {
            return false;
        };
        if !self.dead_link[rid * 4 + dir.index()] {
            return false;
        }
        self.dead_link[rid * 4 + dir.index()] = false;
        self.dead_link[nbr * 4 + dir.opposite().index()] = false;
        self.link_faults -= 1;
        true
    }

    /// Marks router `rid` dead (all its channels block and it can
    /// neither inject nor eject). Returns `false` if already dead.
    pub fn kill_router(&mut self, rid: usize) -> bool {
        if self.dead_router[rid] {
            return false;
        }
        self.dead_router[rid] = true;
        self.router_faults += 1;
        true
    }

    /// Revives a router previously killed with
    /// [`FaultMap::kill_router`]. Returns `false` if already alive.
    pub fn revive_router(&mut self, rid: usize) -> bool {
        if !self.dead_router[rid] {
            return false;
        }
        self.dead_router[rid] = false;
        self.router_faults -= 1;
        true
    }

    /// `true` when no fault is active (the map routes like the healthy
    /// mesh and callers can drop it entirely).
    pub fn is_healthy(&self) -> bool {
        self.link_faults == 0 && self.router_faults == 0
    }

    /// Recomputes effective channel liveness and the next-hop table
    /// from the current fault set: one BFS per destination over the
    /// surviving reverse channels, expanding directions in a fixed
    /// order so the table is deterministic.
    pub fn rebuild(&mut self, mesh: &Mesh) {
        let n = self.n;
        assert_eq!(n, mesh.len(), "fault map built for a different mesh");
        for rid in 0..n {
            for d in &Direction::ALL[..4] {
                let di = d.index();
                let nbr = mesh.neighbor(rid, *d);
                self.blocked[rid * 4 + di] = self.dead_link[rid * 4 + di]
                    || self.dead_router[rid]
                    || nbr.is_none_or(|v| self.dead_router[v]);
            }
        }
        self.reachable_pairs = 0;
        let mut queue = std::collections::VecDeque::with_capacity(n);
        for dst in 0..n {
            let row = &mut self.next_hop[dst * n..(dst + 1) * n];
            row.fill(NO_ROUTE);
            if self.dead_router[dst] {
                continue;
            }
            row[dst] = Direction::Local.index() as u8;
            queue.clear();
            queue.push_back(dst);
            while let Some(u) = queue.pop_front() {
                for d in &Direction::ALL[..4] {
                    let Some(v) = mesh.neighbor(u, *d) else {
                        continue;
                    };
                    // Traffic flows v → u, i.e. out of v's opposite
                    // port; that channel must survive.
                    let out = d.opposite();
                    if row[v] != NO_ROUTE || self.blocked[v * 4 + out.index()] {
                        continue;
                    }
                    row[v] = out.index() as u8;
                    queue.push_back(v);
                }
            }
            self.reachable_pairs += row
                .iter()
                .enumerate()
                .filter(|&(rid, &h)| rid != dst && h != NO_ROUTE)
                .count() as u64;
        }
    }

    /// `true` when router `rid` is alive.
    pub fn router_alive(&self, rid: usize) -> bool {
        !self.dead_router[rid]
    }

    /// `true` when the directed channel out of `rid` in `dir` is not
    /// fault-blocked (a mesh-edge channel that never existed reports
    /// `true`; pair with the credit check, which is 0 there).
    pub fn link_alive(&self, rid: usize, dir: Direction) -> bool {
        dir == Direction::Local || !self.blocked[rid * 4 + dir.index()]
    }

    /// First hop of a shortest surviving path from `rid` toward `dst`
    /// ([`Direction::Local`] when `rid == dst`), or `None` when `dst`
    /// is unreachable from `rid` under the active faults.
    pub fn route(&self, rid: usize, dst: usize) -> Option<Direction> {
        let h = self.next_hop[dst * self.n + rid];
        (h != NO_ROUTE).then(|| Direction::from_index(h as usize))
    }

    /// `true` when a surviving path `rid → dst` exists (trivially true
    /// at `rid == dst` on an alive router).
    pub fn reachable(&self, rid: usize, dst: usize) -> bool {
        self.next_hop[dst * self.n + rid] != NO_ROUTE
    }

    /// Fraction of ordered distinct router pairs still connected, in
    /// `[0, 1]` — the degradation metric the sweep reports.
    pub fn reachable_fraction(&self) -> f64 {
        let total = (self.n * (self.n - 1)) as f64;
        if total == 0.0 {
            1.0
        } else {
            self.reachable_pairs as f64 / total
        }
    }

    /// Number of dead physical links (undirected).
    pub fn dead_link_count(&self) -> usize {
        self.link_faults
    }

    /// Number of dead routers.
    pub fn dead_router_count(&self) -> usize {
        self.router_faults
    }

    /// One-line human summary for diagnostics (watchdog, sweeps).
    pub fn summary(&self) -> String {
        format!(
            "{} dead router(s), {} dead link(s); {}/{} pairs reachable ({:.1}%)",
            self.router_faults,
            self.link_faults,
            self.reachable_pairs,
            self.n * (self.n - 1),
            self.reachable_fraction() * 100.0
        )
    }
}

/// A partition of the mesh into horizontal **tile bands** for the
/// sharded kernel: shard `s` owns the full-width rectangle of rows
/// `row0[s] .. row0[s + 1]`.
///
/// Full-width bands are the partition shape that keeps the sharded
/// kernel simple *and* fast:
///
/// * router ids are row-major, so each tile is a **contiguous id
///   range** — every per-router SoA slab (lanes, credits, RNG streams,
///   source queues) splits into per-shard slices with zero index
///   translation;
/// * East/West links never cross a tile boundary, so the only halo is
///   the North/South boundary rows (plus, on a torus, the wrap edge
///   between the first and last band) — at most two neighbour shards
///   per shard, each with a fixed `width`-bounded message budget per
///   cycle.
///
/// Rows are distributed as evenly as possible (the first `height mod
/// shards` bands get one extra row), so shard loads stay balanced on
/// any mesh height.
#[derive(Debug, Clone)]
pub struct TileMap {
    width: usize,
    height: usize,
    wrap: bool,
    /// `shards + 1` entries; shard `s` owns rows `row0[s]..row0[s+1]`.
    row0: Vec<usize>,
}

impl TileMap {
    /// Partitions `mesh` into `shards` row bands.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or exceeds the mesh height (every
    /// band needs at least one row).
    pub fn new(mesh: &Mesh, shards: usize) -> TileMap {
        assert!(
            shards >= 1 && shards <= mesh.height,
            "shards must be in 1..=height ({}), got {shards}",
            mesh.height
        );
        let base = mesh.height / shards;
        let extra = mesh.height % shards;
        let mut row0 = Vec::with_capacity(shards + 1);
        let mut row = 0;
        row0.push(0);
        for s in 0..shards {
            row += base + usize::from(s < extra);
            row0.push(row);
        }
        TileMap {
            width: mesh.width,
            height: mesh.height,
            wrap: mesh.wrap,
            row0,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.row0.len() - 1
    }

    /// The contiguous router-id range shard `s` owns.
    pub fn router_range(&self, s: usize) -> std::ops::Range<usize> {
        self.row0[s] * self.width..self.row0[s + 1] * self.width
    }

    /// The shard owning router `rid`.
    pub fn shard_of(&self, rid: usize) -> usize {
        debug_assert!(rid < self.width * self.height);
        let row = rid / self.width;
        self.row0.partition_point(|&r| r <= row) - 1
    }

    /// Shards sharing a halo edge with `s`, ascending. Row bands touch
    /// their immediate neighbours; on a torus the first and last band
    /// are additionally adjacent through the wrap edge.
    pub fn neighbors(&self, s: usize) -> Vec<usize> {
        let shards = self.shards();
        let mut out = Vec::with_capacity(2);
        if s > 0 {
            out.push(s - 1);
        }
        if s + 1 < shards {
            out.push(s + 1);
        }
        if self.wrap && shards > 1 {
            let other = if s == 0 { shards - 1 } else { 0 };
            if (s == 0 || s == shards - 1) && !out.contains(&other) {
                out.push(other);
            }
        }
        out.sort_unstable();
        out
    }

    /// Directed boundary-link count from shard `s` to shard `t`: the
    /// number of unidirectional mesh links whose source router is in
    /// `s` and destination in `t`. Sizes the fixed per-edge mailbox
    /// capacity — at most one flit per link and one credit per reverse
    /// link can cross per cycle.
    pub fn boundary_links(&self, s: usize, t: usize) -> usize {
        let shards = self.shards();
        let mut links = 0;
        // Southward edge: s's last row feeds t's first row.
        if t == s + 1 || (self.wrap && shards > 1 && s == shards - 1 && t == 0) {
            links += self.width;
        }
        // Northward edge: s's first row feeds t's last row.
        if s == t + 1 || (self.wrap && shards > 1 && s == 0 && t == shards - 1) {
            links += self.width;
        }
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_and_coords_roundtrip() {
        let m = Mesh::new(4, 3);
        for id in 0..m.len() {
            let (x, y) = m.coords(id);
            assert_eq!(m.id(x, y), id);
        }
    }

    #[test]
    fn edges_have_no_neighbors() {
        let m = Mesh::new(3, 3);
        assert_eq!(m.neighbor(m.id(0, 0), Direction::North), None);
        assert_eq!(m.neighbor(m.id(0, 0), Direction::West), None);
        assert_eq!(m.neighbor(m.id(0, 0), Direction::East), Some(m.id(1, 0)));
    }

    #[test]
    fn torus_edges_wrap() {
        let m = Mesh::torus(3, 4);
        assert_eq!(m.neighbor(m.id(0, 0), Direction::North), Some(m.id(0, 3)));
        assert_eq!(m.neighbor(m.id(0, 0), Direction::West), Some(m.id(2, 0)));
        assert_eq!(m.neighbor(m.id(2, 3), Direction::East), Some(m.id(0, 3)));
        assert_eq!(m.neighbor(m.id(2, 3), Direction::South), Some(m.id(2, 0)));
        // Wraparound is consistent with opposite(): going out one way
        // and back returns home.
        for id in 0..m.len() {
            for d in [
                Direction::North,
                Direction::South,
                Direction::East,
                Direction::West,
            ] {
                let n = m.neighbor(id, d).expect("torus is fully connected");
                assert_eq!(m.neighbor(n, d.opposite()), Some(id));
            }
        }
    }

    #[test]
    fn xy_routes_x_first() {
        let m = Mesh::new(4, 4);
        let here = m.id(0, 0);
        let dst = m.id(2, 3);
        assert_eq!(m.route_xy(here, dst), Direction::East);
        let mid = m.id(2, 0);
        assert_eq!(m.route_xy(mid, dst), Direction::South);
        assert_eq!(m.route_xy(dst, dst), Direction::Local);
    }

    #[test]
    fn torus_routes_take_the_short_way() {
        let m = Mesh::torus(5, 5);
        // (0,0) → (4,0): one hop West around the edge, not four East.
        assert_eq!(m.route_xy(m.id(0, 0), m.id(4, 0)), Direction::West);
        assert_eq!(m.hops(m.id(0, 0), m.id(4, 0)), 1);
        // (0,0) → (0,4): one hop North around the edge.
        assert_eq!(m.route_xy(m.id(0, 0), m.id(0, 4)), Direction::North);
        // Exactly half way: tie broken toward the positive direction.
        let m4 = Mesh::torus(4, 4);
        assert_eq!(m4.route_xy(m4.id(0, 0), m4.id(2, 0)), Direction::East);
        assert_eq!(m4.hops(m4.id(0, 0), m4.id(2, 0)), 2);
    }

    #[test]
    fn xy_terminates_at_destination() {
        // Following route_xy always reaches dst in hops() steps, on
        // both the mesh and the torus.
        for m in [Mesh::new(5, 4), Mesh::torus(5, 4)] {
            for src in 0..m.len() {
                for dst in 0..m.len() {
                    let mut here = src;
                    let mut steps = 0;
                    while here != dst {
                        let dir = m.route_xy(here, dst);
                        here = m.neighbor(here, dir).expect("route stays in network");
                        steps += 1;
                        assert!(steps <= m.hops(src, dst), "no detours in DOR");
                    }
                    assert_eq!(steps, m.hops(src, dst));
                }
            }
        }
    }

    #[test]
    fn torus_never_beats_mesh_distance() {
        let mesh = Mesh::new(6, 3);
        let torus = Mesh::torus(6, 3);
        for a in 0..mesh.len() {
            for b in 0..mesh.len() {
                assert!(torus.hops(a, b) <= mesh.hops(a, b));
            }
        }
    }

    #[test]
    fn opposite_is_involutive() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn from_index_roundtrips() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_index(d.index()), d);
        }
    }

    #[test]
    fn neighbor_table_matches_mesh() {
        for m in [Mesh::new(5, 3), Mesh::torus(5, 3), Mesh::new(2, 2)] {
            let t = NeighborTable::new(&m);
            for rid in 0..m.len() {
                for d in &Direction::ALL[..4] {
                    assert_eq!(t.get(rid, *d), m.neighbor(rid, *d), "{m:?} {rid} {d}");
                }
            }
        }
    }

    #[test]
    fn dateline_class_flips_exactly_once_per_dimension() {
        // Walk the full DOR path of every (src, dst) pair on a torus:
        // within each dimension the class starts at 0, becomes 1 on the
        // wrap link, and never returns to 0.
        let m = Mesh::torus(5, 4);
        for src in 0..m.len() {
            for dst in 0..m.len() {
                let mut here = src;
                let mut last: Option<(Direction, u8)> = None;
                while here != dst {
                    let dir = m.route_xy(here, dst);
                    let class = m.dateline_class(here, src, dir);
                    if let Some((pd, pc)) = last {
                        let same_dim = matches!(
                            (pd, dir),
                            (
                                Direction::East | Direction::West,
                                Direction::East | Direction::West
                            ) | (
                                Direction::North | Direction::South,
                                Direction::North | Direction::South
                            )
                        );
                        if same_dim {
                            assert!(class >= pc, "class dropped mid-dimension");
                        }
                    }
                    let next = m.neighbor(here, dir).unwrap();
                    // The class-1 half is entered exactly on wrap links.
                    let (hx, hy) = m.coords(here);
                    let (nx, ny) = m.coords(next);
                    let wraps = (hx == m.width - 1 && nx == 0)
                        || (hx == 0 && nx == m.width - 1)
                        || (hy == m.height - 1 && ny == 0)
                        || (hy == 0 && ny == m.height - 1);
                    if wraps {
                        assert_eq!(class, 1, "wrap link must ride class 1");
                    }
                    last = Some((dir, class));
                    here = next;
                }
            }
        }
    }

    #[test]
    fn mesh_has_no_dateline() {
        let m = Mesh::new(4, 4);
        for here in 0..m.len() {
            for d in Direction::ALL {
                assert_eq!(m.dateline_class(here, 0, d), 0);
            }
        }
    }

    #[test]
    fn hop_vc_respects_class_halves() {
        let m = Mesh::torus(6, 6);
        for vcs in [2usize, 3, 4] {
            let h0 = vcs.div_ceil(2);
            for pid in 0..12u64 {
                // Class 0: injection + non-wrapped hops stay below h0.
                let vc0 = m.injection_vc(pid, vcs);
                assert!((vc0 as usize) < h0);
                // A hop on the wrap link (here.x == width-1, East) is
                // class 1 and lands in the upper half.
                let here = m.id(5, 0);
                let vc1 = m.hop_vc(here, here, pid, Direction::East, vcs);
                assert!((vc1 as usize) >= h0, "vcs={vcs} pid={pid} vc={vc1}");
                assert!((vc1 as usize) < vcs);
            }
        }
        // Single VC: always 0, wrap or not.
        assert_eq!(m.hop_vc(m.id(5, 0), m.id(5, 0), 7, Direction::East, 1), 0);
        // Plain mesh: packets spread across all VCs.
        let flat = Mesh::new(4, 4);
        let vcs: Vec<u8> = (0..8)
            .map(|pid| flat.hop_vc(0, 0, pid, Direction::East, 4))
            .collect();
        assert_eq!(vcs, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn hop_vc_is_uniform_along_a_packet_path() {
        // Every flit of a packet recomputes the same VC at each hop —
        // the property that lets body flits follow their head without
        // stored allocation state.
        let m = Mesh::torus(5, 5);
        for src in 0..m.len() {
            for dst in 0..m.len() {
                let mut here = src;
                while here != dst {
                    let dir = m.route_xy(here, dst);
                    let a = m.hop_vc(here, src, 11, dir, 4);
                    let b = m.hop_vc(here, src, 11, dir, 4);
                    assert_eq!(a, b);
                    here = m.neighbor(here, dir).unwrap();
                }
            }
        }
    }

    #[test]
    fn tile_map_partitions_exactly() {
        for (w, h, wrap) in [(4, 4, false), (5, 7, true), (16, 16, false), (3, 2, true)] {
            let mesh = Mesh {
                width: w,
                height: h,
                wrap,
            };
            for shards in 1..=h {
                let t = TileMap::new(&mesh, shards);
                assert_eq!(t.shards(), shards);
                // Ranges are contiguous, ascending, and cover all ids.
                let mut next = 0;
                for s in 0..shards {
                    let r = t.router_range(s);
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty(), "every band owns at least one row");
                    assert_eq!(r.len() % w, 0, "bands are whole rows");
                    for rid in r.clone() {
                        assert_eq!(t.shard_of(rid), s);
                    }
                    next = r.end;
                }
                assert_eq!(next, mesh.len());
                // Band heights differ by at most one row.
                let rows: Vec<usize> = (0..shards).map(|s| t.router_range(s).len() / w).collect();
                let (min, max) = (rows.iter().min().unwrap(), rows.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced bands: {rows:?}");
            }
        }
    }

    #[test]
    fn tile_map_neighbors_match_actual_cross_links() {
        // The declared halo edges and their link counts must agree with
        // a brute-force scan of every mesh link.
        for (w, h, wrap) in [(4, 6, false), (4, 6, true), (3, 8, true), (5, 2, true)] {
            let mesh = Mesh {
                width: w,
                height: h,
                wrap,
            };
            for shards in 1..=h {
                let t = TileMap::new(&mesh, shards);
                let mut counted = vec![vec![0usize; shards]; shards];
                for rid in 0..mesh.len() {
                    for d in &Direction::ALL[..4] {
                        if let Some(next) = mesh.neighbor(rid, *d) {
                            let (a, b) = (t.shard_of(rid), t.shard_of(next));
                            if a != b {
                                counted[a][b] += 1;
                            }
                        }
                    }
                }
                for (s, row) in counted.iter().enumerate() {
                    let declared = t.neighbors(s);
                    let actual: Vec<usize> = row
                        .iter()
                        .enumerate()
                        .filter(|&(_, &c)| c > 0)
                        .map(|(o, _)| o)
                        .collect();
                    assert_eq!(
                        declared, actual,
                        "{w}x{h} wrap={wrap} shards={shards} s={s}"
                    );
                    for (o, &cnt) in row.iter().enumerate() {
                        if s != o {
                            assert_eq!(
                                t.boundary_links(s, o),
                                cnt,
                                "{w}x{h} wrap={wrap} shards={shards} {s}->{o}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn route_xy_at_matches_route_xy() {
        for m in [Mesh::new(5, 4), Mesh::torus(5, 4)] {
            for src in 0..m.len() {
                for dst in 0..m.len() {
                    assert_eq!(
                        m.route_xy_at(m.coords(src), m.coords(dst)),
                        m.route_xy(src, dst)
                    );
                }
            }
        }
    }

    #[test]
    fn fault_map_routes_match_bfs_distance() {
        // With no faults, BFS next-hops must reach every destination in
        // exactly hops() steps on the mesh (BFS shortest = Manhattan).
        for m in [Mesh::new(5, 4), Mesh::torus(5, 4)] {
            let mut fm = FaultMap::new(&m);
            fm.rebuild(&m);
            assert!(fm.is_healthy());
            assert_eq!(fm.reachable_fraction(), 1.0);
            for src in 0..m.len() {
                for dst in 0..m.len() {
                    let mut here = src;
                    let mut steps = 0;
                    while here != dst {
                        let dir = fm.route(here, dst).expect("healthy map is connected");
                        here = m.neighbor(here, dir).expect("route stays in network");
                        steps += 1;
                        assert!(steps <= m.hops(src, dst), "BFS route took a detour");
                    }
                    assert_eq!(steps, m.hops(src, dst));
                    assert_eq!(fm.route(dst, dst), Some(Direction::Local));
                }
            }
        }
    }

    #[test]
    fn fault_map_detours_around_a_dead_link() {
        // Kill the (1,1)→(2,1) link on a 4×4 mesh: every pair must stay
        // reachable (the mesh is 2-connected away from corners) and no
        // surviving route may use the dead channel in either direction.
        let m = Mesh::new(4, 4);
        let mut fm = FaultMap::new(&m);
        assert!(fm.kill_link(&m, m.id(1, 1), Direction::East));
        assert!(!fm.kill_link(&m, m.id(2, 1), Direction::West), "same link");
        fm.rebuild(&m);
        assert_eq!(fm.dead_link_count(), 1);
        assert!(!fm.link_alive(m.id(1, 1), Direction::East));
        assert!(!fm.link_alive(m.id(2, 1), Direction::West));
        assert_eq!(fm.reachable_fraction(), 1.0, "mesh remains connected");
        for src in 0..m.len() {
            for dst in 0..m.len() {
                let mut here = src;
                let mut steps = 0;
                while here != dst {
                    let dir = fm.route(here, dst).expect("still connected");
                    assert!(fm.link_alive(here, dir), "route used a dead link");
                    here = m.neighbor(here, dir).unwrap();
                    steps += 1;
                    assert!(steps <= m.len(), "route loops");
                }
            }
        }
        // Revival restores the original table.
        let mut healthy = FaultMap::new(&m);
        healthy.rebuild(&m);
        assert!(fm.revive_link(&m, m.id(2, 1), Direction::West));
        fm.rebuild(&m);
        assert_eq!(fm, healthy);
    }

    #[test]
    fn fault_map_dead_router_disconnects_and_isolates() {
        // Killing (1,0) on a 3×1 path mesh cuts (0,0) from (2,0); the
        // dead router itself is unreachable and cannot route.
        let m = Mesh::new(3, 1);
        let mut fm = FaultMap::new(&m);
        assert!(fm.kill_router(m.id(1, 0)));
        assert!(!fm.kill_router(m.id(1, 0)), "already dead");
        fm.rebuild(&m);
        assert!(!fm.reachable(m.id(0, 0), m.id(2, 0)));
        assert!(!fm.reachable(m.id(2, 0), m.id(0, 0)));
        assert!(!fm.reachable(m.id(0, 0), m.id(1, 0)));
        assert!(!fm.reachable(m.id(1, 0), m.id(0, 0)));
        assert!(fm.reachable(m.id(0, 0), m.id(0, 0)));
        assert!(fm.route(m.id(0, 0), m.id(2, 0)).is_none());
        // 1×3 path has 6 ordered pairs; only self pairs survive — the
        // fraction counts the 0 surviving distinct pairs.
        assert_eq!(fm.reachable_fraction(), 0.0);
        assert!(fm.summary().contains("1 dead router"));
        // On the torus the wrap link keeps the ends connected.
        let t = Mesh::torus(3, 1);
        let mut ft = FaultMap::new(&t);
        ft.kill_router(t.id(1, 0));
        ft.rebuild(&t);
        assert!(ft.reachable(t.id(0, 0), t.id(2, 0)));
    }

    #[test]
    fn route_table_matches_route_xy() {
        for m in [Mesh::new(4, 4), Mesh::torus(5, 4)] {
            let t = RouteTable::build(&m).expect("small mesh");
            for src in 0..m.len() {
                for dst in 0..m.len() {
                    assert_eq!(t.route(src, dst), m.route_xy(src, dst));
                }
            }
        }
        let big = Mesh::new(64, 64);
        assert!(RouteTable::build(&big).is_none(), "64×64 exceeds the cap");
    }
}
