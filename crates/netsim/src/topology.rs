//! 2-D mesh topology and port directions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Router port direction; `Local` is the PE port of the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Toward smaller y.
    North,
    /// Toward larger y.
    South,
    /// Toward larger x.
    East,
    /// Toward smaller x.
    West,
    /// The local processing element.
    Local,
}

impl Direction {
    /// All five directions, Local last.
    pub const ALL: [Direction; 5] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
        Direction::Local,
    ];

    /// Index into per-port arrays.
    pub fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::South => 1,
            Direction::East => 2,
            Direction::West => 3,
            Direction::Local => 4,
        }
    }

    /// The port on the neighbouring router that a flit sent out of this
    /// port arrives on.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::Local => Direction::Local,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::South => "S",
            Direction::East => "E",
            Direction::West => "W",
            Direction::Local => "L",
        };
        f.write_str(s)
    }
}

/// A `width × height` mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    /// Routers per row.
    pub width: usize,
    /// Routers per column.
    pub height: usize,
}

impl Mesh {
    /// Number of routers.
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// `true` for a degenerate empty mesh.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Router id at coordinates.
    pub fn id(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    /// Coordinates of a router id.
    pub fn coords(&self, id: usize) -> (usize, usize) {
        (id % self.width, id / self.width)
    }

    /// The neighbour of `id` in `dir`, if it exists.
    pub fn neighbor(&self, id: usize, dir: Direction) -> Option<usize> {
        let (x, y) = self.coords(id);
        match dir {
            Direction::North => (y > 0).then(|| self.id(x, y - 1)),
            Direction::South => (y + 1 < self.height).then(|| self.id(x, y + 1)),
            Direction::East => (x + 1 < self.width).then(|| self.id(x + 1, y)),
            Direction::West => (x > 0).then(|| self.id(x - 1, y)),
            Direction::Local => None,
        }
    }

    /// Dimension-order (XY) routing: the output direction a flit at
    /// router `here` must take toward `dst`.
    pub fn route_xy(&self, here: usize, dst: usize) -> Direction {
        let (hx, hy) = self.coords(here);
        let (dx, dy) = self.coords(dst);
        if hx < dx {
            Direction::East
        } else if hx > dx {
            Direction::West
        } else if hy < dy {
            Direction::South
        } else if hy > dy {
            Direction::North
        } else {
            Direction::Local
        }
    }

    /// Manhattan hop distance.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_and_coords_roundtrip() {
        let m = Mesh {
            width: 4,
            height: 3,
        };
        for id in 0..m.len() {
            let (x, y) = m.coords(id);
            assert_eq!(m.id(x, y), id);
        }
    }

    #[test]
    fn edges_have_no_neighbors() {
        let m = Mesh {
            width: 3,
            height: 3,
        };
        assert_eq!(m.neighbor(m.id(0, 0), Direction::North), None);
        assert_eq!(m.neighbor(m.id(0, 0), Direction::West), None);
        assert_eq!(m.neighbor(m.id(0, 0), Direction::East), Some(m.id(1, 0)));
    }

    #[test]
    fn xy_routes_x_first() {
        let m = Mesh {
            width: 4,
            height: 4,
        };
        let here = m.id(0, 0);
        let dst = m.id(2, 3);
        assert_eq!(m.route_xy(here, dst), Direction::East);
        let mid = m.id(2, 0);
        assert_eq!(m.route_xy(mid, dst), Direction::South);
        assert_eq!(m.route_xy(dst, dst), Direction::Local);
    }

    #[test]
    fn xy_terminates_at_destination() {
        // Following route_xy always reaches dst in hops() steps.
        let m = Mesh {
            width: 5,
            height: 4,
        };
        for src in 0..m.len() {
            for dst in 0..m.len() {
                let mut here = src;
                let mut steps = 0;
                while here != dst {
                    let dir = m.route_xy(here, dst);
                    here = m.neighbor(here, dir).expect("route stays in mesh");
                    steps += 1;
                    assert!(steps <= m.hops(src, dst), "no detours in DOR");
                }
                assert_eq!(steps, m.hops(src, dst));
            }
        }
    }

    #[test]
    fn opposite_is_involutive() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }
}
