//! Synthetic traffic patterns and packet injection.

use crate::topology::Mesh;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The classic synthetic destination patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Every node sends to a uniformly random other node.
    UniformRandom,
    /// Node (x, y) sends to (y, x).
    Transpose,
    /// Node with index i sends to the bit-complement of i.
    BitComplement,
    /// A fraction of packets target one hotspot node (bottom-right
    /// corner); the rest are uniform.
    Hotspot,
    /// Node (x, y) sends to its +x neighbour (wrapping) — light, local.
    NearestNeighbor,
    /// Node (x, y) sends to ((x + ⌈w/2⌉ − 1) mod w, y) — the classic
    /// torus-stressing pattern that loads wraparound links.
    Tornado,
}

impl TrafficPattern {
    /// All patterns (for sweeps).
    pub const ALL: [TrafficPattern; 6] = [
        TrafficPattern::UniformRandom,
        TrafficPattern::Transpose,
        TrafficPattern::BitComplement,
        TrafficPattern::Hotspot,
        TrafficPattern::NearestNeighbor,
        TrafficPattern::Tornado,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            TrafficPattern::UniformRandom => "uniform",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::BitComplement => "bitcomp",
            TrafficPattern::Hotspot => "hotspot",
            TrafficPattern::NearestNeighbor => "neighbor",
            TrafficPattern::Tornado => "tornado",
        }
    }

    /// Picks a destination for a packet from `src`. Returns `None` when
    /// the pattern maps `src` onto itself (no packet is injected).
    pub fn destination(self, src: usize, mesh: &Mesh, rng: &mut StdRng) -> Option<usize> {
        let n = mesh.len();
        let dst = match self {
            TrafficPattern::UniformRandom => {
                let mut d = rng.gen_range(0..n);
                if d == src {
                    d = (d + 1) % n;
                }
                d
            }
            TrafficPattern::Transpose => {
                let (x, y) = mesh.coords(src);
                // Transpose needs a square aspect; clamp into range.
                let (tx, ty) = (y.min(mesh.width - 1), x.min(mesh.height - 1));
                mesh.id(tx, ty)
            }
            TrafficPattern::BitComplement => (n - 1) - src,
            TrafficPattern::Hotspot => {
                if rng.gen_bool(0.2) {
                    n - 1
                } else {
                    let mut d = rng.gen_range(0..n);
                    if d == src {
                        d = (d + 1) % n;
                    }
                    d
                }
            }
            TrafficPattern::NearestNeighbor => {
                let (x, y) = mesh.coords(src);
                mesh.id((x + 1) % mesh.width, y)
            }
            TrafficPattern::Tornado => {
                let (x, y) = mesh.coords(src);
                let offset = mesh.width.div_ceil(2) - 1;
                mesh.id((x + offset) % mesh.width, y)
            }
        };
        (dst != src).then_some(dst)
    }
}

/// Temporal structure of packet injection at each node.
///
/// The destination of each packet comes from the [`TrafficPattern`];
/// the injection *process* decides on which cycles a node offers a
/// packet at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InjectionProcess {
    /// Memoryless: every node flips an `injection_rate` coin each
    /// cycle.
    Bernoulli,
    /// Two-state ON–OFF (bursty) source per node: dwell times in each
    /// state are geometric with the given means, and while ON the node
    /// injects at a boosted rate so the *average* offered load still
    /// equals `injection_rate`. Bursts both congest the network and
    /// lengthen the idle intervals between them — the regime where
    /// power gating matters.
    BurstyOnOff {
        /// Mean cycles of an ON burst (≥ 1).
        mean_burst: u32,
        /// Mean cycles of an OFF gap (≥ 1).
        mean_idle: u32,
    },
}

impl InjectionProcess {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            InjectionProcess::Bernoulli => "bernoulli",
            InjectionProcess::BurstyOnOff { .. } => "bursty",
        }
    }

    /// Injection probability while a source is ON, scaled so the mean
    /// offered load equals `rate` (clamped to 1).
    pub fn on_rate(self, rate: f64) -> f64 {
        match self {
            InjectionProcess::Bernoulli => rate,
            InjectionProcess::BurstyOnOff {
                mean_burst,
                mean_idle,
            } => {
                let duty = mean_burst as f64 / (mean_burst + mean_idle) as f64;
                (rate / duty).min(1.0)
            }
        }
    }

    /// Returns this source's first offer in `from + 1 ..= horizon`, or
    /// `None` if the span holds none, advancing the source state
    /// exactly as the simulator's per-cycle injection loop would.
    ///
    /// The two processes keep their state differently:
    ///
    /// - **Bernoulli** sources are a renewal chain: `next_offer` holds
    ///   the absolute cycle of the next scheduled arrival, and each
    ///   arrival costs exactly one geometric gap draw
    ///   ([`GapSampler::sample`]) made *after* it fires (see
    ///   [`InjectionProcess::rearm_after_offer`]) — there is no
    ///   per-cycle coin at all. Arrivals at or before `from` were
    ///   missed (the router was dead when they came due, so the cycle
    ///   loop never scanned it); each missed arrival consumes its gap
    ///   draw — and nothing else — in the catch-up loop here, which
    ///   makes this lazy catch-up land on the same `(rng, next_offer)`
    ///   state as the event kernel's eager per-arrival rescheduling,
    ///   draw for draw.
    /// - **Bursty ON–OFF** sources replay their per-cycle draws — the
    ///   dwell flip and the offer coin — for every cycle of the span,
    ///   in exactly the per-cycle loop's order, advancing `on` and
    ///   `rng` through each one.
    ///
    /// Either way, alternating `next_arrival` with single-cycle spans
    /// (or with the destination draw that follows a hit) reads one
    /// seamless stream. This is the determinism keystone of the
    /// event-driven kernel ([`crate::SimKernel::EventDriven`]): leaping
    /// the clock over dead windows is only sound because the arrivals
    /// predicted here match what the cycle loop scans out, bit for bit.
    ///
    /// `rate` must already be the boosted ON rate (see
    /// [`InjectionProcess::on_rate`]); `from` is the last cycle whose
    /// draws have been consumed. A Bernoulli source at rate 0 (or one
    /// parked OFF) draws nothing, while a bursty source keeps consuming
    /// its flip draw every cycle even when it can never offer.
    #[allow(clippy::too_many_arguments)]
    pub fn next_arrival(
        self,
        rate: f64,
        on: &mut bool,
        next_offer: &mut u64,
        gap: &GapSampler,
        rng: &mut StdRng,
        from: u64,
        horizon: u64,
    ) -> Option<u64> {
        match self {
            InjectionProcess::Bernoulli => {
                // Bernoulli sources never toggle, so an OFF or
                // zero-rate source consumes no draws at all.
                if !*on || rate <= 0.0 {
                    return None;
                }
                while *next_offer <= from {
                    // Missed while dead: the catch-up gap draw, no
                    // destination.
                    *next_offer = next_offer.saturating_add(gap.sample(rng));
                }
                (*next_offer <= horizon).then_some(*next_offer)
            }
            InjectionProcess::BurstyOnOff {
                mean_burst,
                mean_idle,
            } => {
                let p_on = 1.0 / mean_burst as f64;
                let p_off = 1.0 / mean_idle as f64;
                let mut c = from;
                while c < horizon {
                    c += 1;
                    if rng.gen_bool(if *on { p_on } else { p_off }) {
                        *on = !*on;
                    }
                    if *on && rate > 0.0 && rng.gen_bool(rate) {
                        return Some(c);
                    }
                }
                None
            }
        }
    }

    /// Consumes the offer [`InjectionProcess::next_arrival`] reported
    /// at `cycle`: a Bernoulli source draws the gap to its next
    /// arrival — *after* the destination draw, which the caller makes
    /// in between, so the per-router stream order is destination then
    /// gap at every fired offer — while a bursty source needs nothing
    /// (its stream is purely per-cycle).
    pub fn rearm_after_offer(
        self,
        next_offer: &mut u64,
        gap: &GapSampler,
        rng: &mut StdRng,
        cycle: u64,
    ) {
        if let InjectionProcess::Bernoulli = self {
            debug_assert_eq!(*next_offer, cycle, "re-arming an offer that was not due");
            *next_offer = cycle.saturating_add(gap.sample(rng));
        }
    }
}

/// Deterministic sampler for Bernoulli inter-arrival gaps.
///
/// A rate-`p` Bernoulli source's gap to its next arrival is geometric:
/// `P(G = k) = (1 − p)^(k−1) · p` for `k ≥ 1`. Sampling `G` directly —
/// one RNG draw per *arrival* — replaces the one-coin-per-cycle scan
/// whose draws dominated every kernel at low rates and put a hard
/// `O(routers × cycles)` floor under the event kernel. All kernels
/// share this sampler (and the renewal state it drives), so the
/// arrival streams — and therefore [`crate::NetworkStats`] — stay bit
/// identical across them by construction.
///
/// The quantile is inverted without `ln`: a binary descent over
/// precomputed repeated squarings `q^(2^j)` finds the largest `m` with
/// `q^m > u`, so the draw uses only IEEE multiplies and compares —
/// both exactly specified — and is bit-reproducible on every platform,
/// unlike anything routed through libm.
#[derive(Debug, Clone)]
pub struct GapSampler {
    /// Per-cycle survival probability `q = 1 − p`.
    q: f64,
    /// `q^(2^j)` for `j = 0..63`, by repeated squaring. High entries
    /// underflow to `0.0` for any `q < 1`, which the descent treats as
    /// "never survives that long" — exactly right.
    pows: [f64; 63],
}

impl GapSampler {
    /// Builds the sampler for per-cycle arrival probability `p`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "rate is a probability");
        let q = 1.0 - p;
        let mut pows = [0.0; 63];
        let mut acc = q;
        for slot in pows.iter_mut() {
            *slot = acc;
            acc *= acc;
        }
        GapSampler { q, pows }
    }

    /// Draws one gap `G ≥ 1` (consuming exactly one `next_u64`).
    ///
    /// The uniform variate is mapped like [`rand::Rng::gen_bool`]'s
    /// (top 53 bits over 2⁵³), and `G = m + 1` where `m` is the
    /// largest exponent with `q^m > u`. The greedy high-bit-first
    /// descent is exact because the running product is nonincreasing
    /// along the chain; `u = 0` walks until the product underflows
    /// (a gap of billions of cycles — harmlessly "never" at any rate
    /// worth simulating), and `p = 1` returns 1 every time.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        if self.q <= u {
            return 1;
        }
        let mut m = 0u64;
        let mut prod = 1.0f64;
        for (j, &pw) in self.pows.iter().enumerate().rev() {
            let cand = prod * pw;
            if cand > u {
                m |= 1 << j;
                prod = cand;
            }
        }
        m + 1
    }
}

/// A packet waiting in a node's source queue, stored as one compact
/// descriptor instead of `packet_len` expanded [`Flit`]s: flits are
/// synthesized on the fly as the local input port accepts them, so a
/// backed-up source queue costs 32 bytes per packet rather than
/// 56 bytes per flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourcePacket {
    /// Packet sequence number.
    pub packet_id: u64,
    /// Destination router.
    pub dst: usize,
    /// Injection cycle (of the whole packet).
    pub injected_at: u64,
    /// Flits already handed to the local input port.
    pub sent: u32,
    /// Virtual channel of the local input buffer this packet is
    /// injected into (chosen once per packet at generation time).
    pub vc: u8,
}

impl SourcePacket {
    /// Synthesizes the next flit of this packet (for a source node
    /// `src` and packet length `len`), advancing the descriptor.
    /// Returns `None` once all `len` flits have been produced.
    pub fn next_flit(&mut self, src: usize, len: usize) -> Option<Flit> {
        if self.sent as usize >= len {
            return None;
        }
        let k = self.sent as usize;
        self.sent += 1;
        Some(Flit {
            packet_id: self.packet_id,
            src,
            dst: self.dst,
            vc: self.vc,
            is_head: k == 0,
            is_tail: k + 1 == len,
            injected_at: self.injected_at,
        })
    }

    /// Flits of this packet still waiting in the source queue.
    pub fn remaining_flits(&self, len: usize) -> u64 {
        (len as u64).saturating_sub(self.sent as u64)
    }
}

/// One flit of a wormhole packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Packet sequence number (unique per simulation).
    pub packet_id: u64,
    /// Source router.
    pub src: usize,
    /// Destination router.
    pub dst: usize,
    /// Virtual channel this flit occupies on its current link — the
    /// input-VC buffer it sits in (or will be written into). Restamped
    /// at every crossbar traversal with the output VC the packet won.
    pub vc: u8,
    /// First flit of its packet (carries the route).
    pub is_head: bool,
    /// Last flit of its packet (releases the switch).
    pub is_tail: bool,
    /// Injection cycle of the packet's head.
    pub injected_at: u64,
}

impl Flit {
    /// The filler value used for unoccupied buffer slots. Real packet
    /// ids are allocated sequentially from zero, so `u64::MAX` can
    /// never collide with a live flit; routing an invalid flit is a
    /// buffer-bookkeeping bug and is debug-asserted against in the
    /// router.
    pub const INVALID: Flit = Flit {
        packet_id: u64::MAX,
        src: 0,
        dst: 0,
        vc: 0,
        is_head: false,
        is_tail: false,
        injected_at: 0,
    };

    /// Whether this is the [`Flit::INVALID`] filler.
    pub fn is_invalid(&self) -> bool {
        self.packet_id == Flit::INVALID.packet_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mesh() -> Mesh {
        Mesh::new(4, 4)
    }

    #[test]
    fn destinations_stay_in_range_and_differ_from_source() {
        let m = mesh();
        let mut rng = StdRng::seed_from_u64(1);
        for pattern in TrafficPattern::ALL {
            for src in 0..m.len() {
                for _ in 0..10 {
                    if let Some(dst) = pattern.destination(src, &m, &mut rng) {
                        assert!(dst < m.len(), "{pattern:?}");
                        assert_ne!(dst, src, "{pattern:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn transpose_is_deterministic() {
        let m = mesh();
        let mut rng = StdRng::seed_from_u64(2);
        let d1 = TrafficPattern::Transpose.destination(m.id(1, 3), &m, &mut rng);
        let d2 = TrafficPattern::Transpose.destination(m.id(1, 3), &m, &mut rng);
        assert_eq!(d1, d2);
        assert_eq!(d1, Some(m.id(3, 1)));
    }

    #[test]
    fn bit_complement_pairs_up() {
        let m = mesh();
        let mut rng = StdRng::seed_from_u64(3);
        let d = TrafficPattern::BitComplement
            .destination(0, &m, &mut rng)
            .unwrap();
        assert_eq!(d, m.len() - 1);
    }

    #[test]
    fn tornado_shifts_half_way() {
        let m = Mesh::new(8, 2);
        let mut rng = StdRng::seed_from_u64(9);
        // ⌈8/2⌉ − 1 = 3 columns to the right, wrapping.
        let d = TrafficPattern::Tornado
            .destination(m.id(6, 1), &m, &mut rng)
            .unwrap();
        assert_eq!(d, m.id(1, 1));
    }

    #[test]
    fn bursty_on_rate_preserves_offered_load() {
        let p = InjectionProcess::BurstyOnOff {
            mean_burst: 10,
            mean_idle: 30,
        };
        // duty = 0.25 → ON rate is 4× the average rate.
        assert!((p.on_rate(0.05) - 0.2).abs() < 1e-12);
        // Clamped: a rate above the duty cycle saturates at 1.
        assert_eq!(p.on_rate(0.5), 1.0);
        assert_eq!(InjectionProcess::Bernoulli.on_rate(0.05), 0.05);
    }

    #[test]
    fn source_packet_synthesizes_exact_flit_sequence() {
        let mut p = SourcePacket {
            packet_id: 42,
            dst: 9,
            injected_at: 17,
            sent: 0,
            vc: 1,
        };
        let len = 3;
        assert_eq!(p.remaining_flits(len), 3);
        let flits: Vec<Flit> = std::iter::from_fn(|| p.next_flit(5, len)).collect();
        assert_eq!(flits.len(), 3);
        assert!(flits[0].is_head && !flits[0].is_tail);
        assert!(!flits[1].is_head && !flits[1].is_tail);
        assert!(!flits[2].is_head && flits[2].is_tail);
        for f in &flits {
            assert_eq!((f.packet_id, f.src, f.dst, f.injected_at), (42, 5, 9, 17));
            assert_eq!(f.vc, 1, "flits inherit the packet's injection VC");
            assert!(!f.is_invalid());
        }
        assert_eq!(p.remaining_flits(len), 0);
        assert_eq!(p.next_flit(5, len), None);
        // Single-flit packets are head and tail at once.
        let mut single = SourcePacket {
            packet_id: 1,
            dst: 2,
            injected_at: 0,
            sent: 0,
            vc: 0,
        };
        let f = single.next_flit(0, 1).unwrap();
        assert!(f.is_head && f.is_tail);
    }

    #[test]
    fn invalid_flit_is_detectable() {
        assert!(Flit::INVALID.is_invalid());
        let real = SourcePacket {
            packet_id: u64::MAX - 1,
            dst: 1,
            injected_at: 0,
            sent: 0,
            vc: 0,
        }
        .next_flit(0, 1)
        .unwrap();
        assert!(!real.is_invalid());
    }

    /// The initial arm the simulator performs at construction: a live
    /// Bernoulli source draws its first gap; everything else parks the
    /// renewal slot at "never".
    fn arm(process: InjectionProcess, rate: f64, gap: &GapSampler, rng: &mut StdRng) -> u64 {
        match process {
            InjectionProcess::Bernoulli if rate > 0.0 => gap.sample(rng),
            _ => u64::MAX,
        }
    }

    /// Tick-by-tick oracle for [`InjectionProcess::next_arrival`]: one
    /// cycle's worth of source state advancement, written independently
    /// of the prediction code. A bursty source makes its per-cycle flip
    /// and offer draws; a Bernoulli source compares the cycle against
    /// its renewal slot (catching up offers missed while unscanned).
    /// Returns whether the source offers; the caller re-arms after a
    /// hit via [`InjectionProcess::rearm_after_offer`].
    #[allow(clippy::too_many_arguments)]
    fn tick(
        process: InjectionProcess,
        rate: f64,
        on: &mut bool,
        next_offer: &mut u64,
        gap: &GapSampler,
        rng: &mut StdRng,
        cycle: u64,
    ) -> bool {
        match process {
            InjectionProcess::Bernoulli => {
                if !*on || rate <= 0.0 {
                    return false;
                }
                while *next_offer < cycle {
                    *next_offer = next_offer.saturating_add(gap.sample(rng));
                }
                *next_offer == cycle
            }
            InjectionProcess::BurstyOnOff {
                mean_burst,
                mean_idle,
            } => {
                let flip = if *on {
                    rng.gen_bool(1.0 / mean_burst as f64)
                } else {
                    rng.gen_bool(1.0 / mean_idle as f64)
                };
                if flip {
                    *on = !*on;
                }
                let r = if *on { rate } else { 0.0 };
                r > 0.0 && rng.gen_bool(r)
            }
        }
    }

    #[test]
    fn next_arrival_matches_tick_by_tick_draws() {
        let processes = [
            InjectionProcess::Bernoulli,
            InjectionProcess::BurstyOnOff {
                mean_burst: 8,
                mean_idle: 24,
            },
            InjectionProcess::BurstyOnOff {
                mean_burst: 1,
                mean_idle: 1,
            },
        ];
        for process in processes {
            for rate in [0.0, 0.005, 0.08, 0.5] {
                for seed in 0..8u64 {
                    let horizon = 3000u64;
                    let gap = GapSampler::new(rate);
                    // Oracle: step every cycle, recording offer cycles.
                    let mut rng_a = StdRng::seed_from_u64(seed);
                    let mut on_a = true;
                    let mut slot_a = arm(process, rate, &gap, &mut rng_a);
                    let mut offers = Vec::new();
                    for c in 1..=horizon {
                        if tick(process, rate, &mut on_a, &mut slot_a, &gap, &mut rng_a, c) {
                            offers.push(c);
                            process.rearm_after_offer(&mut slot_a, &gap, &mut rng_a, c);
                        }
                    }
                    // Prediction: chain next_arrival calls over the span.
                    let mut rng_b = StdRng::seed_from_u64(seed);
                    let mut on_b = true;
                    let mut slot_b = arm(process, rate, &gap, &mut rng_b);
                    let mut predicted = Vec::new();
                    let mut from = 0u64;
                    while let Some(c) = process.next_arrival(
                        rate,
                        &mut on_b,
                        &mut slot_b,
                        &gap,
                        &mut rng_b,
                        from,
                        horizon,
                    ) {
                        predicted.push(c);
                        process.rearm_after_offer(&mut slot_b, &gap, &mut rng_b, c);
                        from = c;
                    }
                    assert_eq!(
                        predicted, offers,
                        "{process:?} rate {rate} seed {seed}: predicted arrivals diverged"
                    );
                    // The streams must end in the same state, so a
                    // caller can resume tick-by-tick afterwards.
                    assert_eq!(on_b, on_a, "ON/OFF state diverged");
                    assert_eq!(slot_b, slot_a, "renewal slot diverged");
                    assert_eq!(rng_b.next_u64(), rng_a.next_u64(), "RNG state diverged");
                }
            }
        }
    }

    #[test]
    fn next_arrival_interleaves_with_ticking() {
        // Alternate prediction spans with manual ticks: the stream must
        // stay seamless (the event kernel re-arms predictions after
        // every fired event and at every fault-epoch boundary).
        let process = InjectionProcess::BurstyOnOff {
            mean_burst: 5,
            mean_idle: 9,
        };
        let rate = 0.3;
        let gap = GapSampler::new(rate);
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut on_a = true;
        let mut slot_a = u64::MAX;
        let mut rng_b = StdRng::seed_from_u64(99);
        let mut on_b = true;
        let mut slot_b = u64::MAX;
        let mut cycle = 0u64;
        for span in [7u64, 1, 30, 2, 113, 60] {
            let horizon = cycle + span;
            let mut expected = None;
            for c in cycle + 1..=horizon {
                if tick(process, rate, &mut on_a, &mut slot_a, &gap, &mut rng_a, c) {
                    expected = Some(c);
                    break;
                }
            }
            let got = process.next_arrival(
                rate,
                &mut on_b,
                &mut slot_b,
                &gap,
                &mut rng_b,
                cycle,
                horizon,
            );
            assert_eq!(got, expected);
            cycle = got.unwrap_or(horizon);
            // One manual tick on both streams between spans.
            cycle += 1;
            let a = tick(
                process,
                rate,
                &mut on_a,
                &mut slot_a,
                &gap,
                &mut rng_a,
                cycle,
            );
            let b = tick(
                process,
                rate,
                &mut on_b,
                &mut slot_b,
                &gap,
                &mut rng_b,
                cycle,
            );
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bernoulli_missed_offers_catch_up_identically() {
        // A router dead over some window misses the offers that fell
        // inside it. The per-cycle kernels catch up lazily at the first
        // alive scan; the event kernel catches up eagerly, one gap draw
        // per fired-while-dead wheel event. Both must land on the same
        // (rng, next_offer) state and the same post-revival arrivals.
        let rate = 0.2;
        let gap = GapSampler::new(rate);
        let p = InjectionProcess::Bernoulli;
        for seed in 0..16u64 {
            for (dead_from, dead_to) in [(5u64, 40u64), (1, 2), (10, 11), (3, 200)] {
                // Lazy: scan alive cycles only.
                let mut rng_a = StdRng::seed_from_u64(seed);
                let mut on_a = true;
                let mut slot_a = arm(p, rate, &gap, &mut rng_a);
                let mut offers_a = Vec::new();
                for c in (1..dead_from).chain(dead_to..300) {
                    if tick(p, rate, &mut on_a, &mut slot_a, &gap, &mut rng_a, c) {
                        offers_a.push(c);
                        p.rearm_after_offer(&mut slot_a, &gap, &mut rng_a, c);
                    }
                }
                // Eager: scan every cycle, but suppress (and re-arm
                // through) the offers due inside the dead window —
                // exactly what a dead router's wheel event does.
                let mut rng_b = StdRng::seed_from_u64(seed);
                let mut slot_b = arm(p, rate, &gap, &mut rng_b);
                let mut offers_b = Vec::new();
                for c in 1..300 {
                    if slot_b == c {
                        if !(dead_from..dead_to).contains(&c) {
                            offers_b.push(c);
                        }
                        p.rearm_after_offer(&mut slot_b, &gap, &mut rng_b, c);
                    }
                }
                assert_eq!(offers_a, offers_b, "seed {seed}: surviving offers diverged");
                assert_eq!(slot_a, slot_b, "seed {seed}: renewal slot diverged");
                assert_eq!(
                    rng_a.next_u64(),
                    rng_b.next_u64(),
                    "seed {seed}: RNG state diverged"
                );
            }
        }
    }

    #[test]
    fn next_arrival_zero_rate_consumes_flips_only() {
        // Bernoulli at rate 0 must not touch the RNG…
        let gap = GapSampler::new(0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let before = rng.clone().next_u64();
        let mut on = true;
        let mut slot = u64::MAX;
        assert_eq!(
            InjectionProcess::Bernoulli
                .next_arrival(0.0, &mut on, &mut slot, &gap, &mut rng, 0, 10_000),
            None
        );
        assert_eq!(rng.next_u64(), before, "Bernoulli at rate 0 draws nothing");
        // …while a bursty source still burns one flip draw per cycle.
        let p = InjectionProcess::BurstyOnOff {
            mean_burst: 4,
            mean_idle: 4,
        };
        let mut rng_a = StdRng::seed_from_u64(6);
        let mut on_a = true;
        let mut slot_a = u64::MAX;
        assert_eq!(
            p.next_arrival(0.0, &mut on_a, &mut slot_a, &gap, &mut rng_a, 0, 500),
            None
        );
        let mut rng_b = StdRng::seed_from_u64(6);
        let mut on_b = true;
        let mut slot_b = u64::MAX;
        for c in 1..=500 {
            tick(p, 0.0, &mut on_b, &mut slot_b, &gap, &mut rng_b, c);
        }
        assert_eq!(on_a, on_b);
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn gap_sampler_matches_geometric_distribution() {
        // Mean gap ≈ 1/p, and P(G = 1) ≈ p — the sampled chain is the
        // same first-success process as the per-cycle coin it replaced.
        for p in [0.5, 0.05, 0.002] {
            let gap = GapSampler::new(p);
            let mut rng = StdRng::seed_from_u64(42);
            let draws = 40_000;
            let mut total = 0u64;
            let mut ones = 0u64;
            for _ in 0..draws {
                let g = gap.sample(&mut rng);
                assert!(g >= 1);
                total += g;
                ones += (g == 1) as u64;
            }
            let mean = total as f64 / draws as f64;
            assert!(
                (mean - 1.0 / p).abs() < 0.05 / p,
                "p {p}: mean gap {mean} vs expected {}",
                1.0 / p
            );
            let p_hat = ones as f64 / draws as f64;
            assert!(
                (p_hat - p).abs() < 0.1 * p + 0.002,
                "p {p}: P(G=1) = {p_hat}"
            );
        }
        // Degenerate ends: p = 1 always fires next cycle; p = 0 never
        // fires within any horizon a simulation can reach.
        let sure = GapSampler::new(1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(sure.sample(&mut rng), 1);
        }
        let never = GapSampler::new(0.0);
        assert!(never.sample(&mut rng) > 1 << 62);
    }

    #[test]
    fn hotspot_prefers_corner() {
        let m = mesh();
        let mut rng = StdRng::seed_from_u64(4);
        let corner = m.len() - 1;
        let hits = (0..1000)
            .filter(|_| TrafficPattern::Hotspot.destination(0, &m, &mut rng) == Some(corner))
            .count();
        // 20 % targeted + uniform share — decisively more than uniform's
        // ~1/16.
        assert!(hits > 150, "hotspot hits = {hits}");
    }
}
