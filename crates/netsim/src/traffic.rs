//! Synthetic traffic patterns and packet injection.

use crate::topology::Mesh;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The classic synthetic destination patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Every node sends to a uniformly random other node.
    UniformRandom,
    /// Node (x, y) sends to (y, x).
    Transpose,
    /// Node with index i sends to the bit-complement of i.
    BitComplement,
    /// A fraction of packets target one hotspot node (bottom-right
    /// corner); the rest are uniform.
    Hotspot,
    /// Node (x, y) sends to its +x neighbour (wrapping) — light, local.
    NearestNeighbor,
    /// Node (x, y) sends to ((x + ⌈w/2⌉ − 1) mod w, y) — the classic
    /// torus-stressing pattern that loads wraparound links.
    Tornado,
}

impl TrafficPattern {
    /// All patterns (for sweeps).
    pub const ALL: [TrafficPattern; 6] = [
        TrafficPattern::UniformRandom,
        TrafficPattern::Transpose,
        TrafficPattern::BitComplement,
        TrafficPattern::Hotspot,
        TrafficPattern::NearestNeighbor,
        TrafficPattern::Tornado,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            TrafficPattern::UniformRandom => "uniform",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::BitComplement => "bitcomp",
            TrafficPattern::Hotspot => "hotspot",
            TrafficPattern::NearestNeighbor => "neighbor",
            TrafficPattern::Tornado => "tornado",
        }
    }

    /// Picks a destination for a packet from `src`. Returns `None` when
    /// the pattern maps `src` onto itself (no packet is injected).
    pub fn destination(self, src: usize, mesh: &Mesh, rng: &mut StdRng) -> Option<usize> {
        let n = mesh.len();
        let dst = match self {
            TrafficPattern::UniformRandom => {
                let mut d = rng.gen_range(0..n);
                if d == src {
                    d = (d + 1) % n;
                }
                d
            }
            TrafficPattern::Transpose => {
                let (x, y) = mesh.coords(src);
                // Transpose needs a square aspect; clamp into range.
                let (tx, ty) = (y.min(mesh.width - 1), x.min(mesh.height - 1));
                mesh.id(tx, ty)
            }
            TrafficPattern::BitComplement => (n - 1) - src,
            TrafficPattern::Hotspot => {
                if rng.gen_bool(0.2) {
                    n - 1
                } else {
                    let mut d = rng.gen_range(0..n);
                    if d == src {
                        d = (d + 1) % n;
                    }
                    d
                }
            }
            TrafficPattern::NearestNeighbor => {
                let (x, y) = mesh.coords(src);
                mesh.id((x + 1) % mesh.width, y)
            }
            TrafficPattern::Tornado => {
                let (x, y) = mesh.coords(src);
                let offset = mesh.width.div_ceil(2) - 1;
                mesh.id((x + offset) % mesh.width, y)
            }
        };
        (dst != src).then_some(dst)
    }
}

/// Temporal structure of packet injection at each node.
///
/// The destination of each packet comes from the [`TrafficPattern`];
/// the injection *process* decides on which cycles a node offers a
/// packet at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InjectionProcess {
    /// Memoryless: every node flips an `injection_rate` coin each
    /// cycle.
    Bernoulli,
    /// Two-state ON–OFF (bursty) source per node: dwell times in each
    /// state are geometric with the given means, and while ON the node
    /// injects at a boosted rate so the *average* offered load still
    /// equals `injection_rate`. Bursts both congest the network and
    /// lengthen the idle intervals between them — the regime where
    /// power gating matters.
    BurstyOnOff {
        /// Mean cycles of an ON burst (≥ 1).
        mean_burst: u32,
        /// Mean cycles of an OFF gap (≥ 1).
        mean_idle: u32,
    },
}

impl InjectionProcess {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            InjectionProcess::Bernoulli => "bernoulli",
            InjectionProcess::BurstyOnOff { .. } => "bursty",
        }
    }

    /// Injection probability while a source is ON, scaled so the mean
    /// offered load equals `rate` (clamped to 1).
    pub fn on_rate(self, rate: f64) -> f64 {
        match self {
            InjectionProcess::Bernoulli => rate,
            InjectionProcess::BurstyOnOff {
                mean_burst,
                mean_idle,
            } => {
                let duty = mean_burst as f64 / (mean_burst + mean_idle) as f64;
                (rate / duty).min(1.0)
            }
        }
    }
}

/// A packet waiting in a node's source queue, stored as one compact
/// descriptor instead of `packet_len` expanded [`Flit`]s: flits are
/// synthesized on the fly as the local input port accepts them, so a
/// backed-up source queue costs 32 bytes per packet rather than
/// 56 bytes per flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourcePacket {
    /// Packet sequence number.
    pub packet_id: u64,
    /// Destination router.
    pub dst: usize,
    /// Injection cycle (of the whole packet).
    pub injected_at: u64,
    /// Flits already handed to the local input port.
    pub sent: u32,
    /// Virtual channel of the local input buffer this packet is
    /// injected into (chosen once per packet at generation time).
    pub vc: u8,
}

impl SourcePacket {
    /// Synthesizes the next flit of this packet (for a source node
    /// `src` and packet length `len`), advancing the descriptor.
    /// Returns `None` once all `len` flits have been produced.
    pub fn next_flit(&mut self, src: usize, len: usize) -> Option<Flit> {
        if self.sent as usize >= len {
            return None;
        }
        let k = self.sent as usize;
        self.sent += 1;
        Some(Flit {
            packet_id: self.packet_id,
            src,
            dst: self.dst,
            vc: self.vc,
            is_head: k == 0,
            is_tail: k + 1 == len,
            injected_at: self.injected_at,
        })
    }

    /// Flits of this packet still waiting in the source queue.
    pub fn remaining_flits(&self, len: usize) -> u64 {
        (len as u64).saturating_sub(self.sent as u64)
    }
}

/// One flit of a wormhole packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Packet sequence number (unique per simulation).
    pub packet_id: u64,
    /// Source router.
    pub src: usize,
    /// Destination router.
    pub dst: usize,
    /// Virtual channel this flit occupies on its current link — the
    /// input-VC buffer it sits in (or will be written into). Restamped
    /// at every crossbar traversal with the output VC the packet won.
    pub vc: u8,
    /// First flit of its packet (carries the route).
    pub is_head: bool,
    /// Last flit of its packet (releases the switch).
    pub is_tail: bool,
    /// Injection cycle of the packet's head.
    pub injected_at: u64,
}

impl Flit {
    /// The filler value used for unoccupied buffer slots. Real packet
    /// ids are allocated sequentially from zero, so `u64::MAX` can
    /// never collide with a live flit; routing an invalid flit is a
    /// buffer-bookkeeping bug and is debug-asserted against in the
    /// router.
    pub const INVALID: Flit = Flit {
        packet_id: u64::MAX,
        src: 0,
        dst: 0,
        vc: 0,
        is_head: false,
        is_tail: false,
        injected_at: 0,
    };

    /// Whether this is the [`Flit::INVALID`] filler.
    pub fn is_invalid(&self) -> bool {
        self.packet_id == Flit::INVALID.packet_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mesh() -> Mesh {
        Mesh::new(4, 4)
    }

    #[test]
    fn destinations_stay_in_range_and_differ_from_source() {
        let m = mesh();
        let mut rng = StdRng::seed_from_u64(1);
        for pattern in TrafficPattern::ALL {
            for src in 0..m.len() {
                for _ in 0..10 {
                    if let Some(dst) = pattern.destination(src, &m, &mut rng) {
                        assert!(dst < m.len(), "{pattern:?}");
                        assert_ne!(dst, src, "{pattern:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn transpose_is_deterministic() {
        let m = mesh();
        let mut rng = StdRng::seed_from_u64(2);
        let d1 = TrafficPattern::Transpose.destination(m.id(1, 3), &m, &mut rng);
        let d2 = TrafficPattern::Transpose.destination(m.id(1, 3), &m, &mut rng);
        assert_eq!(d1, d2);
        assert_eq!(d1, Some(m.id(3, 1)));
    }

    #[test]
    fn bit_complement_pairs_up() {
        let m = mesh();
        let mut rng = StdRng::seed_from_u64(3);
        let d = TrafficPattern::BitComplement
            .destination(0, &m, &mut rng)
            .unwrap();
        assert_eq!(d, m.len() - 1);
    }

    #[test]
    fn tornado_shifts_half_way() {
        let m = Mesh::new(8, 2);
        let mut rng = StdRng::seed_from_u64(9);
        // ⌈8/2⌉ − 1 = 3 columns to the right, wrapping.
        let d = TrafficPattern::Tornado
            .destination(m.id(6, 1), &m, &mut rng)
            .unwrap();
        assert_eq!(d, m.id(1, 1));
    }

    #[test]
    fn bursty_on_rate_preserves_offered_load() {
        let p = InjectionProcess::BurstyOnOff {
            mean_burst: 10,
            mean_idle: 30,
        };
        // duty = 0.25 → ON rate is 4× the average rate.
        assert!((p.on_rate(0.05) - 0.2).abs() < 1e-12);
        // Clamped: a rate above the duty cycle saturates at 1.
        assert_eq!(p.on_rate(0.5), 1.0);
        assert_eq!(InjectionProcess::Bernoulli.on_rate(0.05), 0.05);
    }

    #[test]
    fn source_packet_synthesizes_exact_flit_sequence() {
        let mut p = SourcePacket {
            packet_id: 42,
            dst: 9,
            injected_at: 17,
            sent: 0,
            vc: 1,
        };
        let len = 3;
        assert_eq!(p.remaining_flits(len), 3);
        let flits: Vec<Flit> = std::iter::from_fn(|| p.next_flit(5, len)).collect();
        assert_eq!(flits.len(), 3);
        assert!(flits[0].is_head && !flits[0].is_tail);
        assert!(!flits[1].is_head && !flits[1].is_tail);
        assert!(!flits[2].is_head && flits[2].is_tail);
        for f in &flits {
            assert_eq!((f.packet_id, f.src, f.dst, f.injected_at), (42, 5, 9, 17));
            assert_eq!(f.vc, 1, "flits inherit the packet's injection VC");
            assert!(!f.is_invalid());
        }
        assert_eq!(p.remaining_flits(len), 0);
        assert_eq!(p.next_flit(5, len), None);
        // Single-flit packets are head and tail at once.
        let mut single = SourcePacket {
            packet_id: 1,
            dst: 2,
            injected_at: 0,
            sent: 0,
            vc: 0,
        };
        let f = single.next_flit(0, 1).unwrap();
        assert!(f.is_head && f.is_tail);
    }

    #[test]
    fn invalid_flit_is_detectable() {
        assert!(Flit::INVALID.is_invalid());
        let real = SourcePacket {
            packet_id: u64::MAX - 1,
            dst: 1,
            injected_at: 0,
            sent: 0,
            vc: 0,
        }
        .next_flit(0, 1)
        .unwrap();
        assert!(!real.is_invalid());
    }

    #[test]
    fn hotspot_prefers_corner() {
        let m = mesh();
        let mut rng = StdRng::seed_from_u64(4);
        let corner = m.len() - 1;
        let hits = (0..1000)
            .filter(|_| TrafficPattern::Hotspot.destination(0, &m, &mut rng) == Some(corner))
            .count();
        // 20 % targeted + uniform share — decisively more than uniform's
        // ~1/16.
        assert!(hits > 150, "hotspot hits = {hits}");
    }
}
