//! Input-buffered wormhole router.
//!
//! One router has five input FIFOs (one per [`Direction`]) and a 5×5
//! crossbar — the paper's evaluation object. Wormhole switching: a head
//! flit claims its output port after winning round-robin arbitration;
//! body flits follow; the tail flit releases the port. Backpressure is a
//! simple on/off credit: a flit only advances when the downstream buffer
//! has room.
//!
//! Per-port *state that every cycle must touch* — idle-run counters,
//! the [`SleepFsm`] sleep controllers, and the [`GatingCounters`] — is
//! **not** stored inside the router. The simulation owns it as flat
//! network-wide SoA arrays (indexed `router * 5 + port`) and lends this
//! router's lane to [`Router::step`] as a [`PortLane`]. That keeps the
//! active-set kernel's scans and bulk updates cache-linear and lets
//! quiescent routers be accounted without touching `Router` memory at
//! all.
//!
//! The input FIFOs live in one flat ring-buffer allocation and
//! [`Router::step`] performs no heap allocation — the hot loop of the
//! whole simulator.

use crate::sleep::{SleepConfig, SleepFsm};
use crate::topology::Direction;
use crate::traffic::Flit;
use lnoc_power::gating::GatingCounters;
use serde::{Deserialize, Serialize};

/// Per-port output state: which input currently owns the port.
/// Stored as one byte per port (`FREE` or the owning input index) so
/// the five owners fit one load — the quiescence check and both step
/// paths test them every cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(transparent)]
struct PortOwner(u8);

impl PortOwner {
    /// Free for a new head flit.
    const FREE: PortOwner = PortOwner(u8::MAX);

    /// Allocated to the given input port until a tail flit passes.
    fn owned(input: usize) -> PortOwner {
        PortOwner(input as u8)
    }

    fn is_free(self) -> bool {
        self == PortOwner::FREE
    }

    /// The owning input, if any.
    fn input(self) -> Option<usize> {
        (!self.is_free()).then_some(self.0 as usize)
    }
}

impl Default for PortOwner {
    fn default() -> Self {
        PortOwner::FREE
    }
}

/// All five input FIFOs in one flat allocation: port `p` owns the slot
/// range `p*depth..(p+1)*depth` as a ring buffer.
#[derive(Debug, Clone)]
struct PortBuffers {
    slots: Box<[Flit]>,
    head: [u32; 5],
    len: [u32; 5],
    depth: u32,
}

impl PortBuffers {
    fn new(depth: usize) -> Self {
        let filler = Flit {
            packet_id: u64::MAX,
            src: 0,
            dst: 0,
            is_head: false,
            is_tail: false,
            injected_at: 0,
        };
        PortBuffers {
            slots: vec![filler; 5 * depth].into_boxed_slice(),
            head: [0; 5],
            len: [0; 5],
            depth: depth as u32,
        }
    }

    fn len(&self, port: usize) -> usize {
        self.len[port] as usize
    }

    fn is_full(&self, port: usize) -> bool {
        self.len[port] == self.depth
    }

    fn front(&self, port: usize) -> Option<&Flit> {
        (self.len[port] > 0)
            .then(|| &self.slots[port * self.depth as usize + self.head[port] as usize])
    }

    fn push_back(&mut self, port: usize, flit: Flit) {
        debug_assert!(!self.is_full(port));
        // Conditional wrap instead of `%`: the depth is a runtime
        // value, so a modulo here is a hardware divide in the hottest
        // loop of the simulator.
        let mut tail = self.head[port] + self.len[port];
        if tail >= self.depth {
            tail -= self.depth;
        }
        self.slots[port * self.depth as usize + tail as usize] = flit;
        self.len[port] += 1;
    }

    fn pop_front(&mut self, port: usize) -> Option<Flit> {
        if self.len[port] == 0 {
            return None;
        }
        let head = self.head[port];
        let flit = self.slots[port * self.depth as usize + head as usize];
        self.head[port] = if head + 1 == self.depth { 0 } else { head + 1 };
        self.len[port] -= 1;
        Some(flit)
    }
}

/// One router's lane of the simulation-owned SoA port state, lent to
/// [`Router::step`] for one cycle.
#[derive(Debug)]
pub struct PortLane<'a> {
    /// Consecutive idle cycles per output port (the authoritative
    /// idle-run counters behind the idle-interval histograms).
    pub idle_run: &'a mut [u64; 5],
    /// Sleep controller per output port.
    pub fsm: &'a mut [SleepFsm; 5],
    /// This router's accumulated gating counters (all ports summed).
    pub counters: &'a mut GatingCounters,
}

/// One wormhole router.
#[derive(Debug, Clone)]
pub struct Router {
    /// This router's id in the mesh.
    pub id: usize,
    buffers: PortBuffers,
    owners: [PortOwner; 5],
    rr_next: [u8; 5],
    sleep_cfg: Option<SleepConfig>,
}

/// A flit departing the router this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Departure {
    /// Input port it was popped from (so callers can maintain an
    /// incremental occupancy snapshot instead of rebuilding it).
    pub input: Direction,
    /// Output port it leaves through.
    pub output: Direction,
    /// The flit itself.
    pub flit: Flit,
}

impl Router {
    /// Creates an empty, ungated router.
    pub fn new(id: usize, buffer_depth: usize) -> Self {
        Router {
            id,
            buffers: PortBuffers::new(buffer_depth),
            owners: Default::default(),
            rr_next: [0; 5],
            sleep_cfg: None,
        }
    }

    /// Creates a router whose output ports run the given sleep FSM
    /// configuration (`None` disables in-loop gating).
    pub fn with_gating(id: usize, buffer_depth: usize, sleep_cfg: Option<SleepConfig>) -> Self {
        Router {
            sleep_cfg,
            ..Router::new(id, buffer_depth)
        }
    }

    /// Whether the input buffer for `port` can accept a flit.
    pub fn can_accept(&self, port: Direction) -> bool {
        !self.buffers.is_full(port.index())
    }

    /// Pushes an arriving flit into an input buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full (callers must check
    /// [`Router::can_accept`] — the link-level credit).
    pub fn accept(&mut self, port: Direction, flit: Flit) {
        assert!(
            self.can_accept(port),
            "buffer overflow at router {}",
            self.id
        );
        self.buffers.push_back(port.index(), flit);
    }

    /// Buffer occupancy of an input port.
    pub fn occupancy(&self, port: Direction) -> usize {
        self.buffers.len(port.index())
    }

    /// Total buffered flits.
    pub fn total_occupancy(&self) -> usize {
        (0..5).map(|p| self.buffers.len(p)).sum()
    }

    /// Whether the router holds no flits and no output port is held
    /// mid-packet — the buffer/crossbar half of the active-set kernel's
    /// quiescence predicate. A quiet router's [`Router::step`] can only
    /// tick idle counters, so it may be skipped and bulk-accounted.
    pub fn is_quiet(&self) -> bool {
        self.buffers.len.iter().all(|&l| l == 0) && self.owners == [PortOwner::FREE; 5]
    }

    /// The input whose front flit is ready for `out` this cycle, without
    /// popping: the owning input while the port is allocated, otherwise
    /// the round-robin arbitration winner among waiting head flits.
    /// Inputs flagged in `used` already sent a flit this cycle and are
    /// skipped — an input buffer has one crossbar line, so it can feed
    /// at most one output per cycle.
    fn candidate_input(
        &self,
        out: Direction,
        route: impl Fn(&Flit) -> Direction,
        used: &[bool; 5],
    ) -> Option<usize> {
        let oi = out.index();
        match self.owners[oi].input() {
            Some(input) => self
                .buffers
                .front(input)
                .filter(|f| !used[input] && route(f) == out)
                .map(|_| input),
            None => {
                let start = self.rr_next[oi] as usize;
                (0..5).map(|k| (start + k) % 5).find(|&input| {
                    !used[input]
                        && self
                            .buffers
                            .front(input)
                            .is_some_and(|f| f.is_head && route(f) == out)
                })
            }
        }
    }

    /// One switch-allocation + traversal cycle.
    ///
    /// `route` maps a flit to its output direction; `downstream_ready`
    /// reports whether the next-hop buffer (or the ejection port) can
    /// accept a flit on the given output — callers must evaluate it
    /// against a cycle-start snapshot so results are independent of
    /// router iteration order. `ports` is this router's lane of the
    /// simulation-owned SoA port state (idle runs, sleep FSMs, gating
    /// counters).
    ///
    /// Returns the flits that leave this cycle (at most one per output)
    /// and the number of arbitrations performed. `idle_ended[p]` is the
    /// length of the idle run that ended on port `p` this cycle (0 if
    /// the port stayed idle or was already busy).
    pub fn step(
        &mut self,
        route: impl Fn(&Flit) -> Direction,
        downstream_ready: impl Fn(Direction) -> bool,
        ports: PortLane<'_>,
    ) -> StepOutcome {
        let mut departures = [None; 5];
        let mut arbitrations = 0u64;
        let mut idle_ended = [0u64; 5];
        // Inputs that already sent a flit this cycle: one crossbar line
        // per input buffer, so one read per input per cycle.
        let mut input_used = [false; 5];

        for out in Direction::ALL {
            let oi = out.index();

            let candidate = self.candidate_input(out, &route, &input_used);
            // A flit "wants" the port only when it could actually move:
            // a sleeping port stays in standby while downstream is
            // blocked instead of waking into backpressure.
            let wants = candidate.is_some() && downstream_ready(out);

            let can_transmit = match (self.sleep_cfg, &mut ports.fsm[oi]) {
                (Some(cfg), fsm) => fsm.gate(wants, cfg.wake_latency),
                (None, _) => true,
            };

            if can_transmit && self.owners[oi].is_free() {
                arbitrations += 1;
            }

            let mut sent = false;
            if can_transmit && wants {
                let input = candidate.expect("wants implies candidate");
                let flit = self.buffers.pop_front(input).expect("front exists");
                if self.owners[oi].is_free() {
                    if !flit.is_tail {
                        self.owners[oi] = PortOwner::owned(input);
                    }
                    self.rr_next[oi] = ((input + 1) % 5) as u8;
                } else if flit.is_tail {
                    self.owners[oi] = PortOwner::FREE;
                }
                departures[oi] = Some(Departure {
                    input: Direction::from_index(input),
                    output: out,
                    flit,
                });
                input_used[input] = true;
                sent = true;
            }

            // Idle-run bookkeeping for the power model.
            if sent {
                idle_ended[oi] = ports.idle_run[oi];
                ports.idle_run[oi] = 0;
            } else {
                ports.idle_run[oi] += 1;
            }

            if let Some(cfg) = self.sleep_cfg {
                let stalled = wants && !sent;
                // Only Immediate's after-send entry needs to know
                // whether another flit is already waiting; skip the
                // rescan otherwise.
                // The just-used input is free again next cycle, so the
                // lookahead ignores this cycle's usage flags.
                let wants_after = sent
                    && cfg.threshold() == Some(0)
                    && downstream_ready(out)
                    && self.candidate_input(out, &route, &[false; 5]).is_some();
                let run = if sent {
                    idle_ended[oi]
                } else {
                    ports.idle_run[oi]
                };
                ports.fsm[oi].settle(sent, stalled, wants_after, run, &cfg, ports.counters);
            }
        }

        StepOutcome {
            departures,
            arbitrations,
            idle_ended,
        }
    }

    /// [`Router::step`], restructured for the active-set kernel's hot
    /// loop. Semantically identical — the kernel-equivalence property
    /// tests pin it bit-for-bit against `step` via the reference
    /// kernel — but organized for throughput:
    ///
    /// * each occupied input's front flit is routed **once** (≤ 5
    ///   route lookups instead of up to 25 front+route evaluations in
    ///   the per-output arbitration scans), building a head-wants mask
    ///   so outputs nobody wants skip arbitration *and* the
    ///   downstream-readiness check (`downstream_ready` can be a lazy
    ///   closure);
    /// * departures stream through `on_depart` instead of returning a
    ///   five-slot array by value, so nothing is memcpy'd per cycle.
    pub fn step_fast(
        &mut self,
        route: impl Fn(&Flit) -> Direction,
        downstream_ready: impl Fn(Direction) -> bool,
        ports: PortLane<'_>,
        on_depart: impl FnMut(Departure),
    ) -> FastOutcome {
        // Monomorphize on gating so ungated runs never touch the FSM
        // lane (or its cache line) at all.
        if self.sleep_cfg.is_some() {
            self.step_fast_impl::<true>(route, downstream_ready, ports, on_depart)
        } else {
            self.step_fast_impl::<false>(route, downstream_ready, ports, on_depart)
        }
    }

    #[inline(always)]
    fn step_fast_impl<const GATED: bool>(
        &mut self,
        route: impl Fn(&Flit) -> Direction,
        downstream_ready: impl Fn(Direction) -> bool,
        ports: PortLane<'_>,
        mut on_depart: impl FnMut(Departure),
    ) -> FastOutcome {
        const NO_WANT: u8 = u8::MAX;
        let mut arbitrations = 0u64;
        let mut idle_ended = [0u64; 5];
        let mut input_used = [false; 5];

        // Route every occupied input's front flit once, and build a
        // per-output mask of waiting head flits so outputs nobody
        // wants skip the round-robin scan entirely.
        let mut want = [NO_WANT; 5];
        let mut head = [false; 5];
        let mut head_wants = 0u8;
        for input in 0..5 {
            if let Some(f) = self.buffers.front(input) {
                let oi = route(f).index();
                want[input] = oi as u8;
                head[input] = f.is_head;
                if f.is_head {
                    head_wants |= 1 << oi;
                }
            }
        }

        for out in Direction::ALL {
            let oi = out.index();

            let owner = self.owners[oi];
            let candidate = match owner.input() {
                Some(input) => (!input_used[input] && want[input] == oi as u8).then_some(input),
                None if head_wants & (1 << oi) != 0 => {
                    let start = self.rr_next[oi] as usize;
                    (0..5)
                        .map(|k| (start + k) % 5)
                        .find(|&input| !input_used[input] && head[input] && want[input] == oi as u8)
                }
                None => None,
            };
            let wants = candidate.is_some() && downstream_ready(out);

            let can_transmit = if GATED {
                let cfg = self.sleep_cfg.expect("GATED implies a sleep config");
                ports.fsm[oi].gate(wants, cfg.wake_latency)
            } else {
                true
            };

            if can_transmit && owner.is_free() {
                arbitrations += 1;
            }

            let mut sent = false;
            if can_transmit && wants {
                let input = candidate.expect("wants implies candidate");
                let flit = self.buffers.pop_front(input).expect("front exists");
                if owner.is_free() {
                    if !flit.is_tail {
                        self.owners[oi] = PortOwner::owned(input);
                    }
                    self.rr_next[oi] = ((input + 1) % 5) as u8;
                } else if flit.is_tail {
                    self.owners[oi] = PortOwner::FREE;
                }
                on_depart(Departure {
                    input: Direction::from_index(input),
                    output: out,
                    flit,
                });
                input_used[input] = true;
                sent = true;
            }

            if sent {
                idle_ended[oi] = ports.idle_run[oi];
                ports.idle_run[oi] = 0;
            } else {
                ports.idle_run[oi] += 1;
            }

            if GATED {
                let cfg = self.sleep_cfg.expect("GATED implies a sleep config");
                let stalled = wants && !sent;
                // Immediate's after-send park decision re-reads the
                // fresh buffer fronts (the pop just changed them), so
                // it falls back to the shared scan.
                let wants_after = sent
                    && cfg.threshold() == Some(0)
                    && downstream_ready(out)
                    && self.candidate_input(out, &route, &[false; 5]).is_some();
                let run = if sent {
                    idle_ended[oi]
                } else {
                    ports.idle_run[oi]
                };
                ports.fsm[oi].settle(sent, stalled, wants_after, run, &cfg, ports.counters);
            }
        }

        FastOutcome {
            arbitrations,
            idle_ended,
        }
    }
}

/// What happened in one [`Router::step_fast`] cycle (departures are
/// streamed to the `on_depart` callback instead).
#[derive(Debug, Clone, Copy)]
pub struct FastOutcome {
    /// Arbitration events (for the arbiter energy model).
    pub arbitrations: u64,
    /// Idle-interval lengths that ended this cycle, per output index.
    pub idle_ended: [u64; 5],
}

/// What happened in one router cycle.
#[derive(Debug, Clone, Copy)]
pub struct StepOutcome {
    /// Flit leaving each output this cycle (indexed by
    /// [`Direction::index`]).
    pub departures: [Option<Departure>; 5],
    /// Arbitration events (for the arbiter energy model).
    pub arbitrations: u64,
    /// Idle-interval lengths that ended this cycle, per output index.
    pub idle_ended: [u64; 5],
}

impl StepOutcome {
    /// Iterates the departures that actually happened.
    pub fn departures(&self) -> impl Iterator<Item = Departure> + '_ {
        self.departures.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sleep::SleepState;
    use lnoc_power::gating::GatingPolicy;

    /// Standalone owner of one router's SoA lane for unit tests (the
    /// simulation owns these arrays network-wide).
    #[derive(Default)]
    struct Ports {
        idle: [u64; 5],
        fsm: [SleepFsm; 5],
        counters: GatingCounters,
    }

    impl Ports {
        fn lane(&mut self) -> PortLane<'_> {
            PortLane {
                idle_run: &mut self.idle,
                fsm: &mut self.fsm,
                counters: &mut self.counters,
            }
        }
    }

    fn flit(id: u64, head: bool, tail: bool) -> Flit {
        Flit {
            packet_id: id,
            src: 0,
            dst: 1,
            is_head: head,
            is_tail: tail,
            injected_at: 0,
        }
    }

    #[test]
    fn single_flit_passes_through() {
        let mut r = Router::new(0, 4);
        let mut p = Ports::default();
        r.accept(Direction::West, flit(1, true, true));
        let out = r.step(|_| Direction::East, |_| true, p.lane());
        let deps: Vec<_> = out.departures().collect();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].output, Direction::East);
        assert_eq!(deps[0].input, Direction::West);
        assert_eq!(r.total_occupancy(), 0);
        assert!(r.is_quiet());
    }

    #[test]
    fn wormhole_holds_port_for_whole_packet() {
        let mut r = Router::new(0, 8);
        let mut p = Ports::default();
        r.accept(Direction::West, flit(1, true, false));
        r.accept(Direction::West, flit(1, false, false));
        r.accept(Direction::West, flit(1, false, true));
        // A competing head on another input wants the same output.
        r.accept(Direction::North, flit(2, true, true));

        let mut winners = Vec::new();
        for _ in 0..4 {
            let out = r.step(|_| Direction::East, |_| true, p.lane());
            for d in out.departures() {
                winners.push(d.flit.packet_id);
            }
        }
        // All four flits cross, and packet 1's three flits stay
        // contiguous (the port is held until the tail) — which input
        // wins the initial arbitration is round-robin state, not part of
        // the contract.
        assert_eq!(winners.len(), 4);
        let first_one = winners.iter().position(|&p| p == 1).expect("packet 1 sent");
        assert_eq!(&winners[first_one..first_one + 3], &[1, 1, 1]);
    }

    #[test]
    fn backpressure_blocks() {
        let mut r = Router::new(0, 4);
        let mut p = Ports::default();
        r.accept(Direction::West, flit(1, true, true));
        let out = r.step(|_| Direction::East, |_| false, p.lane());
        assert_eq!(out.departures().count(), 0);
        assert_eq!(r.total_occupancy(), 1);
        assert!(!r.is_quiet());
    }

    #[test]
    fn mid_packet_router_is_not_quiet() {
        // The head leaves but the port stays Owned awaiting body flits:
        // the router is empty yet must not be treated as quiescent (the
        // held port must not arbitrate).
        let mut r = Router::new(0, 4);
        let mut p = Ports::default();
        r.accept(Direction::West, flit(1, true, false));
        let out = r.step(|_| Direction::East, |_| true, p.lane());
        assert_eq!(out.departures().count(), 1);
        assert_eq!(r.total_occupancy(), 0);
        assert!(!r.is_quiet(), "owned output port keeps the router active");
    }

    #[test]
    fn buffer_overflow_panics() {
        let mut r = Router::new(0, 1);
        r.accept(Direction::West, flit(1, true, true));
        assert!(!r.can_accept(Direction::West));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.accept(Direction::West, flit(2, true, true));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn ring_buffer_wraps_cleanly() {
        // Push/pop more flits than the depth so heads wrap around.
        let mut r = Router::new(0, 3);
        let mut p = Ports::default();
        for round in 0..5u64 {
            r.accept(Direction::West, flit(round, true, true));
            r.accept(Direction::West, flit(round + 100, true, true));
            let f1 = r.step(|_| Direction::East, |_| true, p.lane());
            let f2 = r.step(|_| Direction::East, |_| true, p.lane());
            assert_eq!(f1.departures().next().unwrap().flit.packet_id, round);
            assert_eq!(f2.departures().next().unwrap().flit.packet_id, round + 100);
        }
        assert_eq!(r.total_occupancy(), 0);
    }

    #[test]
    fn one_input_feeds_at_most_one_output_per_cycle() {
        // Input West holds [tail of packet 1 → East, head of packet 2 →
        // Local]. A single input buffer has one crossbar line, so the
        // two flits must leave on different cycles even though both
        // outputs are free.
        let mut r = Router::new(0, 4);
        let mut p = Ports::default();
        r.accept(Direction::West, flit(1, true, true));
        r.accept(Direction::West, flit(2, true, true));
        let route = |f: &Flit| {
            if f.packet_id == 1 {
                Direction::East
            } else {
                Direction::Local
            }
        };
        let first = r.step(route, |_| true, p.lane());
        assert_eq!(first.departures().count(), 1, "one read per input");
        assert_eq!(first.departures().next().unwrap().output, Direction::East);
        let second = r.step(route, |_| true, p.lane());
        assert_eq!(second.departures().next().unwrap().output, Direction::Local);
    }

    #[test]
    fn round_robin_rotates_between_competitors() {
        let mut r = Router::new(0, 4);
        let mut p = Ports::default();
        // Two single-flit packets per input, both to East.
        for _ in 0..2 {
            r.accept(Direction::West, flit(10, true, true));
            r.accept(Direction::North, flit(20, true, true));
        }
        let mut order = Vec::new();
        for _ in 0..4 {
            let out = r.step(|_| Direction::East, |_| true, p.lane());
            for d in out.departures() {
                order.push(d.flit.packet_id);
            }
        }
        assert_eq!(order.len(), 4);
        // Alternation: no input sends twice in a row.
        assert_ne!(order[0], order[1]);
        assert_ne!(order[1], order[2]);
    }

    #[test]
    fn idle_runs_are_tracked() {
        let mut r = Router::new(0, 4);
        let mut p = Ports::default();
        // Three idle cycles on every port.
        for _ in 0..3 {
            let _ = r.step(|_| Direction::East, |_| true, p.lane());
        }
        r.accept(Direction::West, flit(1, true, true));
        let out = r.step(|_| Direction::East, |_| true, p.lane());
        // East's 3-cycle idle run ended when the flit crossed.
        assert_eq!(out.idle_ended[Direction::East.index()], 3);
        assert_eq!(p.idle[Direction::East.index()], 0);
        assert!(p.idle[Direction::North.index()] >= 4);
    }

    #[test]
    fn sleeping_port_stalls_flit_by_wake_latency() {
        let wake = 3u32;
        let mut r = Router::with_gating(
            0,
            4,
            Some(SleepConfig {
                policy: GatingPolicy::IdleThreshold(2),
                wake_latency: wake,
            }),
        );
        let mut p = Ports::default();
        // Idle past the threshold: the port sleeps.
        for _ in 0..4 {
            let _ = r.step(|_| Direction::East, |_| true, p.lane());
        }
        assert_eq!(p.fsm[Direction::East.index()].state(), SleepState::Asleep);

        // A flit arrives; it must wait out exactly `wake` cycles.
        r.accept(Direction::West, flit(1, true, true));
        let mut stalls = 0;
        loop {
            let out = r.step(|_| Direction::East, |_| true, p.lane());
            if out.departures().count() == 1 {
                break;
            }
            stalls += 1;
            assert!(stalls < 10, "flit never departed");
        }
        assert_eq!(stalls, wake);
        assert_eq!(p.counters.wake_stall_cycles, wake as u64);
        assert_eq!(p.counters.cycles_waking, wake as u64);
        // All five idle ports slept; only East had to wake.
        assert_eq!(p.counters.sleep_entries, 5);
    }

    #[test]
    fn step_fast_matches_step_cycle_for_cycle() {
        // Same arrivals, same readiness pattern, one router stepped
        // with `step`, its twin with `step_fast`: every departure,
        // counter and idle run must match on every cycle.
        for gating in [
            None,
            Some(SleepConfig {
                policy: GatingPolicy::IdleThreshold(2),
                wake_latency: 2,
            }),
            Some(SleepConfig {
                policy: GatingPolicy::Immediate,
                wake_latency: 1,
            }),
        ] {
            let mut slow = Router::with_gating(0, 4, gating);
            let mut fast = Router::with_gating(0, 4, gating);
            let mut sp = Ports::default();
            let mut fp = Ports::default();
            // Deterministic pseudo-random stream (xorshift).
            let mut x = 0x9e3779b97f4a7c15u64;
            let mut rnd = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let route = |f: &Flit| Direction::from_index(f.dst % 5);
            let mut pkt = 0u64;
            for cycle in 0..500u64 {
                // Random arrivals on random input ports.
                for _ in 0..(rnd() % 3) {
                    let port = Direction::from_index((rnd() % 5) as usize);
                    let dst = (rnd() % 5) as usize;
                    let len = 1 + (rnd() % 3) as usize;
                    // Whole wormhole packets (head…tail) so Owned port
                    // state is exercised too.
                    if slow.occupancy(port) + len <= 4 {
                        pkt += 1;
                        for k in 0..len {
                            let f = Flit {
                                packet_id: pkt,
                                src: 0,
                                dst,
                                is_head: k == 0,
                                is_tail: k + 1 == len,
                                injected_at: cycle,
                            };
                            slow.accept(port, f);
                            fast.accept(port, f);
                        }
                    }
                }
                // Random downstream readiness, identical for both.
                let ready_mask = rnd() % 32;
                let ready = |d: Direction| ready_mask & (1 << d.index()) != 0;
                let a = slow.step(route, ready, sp.lane());
                let mut fast_deps: Vec<Departure> = Vec::new();
                let b = fast.step_fast(route, ready, fp.lane(), |d| fast_deps.push(d));
                let slow_deps: Vec<Departure> = a.departures().collect();
                assert_eq!(slow_deps, fast_deps, "cycle {cycle} {gating:?}");
                assert_eq!(a.arbitrations, b.arbitrations, "cycle {cycle}");
                assert_eq!(a.idle_ended, b.idle_ended, "cycle {cycle}");
                assert_eq!(sp.idle, fp.idle, "cycle {cycle}");
                assert_eq!(sp.fsm, fp.fsm, "cycle {cycle}");
                assert_eq!(sp.counters, fp.counters, "cycle {cycle}");
                assert_eq!(slow.total_occupancy(), fast.total_occupancy());
            }
        }
    }

    #[test]
    fn ungated_router_has_zero_counters() {
        let mut r = Router::new(0, 4);
        let mut p = Ports::default();
        for _ in 0..10 {
            let _ = r.step(|_| Direction::East, |_| true, p.lane());
        }
        assert_eq!(p.counters, GatingCounters::default());
        assert_eq!(p.fsm[Direction::East.index()].state(), SleepState::Active);
    }

    #[test]
    fn never_policy_matches_ungated_behaviour_with_accounting() {
        let mut r = Router::with_gating(
            0,
            4,
            Some(SleepConfig {
                policy: GatingPolicy::Never,
                wake_latency: 1,
            }),
        );
        let mut p = Ports::default();
        for _ in 0..5 {
            let _ = r.step(|_| Direction::East, |_| true, p.lane());
        }
        r.accept(Direction::West, flit(1, true, true));
        let out = r.step(|_| Direction::East, |_| true, p.lane());
        assert_eq!(out.departures().count(), 1, "Never gating never stalls");
        assert_eq!(p.counters.sleep_entries, 0);
        assert_eq!(p.counters.cycles_busy, 1);
        // 5 idle cycles × 5 ports + 4 idle ports on the send cycle.
        assert_eq!(p.counters.cycles_idle_awake, 29);
    }
}
