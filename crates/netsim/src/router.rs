//! Input-buffered wormhole router with virtual channels and
//! credit-based flow control.
//!
//! One router has five input ports (one per [`Direction`]), each split
//! into `V` virtual-channel ring buffers, and a 5×5 crossbar — the
//! paper's evaluation object generalized to VC flow control. Switching
//! is wormhole per VC: a head flit claims an *output VC lane* (an
//! `(output port, VC)` pair — physically the downstream router's input
//! VC buffer), body flits follow on that lane, and the tail flit
//! releases it. Backpressure is credit-based: the simulation carries an
//! explicit credit counter per output lane (free slots in the
//! downstream VC buffer), decremented when a flit departs and
//! incremented when the downstream router pops one.
//!
//! Allocation is two-stage, both stages resolved within a cycle:
//!
//! ```text
//!  input port 0 ─ VC0 ─┐
//!              ─ VC1 ─┤   ┌────────────────┐      ┌────────────────┐
//!  input port 1 ─ VC0 ─┼──►│ VC allocation  │─────►│ switch          │──► at most one
//!              ─ VC1 ─┤   │ (head flits     │ body │ allocation      │    flit per
//!      ⋮              │   │  claim a free   │flits │ (per output     │    output port
//!  input port 4 ─ VC0 ─┤   │  output VC with │ skip │  port: RR over  │    per cycle
//!              ─ VC1 ─┘   │  a credit)      │ VA   │  its V lanes;   │
//!                         └────────────────┘      │  per input port:│
//!                                                 │  one read/cycle)│
//!                                                 └────────────────┘
//! ```
//!
//! * **VC allocation** — a head flit at the front of an input VC
//!   requests one specific output lane (a pure function of the route
//!   and the dateline class, see [`Mesh::hop_vc`]); it is granted when
//!   the lane is free, it holds a credit, and the head wins the lane's
//!   round-robin among competing heads. The grant happens at traversal
//!   time and persists until the tail passes.
//! * **Switch allocation** — each output port carries one crossbar
//!   line, so per cycle at most one of its V lanes sends (round-robin
//!   among the lanes, [`Router`]-internal `sa_rr` state); each input
//!   port also has one crossbar line, so at most one of its VCs is
//!   read per cycle.
//!
//! With `V = 1` both stages degenerate to the pre-VC single-FIFO
//! arbitration bit-for-bit — pinned by `tests/v1_behaviour_pinned.rs`.
//!
//! Per-lane *state that every cycle must touch* — idle-run counters,
//! the [`SleepFsm`] sleep controllers, and the [`GatingCounters`] — is
//! **not** stored inside the router. The simulation owns it as flat
//! network-wide SoA arrays (indexed `router * 5 * V + port * V + vc`)
//! and lends this router's lane block to [`Router::step`] as a
//! [`PortLane`]. Gating is therefore per **VC lane**: an empty VC bank
//! can sleep while a sibling VC of the same port carries a worm.
//!
//! The input VC buffers live in one flat ring-buffer allocation and
//! [`Router::step_fast`] performs no heap allocation — the hot loop of
//! the whole simulator.
//!
//! [`Mesh::hop_vc`]: crate::topology::Mesh::hop_vc

use crate::sleep::{SleepConfig, SleepFsm};
use crate::topology::Direction;
use crate::traffic::Flit;
use lnoc_power::gating::GatingCounters;
use serde::{Deserialize, Serialize};

/// Hard cap on virtual channels per port: keeps the per-cycle
/// head-wants mask in one `u64` (`5 * 8 = 40` output lanes) and the
/// lane-owner encoding in one byte.
pub const MAX_VCS: usize = 8;

/// Maximum lanes per router (`5 * MAX_VCS`) — sizes the fixed per-cycle
/// scratch arrays so [`Router::step_fast`] stays allocation-free for
/// any VC count.
pub const MAX_LANES: usize = 5 * MAX_VCS;

/// Where a flit wants to go next: an output port plus the virtual
/// channel it must ride on the outgoing link (the downstream input VC).
/// Produced by the routing closure for every buffered flit; pure in the
/// flit, so body flits recompute their head's choice exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteTarget {
    /// Output port.
    pub out: Direction,
    /// Virtual channel on the outgoing link (`0` for ejection).
    pub vc: u8,
}

/// Per-output-lane state: which input lane currently owns the lane.
/// One byte per lane (`FREE` or the owning input-lane index `port * V +
/// vc`) so a router's owners pack into a few loads — the quiescence
/// check and the step path test them every cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(transparent)]
struct PortOwner(u8);

impl PortOwner {
    /// Free for a new head flit.
    const FREE: PortOwner = PortOwner(u8::MAX);

    /// Allocated to the given input lane until a tail flit passes.
    fn owned(input_lane: usize) -> PortOwner {
        debug_assert!(input_lane < MAX_LANES);
        PortOwner(input_lane as u8)
    }

    fn is_free(self) -> bool {
        self == PortOwner::FREE
    }

    /// The owning input lane, if any.
    fn input(self) -> Option<usize> {
        (!self.is_free()).then_some(self.0 as usize)
    }
}

impl Default for PortOwner {
    fn default() -> Self {
        PortOwner::FREE
    }
}

/// All `5 * V` input VC buffers in one flat allocation: lane `l`
/// (`port * V + vc`) owns the slot range `l*depth..(l+1)*depth` as a
/// ring buffer.
#[derive(Debug, Clone)]
struct PortBuffers {
    slots: Box<[Flit]>,
    head: Box<[u32]>,
    len: Box<[u32]>,
    depth: u32,
}

impl PortBuffers {
    fn new(depth: usize, lanes: usize) -> Self {
        PortBuffers {
            slots: vec![Flit::INVALID; lanes * depth].into_boxed_slice(),
            head: vec![0; lanes].into_boxed_slice(),
            len: vec![0; lanes].into_boxed_slice(),
            depth: depth as u32,
        }
    }

    fn len(&self, lane: usize) -> usize {
        self.len[lane] as usize
    }

    fn is_full(&self, lane: usize) -> bool {
        self.len[lane] == self.depth
    }

    fn front(&self, lane: usize) -> Option<&Flit> {
        (self.len[lane] > 0)
            .then(|| &self.slots[lane * self.depth as usize + self.head[lane] as usize])
    }

    fn push_back(&mut self, lane: usize, flit: Flit) {
        debug_assert!(!self.is_full(lane));
        debug_assert!(!flit.is_invalid(), "buffered a filler flit");
        // Conditional wrap instead of `%`: the depth is a runtime
        // value, so a modulo here is a hardware divide in the hottest
        // loop of the simulator.
        let mut tail = self.head[lane] + self.len[lane];
        if tail >= self.depth {
            tail -= self.depth;
        }
        self.slots[lane * self.depth as usize + tail as usize] = flit;
        self.len[lane] += 1;
    }

    fn pop_front(&mut self, lane: usize) -> Option<Flit> {
        if self.len[lane] == 0 {
            return None;
        }
        let head = self.head[lane];
        let flit = self.slots[lane * self.depth as usize + head as usize];
        debug_assert!(!flit.is_invalid(), "popped a filler flit");
        self.head[lane] = if head + 1 == self.depth { 0 } else { head + 1 };
        self.len[lane] -= 1;
        Some(flit)
    }
}

/// One router's block of the simulation-owned SoA per-lane state, lent
/// to [`Router::step`] for one cycle. All slices have `5 * V` entries,
/// indexed `port * V + vc`.
#[derive(Debug)]
pub struct PortLane<'a> {
    /// Consecutive idle cycles per output VC lane (the authoritative
    /// idle-run counters behind the idle-interval histograms).
    pub idle_run: &'a mut [u64],
    /// Sleep controller per output VC lane.
    pub fsm: &'a mut [SleepFsm],
    /// This router's accumulated gating counters (all lanes summed).
    pub counters: &'a mut GatingCounters,
    /// Out-parameter: length of the idle run that ended on each lane
    /// this cycle (0 if the lane stayed idle or was already busy).
    /// Cleared by the router at the start of the step.
    pub idle_ended: &'a mut [u64],
}

/// One wormhole router.
#[derive(Debug, Clone)]
pub struct Router {
    /// This router's id in the mesh.
    pub id: usize,
    buffers: PortBuffers,
    /// Owner per output lane.
    owners: Box<[PortOwner]>,
    /// Packet id of the worm holding each output lane — only
    /// meaningful while the matching owner is allocated. Lets the
    /// fault layer release lanes held by doomed packets whose
    /// remaining flits were purged upstream.
    owner_pkt: Box<[u64]>,
    /// VC-allocation round-robin pointer per output lane, over the
    /// `5 * V` input lanes.
    rr_next: Box<[u8]>,
    /// Switch-allocation round-robin pointer per output *port*, over
    /// its `V` lanes.
    sa_rr: [u8; 5],
    vcs: u8,
    sleep_cfg: Option<SleepConfig>,
}

/// A flit departing the router this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Departure {
    /// Input port it was popped from (so callers can return the freed
    /// slot's credit to the upstream router).
    pub input: Direction,
    /// Input virtual channel it was popped from.
    pub input_vc: u8,
    /// Output port it leaves through.
    pub output: Direction,
    /// The flit itself; `flit.vc` is the output VC it departs on.
    pub flit: Flit,
}

impl Router {
    /// Creates an empty, ungated router with `vcs` virtual channels of
    /// `buffer_depth` flits each per port.
    ///
    /// # Panics
    ///
    /// Panics when `vcs` is 0 or exceeds [`MAX_VCS`].
    pub fn new(id: usize, buffer_depth: usize, vcs: usize) -> Self {
        assert!((1..=MAX_VCS).contains(&vcs), "vcs must be in 1..={MAX_VCS}");
        let lanes = 5 * vcs;
        Router {
            id,
            buffers: PortBuffers::new(buffer_depth, lanes),
            owners: vec![PortOwner::FREE; lanes].into_boxed_slice(),
            owner_pkt: vec![0; lanes].into_boxed_slice(),
            rr_next: vec![0; lanes].into_boxed_slice(),
            sa_rr: [0; 5],
            vcs: vcs as u8,
            sleep_cfg: None,
        }
    }

    /// Creates a router whose output VC lanes run the given sleep FSM
    /// configuration (`None` disables in-loop gating).
    pub fn with_gating(
        id: usize,
        buffer_depth: usize,
        vcs: usize,
        sleep_cfg: Option<SleepConfig>,
    ) -> Self {
        Router {
            sleep_cfg,
            ..Router::new(id, buffer_depth, vcs)
        }
    }

    /// Virtual channels per port.
    pub fn vcs(&self) -> usize {
        self.vcs as usize
    }

    /// Lanes per router (`5 * vcs`).
    fn lanes(&self) -> usize {
        5 * self.vcs as usize
    }

    /// Whether the input VC buffer `(port, vc)` can accept a flit.
    pub fn can_accept(&self, port: Direction, vc: usize) -> bool {
        !self.buffers.is_full(port.index() * self.vcs as usize + vc)
    }

    /// Pushes an arriving flit into the input VC buffer named by
    /// `flit.vc`.
    ///
    /// # Panics
    ///
    /// Panics if that VC buffer is full — callers hold one credit per
    /// free slot, so an overflow means the credit accounting broke.
    pub fn accept(&mut self, port: Direction, flit: Flit) {
        let vc = flit.vc as usize;
        assert!(
            self.can_accept(port, vc),
            "VC buffer overflow at router {} port {port} vc {vc}",
            self.id
        );
        self.buffers
            .push_back(port.index() * self.vcs as usize + vc, flit);
    }

    /// Buffer occupancy of one input VC.
    pub fn occupancy(&self, port: Direction, vc: usize) -> usize {
        self.buffers.len(port.index() * self.vcs as usize + vc)
    }

    /// Total buffered flits across an input port's VCs.
    pub fn port_occupancy(&self, port: Direction) -> usize {
        let v = self.vcs as usize;
        (0..v)
            .map(|vc| self.buffers.len(port.index() * v + vc))
            .sum()
    }

    /// Total buffered flits.
    pub fn total_occupancy(&self) -> usize {
        (0..self.lanes()).map(|l| self.buffers.len(l)).sum()
    }

    /// Whether the router holds no flits and no output lane is held
    /// mid-packet — the buffer/crossbar half of the active-set kernel's
    /// quiescence predicate. A quiet router's [`Router::step`] can only
    /// tick idle counters, so it may be skipped and bulk-accounted.
    pub fn is_quiet(&self) -> bool {
        self.buffers.len.iter().all(|&l| l == 0) && self.owners.iter().all(|o| o.is_free())
    }

    /// Calls `f` with every buffered flit, in input-lane order and FIFO
    /// order within a lane — the fault layer's boundary scan.
    pub(crate) fn for_each_flit(&self, mut f: impl FnMut(&Flit)) {
        let depth = self.buffers.depth as usize;
        for lane in 0..self.lanes() {
            let head = self.buffers.head[lane] as usize;
            for k in 0..self.buffers.len(lane) {
                let mut idx = head + k;
                if idx >= depth {
                    idx -= depth;
                }
                f(&self.buffers.slots[lane * depth + idx]);
            }
        }
    }

    /// Removes every buffered flit of a doomed packet and releases
    /// output lanes held by doomed worms (their remaining flits are
    /// being purged network-wide, so the tail that would free the lane
    /// will never arrive). Survivors keep their FIFO order.
    ///
    /// `on_removed` receives each removed flit and the input lane
    /// (`port * V + vc`) it was buffered in, so the caller can return
    /// the freed slot's credit upstream. Returns the number of flits
    /// removed.
    pub(crate) fn purge_packets(
        &mut self,
        doomed: impl Fn(u64) -> bool,
        mut on_removed: impl FnMut(usize, &Flit),
    ) -> usize {
        let mut removed = 0;
        for lane in 0..self.lanes() {
            // Pop exactly the original occupancy; survivors re-pushed
            // at the tail come back around in their original order.
            for _ in 0..self.buffers.len(lane) {
                let flit = self.buffers.pop_front(lane).expect("occupancy counted");
                if doomed(flit.packet_id) {
                    on_removed(lane, &flit);
                    removed += 1;
                } else {
                    self.buffers.push_back(lane, flit);
                }
            }
        }
        for ol in 0..self.lanes() {
            if !self.owners[ol].is_free() && doomed(self.owner_pkt[ol]) {
                self.owners[ol] = PortOwner::FREE;
            }
        }
        removed
    }

    /// The single implementation of the VC-allocation candidate rule
    /// for output lane `ol`: the owning input lane while the lane is
    /// allocated, otherwise the round-robin winner among waiting head
    /// flits. `targets(il)` reports whether input lane `il`'s current
    /// front flit requests `ol` (`Some(is_head)`) or not (`None`) —
    /// the hot step path answers from its cycle-start `want`/`head`
    /// scratch, the Immediate-policy after-send lookahead from fresh
    /// routing, but the eligibility rule itself lives only here.
    /// Input *ports* flagged in `port_used` already sent a flit this
    /// cycle and are skipped — an input port has one crossbar line, so
    /// it can feed at most one output per cycle across all its VCs.
    fn select_candidate(
        &self,
        ol: usize,
        port_used: &[bool; 5],
        targets: impl Fn(usize) -> Option<bool>,
    ) -> Option<usize> {
        let v = self.vcs as usize;
        match self.owners[ol].input() {
            Some(il) => (!port_used[il / v] && targets(il).is_some()).then_some(il),
            None => {
                let n = self.lanes();
                let start = self.rr_next[ol] as usize;
                (0..n)
                    .map(|k| {
                        let i = start + k;
                        if i >= n {
                            i - n
                        } else {
                            i
                        }
                    })
                    .find(|&il| !port_used[il / v] && targets(il) == Some(true))
            }
        }
    }

    /// [`Router::select_candidate`] against the *live* buffer fronts —
    /// used for the Immediate policy's after-send park decision, where
    /// the pop that just happened has already changed the fronts.
    fn candidate_for_lane(
        &self,
        ol: usize,
        route: impl Fn(&Flit) -> RouteTarget,
        used: &[bool; 5],
    ) -> Option<usize> {
        let v = self.vcs as usize;
        self.select_candidate(ol, used, |il| {
            self.buffers
                .front(il)
                .filter(|f| {
                    let t = route(f);
                    t.out.index() * v + t.vc as usize == ol
                })
                .map(|f| f.is_head)
        })
    }

    /// One VC-allocation + switch-allocation + traversal cycle.
    ///
    /// `route` maps a flit to its [`RouteTarget`] (output port + output
    /// VC); `lane_ready` reports whether the output lane holds a credit
    /// (a free slot in the downstream VC buffer; the ejection port
    /// always sinks) — callers must evaluate it against cycle-start
    /// credit state so results are independent of router iteration
    /// order. `ports` is this router's block of the simulation-owned
    /// SoA lane state (idle runs, sleep FSMs, gating counters, and the
    /// `idle_ended` out-slice).
    ///
    /// Returns the flits that leave this cycle (at most one per output
    /// port) and the number of arbitrations performed.
    pub fn step(
        &mut self,
        route: impl Fn(&Flit) -> RouteTarget,
        lane_ready: impl Fn(Direction, usize) -> bool,
        ports: PortLane<'_>,
    ) -> StepOutcome {
        let mut departures = [None; 5];
        let arbitrations = self.step_fast(route, lane_ready, ports, |dep| {
            departures[dep.output.index()] = Some(dep);
        });
        StepOutcome {
            departures,
            arbitrations: arbitrations.arbitrations,
        }
    }

    /// [`Router::step`] with departures streamed through `on_depart`
    /// instead of returned by value — the active-set kernel's hot path.
    /// Monomorphized on gating so ungated runs never touch the FSM
    /// lanes (or their cache lines) at all.
    pub fn step_fast(
        &mut self,
        route: impl Fn(&Flit) -> RouteTarget,
        lane_ready: impl Fn(Direction, usize) -> bool,
        ports: PortLane<'_>,
        on_depart: impl FnMut(Departure),
    ) -> FastOutcome {
        if self.sleep_cfg.is_some() {
            self.step_impl::<true>(route, lane_ready, ports, on_depart)
        } else {
            self.step_impl::<false>(route, lane_ready, ports, on_depart)
        }
    }

    #[inline(always)]
    fn step_impl<const GATED: bool>(
        &mut self,
        route: impl Fn(&Flit) -> RouteTarget,
        lane_ready: impl Fn(Direction, usize) -> bool,
        ports: PortLane<'_>,
        mut on_depart: impl FnMut(Departure),
    ) -> FastOutcome {
        const NO_WANT: u8 = u8::MAX;
        let v = self.vcs as usize;
        let nlanes = 5 * v;
        let mut arbitrations = 0u64;
        let mut input_used = [false; 5];
        ports.idle_ended[..nlanes].fill(0);

        // Route every occupied input lane's front flit once (≤ 5·V
        // route lookups), and build a per-output-lane mask of waiting
        // head flits so lanes nobody requests skip the VC-allocation
        // scan entirely.
        let mut want = [NO_WANT; MAX_LANES];
        let mut head = [false; MAX_LANES];
        let mut head_wants = 0u64;
        for il in 0..nlanes {
            if let Some(f) = self.buffers.front(il) {
                debug_assert!(!f.is_invalid(), "routing a filler flit");
                let t = route(f);
                let ol = t.out.index() * v + t.vc as usize;
                want[il] = ol as u8;
                head[il] = f.is_head;
                if f.is_head {
                    head_wants |= 1 << ol;
                }
            }
        }

        for out in Direction::ALL {
            let oi = out.index();
            // Switch allocation: round-robin start among this output
            // port's V lanes; the first lane that can send wins the
            // port's single crossbar line this cycle.
            let sa_start = self.sa_rr[oi] as usize;
            let mut winner_vc: Option<usize> = None;
            for j in 0..v {
                let mut ovc = sa_start + j;
                if ovc >= v {
                    ovc -= v;
                }
                let ol = oi * v + ovc;

                let owner = self.owners[ol];
                // Mask short-circuit: a free lane no head requested
                // this cycle skips the round-robin scan entirely. The
                // eligibility rule itself is shared with the fresh-scan
                // path in `select_candidate`, answered here from the
                // cycle-start `want`/`head` scratch.
                let candidate = if owner.is_free() && head_wants & (1 << ol) == 0 {
                    None
                } else {
                    self.select_candidate(ol, &input_used, |il| {
                        (want[il] == ol as u8).then_some(head[il])
                    })
                };
                // A flit "wants" the lane only when it could actually
                // move: a sleeping lane stays in standby while the
                // downstream VC is out of credits instead of waking
                // into backpressure.
                let wants = candidate.is_some() && lane_ready(out, ovc);

                let can_transmit = if GATED {
                    let cfg = self.sleep_cfg.expect("GATED implies a sleep config");
                    ports.fsm[ol].gate(wants, cfg.wake_latency)
                } else {
                    true
                };

                if can_transmit && owner.is_free() {
                    arbitrations += 1;
                }

                let mut sent = false;
                if can_transmit && wants && winner_vc.is_none() {
                    let il = candidate.expect("wants implies candidate");
                    let mut flit = self.buffers.pop_front(il).expect("front exists");
                    if owner.is_free() {
                        // VC allocation: the head flit claims the lane
                        // (released again immediately for single-flit
                        // packets) and advances its round-robin.
                        if !flit.is_tail {
                            self.owners[ol] = PortOwner::owned(il);
                            self.owner_pkt[ol] = flit.packet_id;
                        }
                        let next = il + 1;
                        self.rr_next[ol] = (if next == nlanes { 0 } else { next }) as u8;
                    } else if flit.is_tail {
                        self.owners[ol] = PortOwner::FREE;
                    }
                    let input_vc = (il % v) as u8;
                    flit.vc = ovc as u8;
                    on_depart(Departure {
                        input: Direction::from_index(il / v),
                        input_vc,
                        output: out,
                        flit,
                    });
                    input_used[il / v] = true;
                    sent = true;
                    winner_vc = Some(ovc);
                }

                // Idle-run bookkeeping for the power model, per lane.
                if sent {
                    ports.idle_ended[ol] = ports.idle_run[ol];
                    ports.idle_run[ol] = 0;
                } else {
                    ports.idle_run[ol] += 1;
                }

                if GATED {
                    let cfg = self.sleep_cfg.expect("GATED implies a sleep config");
                    // Only FSM-blocked cycles are wake stalls; losing
                    // switch allocation to a sibling lane is ordinary
                    // contention, not a gating penalty.
                    let stalled = wants && !can_transmit;
                    // Only Immediate's after-send park decision needs to
                    // know whether another flit is already waiting; the
                    // rescan reads the fresh buffer fronts (the pop just
                    // changed them). The just-used input port is free
                    // again next cycle, so the lookahead ignores this
                    // cycle's usage flags.
                    let wants_after = sent
                        && cfg.threshold() == Some(0)
                        && lane_ready(out, ovc)
                        && self.candidate_for_lane(ol, &route, &[false; 5]).is_some();
                    let run = if sent {
                        ports.idle_ended[ol]
                    } else {
                        ports.idle_run[ol]
                    };
                    ports.fsm[ol].settle(sent, stalled, wants_after, run, &cfg, ports.counters);
                }
            }
            if let Some(wvc) = winner_vc {
                if v > 1 {
                    let next = wvc + 1;
                    self.sa_rr[oi] = (if next == v { 0 } else { next }) as u8;
                }
            }
        }

        FastOutcome { arbitrations }
    }
}

/// What happened in one [`Router::step_fast`] cycle (departures stream
/// through `on_depart`; per-lane idle runs land in
/// [`PortLane::idle_ended`]).
#[derive(Debug, Clone, Copy)]
pub struct FastOutcome {
    /// Arbitration events (for the arbiter energy model): one per
    /// awake, unallocated output lane per cycle.
    pub arbitrations: u64,
}

/// What happened in one router cycle.
#[derive(Debug, Clone, Copy)]
pub struct StepOutcome {
    /// Flit leaving each output port this cycle (indexed by
    /// [`Direction::index`]).
    pub departures: [Option<Departure>; 5],
    /// Arbitration events (for the arbiter energy model).
    pub arbitrations: u64,
}

impl StepOutcome {
    /// Iterates the departures that actually happened.
    pub fn departures(&self) -> impl Iterator<Item = Departure> + '_ {
        self.departures.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sleep::SleepState;
    use lnoc_power::gating::GatingPolicy;

    /// Standalone owner of one router's SoA lane block for unit tests
    /// (the simulation owns these arrays network-wide).
    struct Ports {
        idle: Vec<u64>,
        fsm: Vec<SleepFsm>,
        counters: GatingCounters,
        idle_ended: Vec<u64>,
    }

    impl Ports {
        fn new(vcs: usize) -> Self {
            Ports {
                idle: vec![0; 5 * vcs],
                fsm: vec![SleepFsm::default(); 5 * vcs],
                counters: GatingCounters::default(),
                idle_ended: vec![0; 5 * vcs],
            }
        }

        fn lane(&mut self) -> PortLane<'_> {
            PortLane {
                idle_run: &mut self.idle,
                fsm: &mut self.fsm,
                counters: &mut self.counters,
                idle_ended: &mut self.idle_ended,
            }
        }
    }

    fn flit(id: u64, head: bool, tail: bool) -> Flit {
        Flit {
            packet_id: id,
            src: 0,
            dst: 1,
            vc: 0,
            is_head: head,
            is_tail: tail,
            injected_at: 0,
        }
    }

    fn vflit(id: u64, vc: u8, head: bool, tail: bool) -> Flit {
        Flit {
            vc,
            ..flit(id, head, tail)
        }
    }

    /// Route everything to one output port on VC 0.
    fn to(out: Direction) -> impl Fn(&Flit) -> RouteTarget {
        move |_| RouteTarget { out, vc: 0 }
    }

    #[test]
    fn single_flit_passes_through() {
        let mut r = Router::new(0, 4, 1);
        let mut p = Ports::new(1);
        r.accept(Direction::West, flit(1, true, true));
        let out = r.step(to(Direction::East), |_, _| true, p.lane());
        let deps: Vec<_> = out.departures().collect();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].output, Direction::East);
        assert_eq!(deps[0].input, Direction::West);
        assert_eq!(deps[0].input_vc, 0);
        assert_eq!(r.total_occupancy(), 0);
        assert!(r.is_quiet());
    }

    #[test]
    fn wormhole_holds_lane_for_whole_packet() {
        let mut r = Router::new(0, 8, 1);
        let mut p = Ports::new(1);
        r.accept(Direction::West, flit(1, true, false));
        r.accept(Direction::West, flit(1, false, false));
        r.accept(Direction::West, flit(1, false, true));
        // A competing head on another input wants the same output.
        r.accept(Direction::North, flit(2, true, true));

        let mut winners = Vec::new();
        for _ in 0..4 {
            let out = r.step(to(Direction::East), |_, _| true, p.lane());
            for d in out.departures() {
                winners.push(d.flit.packet_id);
            }
        }
        // All four flits cross, and packet 1's three flits stay
        // contiguous (the lane is held until the tail) — which input
        // wins the initial allocation is round-robin state, not part of
        // the contract.
        assert_eq!(winners.len(), 4);
        let first_one = winners.iter().position(|&p| p == 1).expect("packet 1 sent");
        assert_eq!(&winners[first_one..first_one + 3], &[1, 1, 1]);
    }

    #[test]
    fn no_credit_blocks() {
        let mut r = Router::new(0, 4, 1);
        let mut p = Ports::new(1);
        r.accept(Direction::West, flit(1, true, true));
        let out = r.step(to(Direction::East), |_, _| false, p.lane());
        assert_eq!(out.departures().count(), 0);
        assert_eq!(r.total_occupancy(), 1);
        assert!(!r.is_quiet());
    }

    #[test]
    fn mid_packet_router_is_not_quiet() {
        // The head leaves but the lane stays Owned awaiting body flits:
        // the router is empty yet must not be treated as quiescent (the
        // held lane must not arbitrate).
        let mut r = Router::new(0, 4, 1);
        let mut p = Ports::new(1);
        r.accept(Direction::West, flit(1, true, false));
        let out = r.step(to(Direction::East), |_, _| true, p.lane());
        assert_eq!(out.departures().count(), 1);
        assert_eq!(r.total_occupancy(), 0);
        assert!(!r.is_quiet(), "owned output lane keeps the router active");
    }

    #[test]
    fn buffer_overflow_panics() {
        let mut r = Router::new(0, 1, 1);
        r.accept(Direction::West, flit(1, true, true));
        assert!(!r.can_accept(Direction::West, 0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.accept(Direction::West, flit(2, true, true));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn vc_buffers_are_independent() {
        // Filling VC 0 must leave VC 1 accepting, and vice versa.
        let mut r = Router::new(0, 1, 2);
        r.accept(Direction::West, vflit(1, 0, true, true));
        assert!(!r.can_accept(Direction::West, 0));
        assert!(r.can_accept(Direction::West, 1));
        r.accept(Direction::West, vflit(2, 1, true, true));
        assert!(!r.can_accept(Direction::West, 1));
        assert_eq!(r.occupancy(Direction::West, 0), 1);
        assert_eq!(r.occupancy(Direction::West, 1), 1);
        assert_eq!(r.port_occupancy(Direction::West), 2);
    }

    #[test]
    fn ring_buffer_wraps_cleanly() {
        // Push/pop more flits than the depth so heads wrap around.
        let mut r = Router::new(0, 3, 1);
        let mut p = Ports::new(1);
        for round in 0..5u64 {
            r.accept(Direction::West, flit(round, true, true));
            r.accept(Direction::West, flit(round + 100, true, true));
            let f1 = r.step(to(Direction::East), |_, _| true, p.lane());
            let f2 = r.step(to(Direction::East), |_, _| true, p.lane());
            assert_eq!(f1.departures().next().unwrap().flit.packet_id, round);
            assert_eq!(f2.departures().next().unwrap().flit.packet_id, round + 100);
        }
        assert_eq!(r.total_occupancy(), 0);
    }

    #[test]
    fn one_input_port_feeds_at_most_one_output_per_cycle() {
        // Input West holds [tail of packet 1 → East, head of packet 2 →
        // Local]. A single input port has one crossbar line, so the
        // two flits must leave on different cycles even though both
        // outputs are free.
        let mut r = Router::new(0, 4, 1);
        let mut p = Ports::new(1);
        r.accept(Direction::West, flit(1, true, true));
        r.accept(Direction::West, flit(2, true, true));
        let route = |f: &Flit| RouteTarget {
            out: if f.packet_id == 1 {
                Direction::East
            } else {
                Direction::Local
            },
            vc: 0,
        };
        let first = r.step(route, |_, _| true, p.lane());
        assert_eq!(first.departures().count(), 1, "one read per input port");
        assert_eq!(first.departures().next().unwrap().output, Direction::East);
        let second = r.step(route, |_, _| true, p.lane());
        assert_eq!(second.departures().next().unwrap().output, Direction::Local);
    }

    #[test]
    fn sibling_vcs_share_the_input_port_crossbar_line() {
        // Two single-flit packets on different VCs of the same input
        // port, to different outputs: one read per port per cycle, so
        // they leave on consecutive cycles.
        let mut r = Router::new(0, 4, 2);
        let mut p = Ports::new(2);
        r.accept(Direction::West, vflit(1, 0, true, true));
        r.accept(Direction::West, vflit(2, 1, true, true));
        let route = |f: &Flit| RouteTarget {
            out: if f.packet_id == 1 {
                Direction::East
            } else {
                Direction::Local
            },
            vc: 0,
        };
        let first = r.step(route, |_, _| true, p.lane());
        assert_eq!(first.departures().count(), 1);
        let second = r.step(route, |_, _| true, p.lane());
        assert_eq!(second.departures().count(), 1);
        assert_eq!(r.total_occupancy(), 0);
    }

    #[test]
    fn output_port_sends_one_flit_per_cycle_across_vcs() {
        // Heads on two different input ports request the two different
        // VCs of the same output port: both win VC allocation, but the
        // port's single crossbar line carries one flit per cycle, and
        // switch allocation round-robins between the lanes.
        let mut r = Router::new(0, 4, 2);
        let mut p = Ports::new(2);
        for _ in 0..2 {
            r.accept(Direction::West, vflit(1, 0, true, true));
            r.accept(Direction::North, vflit(2, 0, true, true));
        }
        let route = |f: &Flit| RouteTarget {
            out: Direction::East,
            vc: if f.packet_id == 1 { 0 } else { 1 },
        };
        let mut per_cycle = Vec::new();
        let mut vcs_seen = Vec::new();
        for _ in 0..4 {
            let out = r.step(route, |_, _| true, p.lane());
            per_cycle.push(out.departures().count());
            for d in out.departures() {
                vcs_seen.push(d.flit.vc);
            }
        }
        assert_eq!(per_cycle, vec![1, 1, 1, 1], "one flit per output port");
        // Switch allocation alternates between the two lanes.
        assert_ne!(vcs_seen[0], vcs_seen[1]);
        assert_ne!(vcs_seen[1], vcs_seen[2]);
        assert_eq!(r.total_occupancy(), 0);
    }

    #[test]
    fn blocked_vc_does_not_block_its_sibling() {
        // VC 0 of the output has no credit; a packet on VC 1 must still
        // flow — the head-of-line blocking VCs exist to remove.
        let mut r = Router::new(0, 4, 2);
        let mut p = Ports::new(2);
        r.accept(Direction::West, vflit(1, 0, true, true));
        r.accept(Direction::North, vflit(2, 1, true, true));
        let route = |f: &Flit| RouteTarget {
            out: Direction::East,
            vc: if f.packet_id == 1 { 0 } else { 1 },
        };
        let ready = |_d: Direction, vc: usize| vc == 1;
        let mut delivered = Vec::new();
        for _ in 0..2 {
            let out = r.step(route, ready, p.lane());
            for d in out.departures() {
                delivered.push((d.flit.packet_id, d.flit.vc));
            }
        }
        assert_eq!(delivered, vec![(2, 1)], "only the credited VC moves");
        assert_eq!(r.total_occupancy(), 1, "VC 0's packet stays buffered");
    }

    #[test]
    fn round_robin_rotates_between_competitors() {
        let mut r = Router::new(0, 4, 1);
        let mut p = Ports::new(1);
        // Two single-flit packets per input, both to East.
        for _ in 0..2 {
            r.accept(Direction::West, flit(10, true, true));
            r.accept(Direction::North, flit(20, true, true));
        }
        let mut order = Vec::new();
        for _ in 0..4 {
            let out = r.step(to(Direction::East), |_, _| true, p.lane());
            for d in out.departures() {
                order.push(d.flit.packet_id);
            }
        }
        assert_eq!(order.len(), 4);
        // Alternation: no input sends twice in a row.
        assert_ne!(order[0], order[1]);
        assert_ne!(order[1], order[2]);
    }

    #[test]
    fn idle_runs_are_tracked_per_lane() {
        let mut r = Router::new(0, 4, 2);
        let mut p = Ports::new(2);
        // Three idle cycles on every lane.
        for _ in 0..3 {
            let _ = r.step(to(Direction::East), |_, _| true, p.lane());
        }
        r.accept(Direction::West, flit(1, true, true));
        let _ = r.step(to(Direction::East), |_, _| true, p.lane());
        let east0 = Direction::East.index() * 2;
        // East VC 0's 3-cycle idle run ended when the flit crossed; its
        // sibling VC 1 lane stays idle.
        assert_eq!(p.idle_ended[east0], 3);
        assert_eq!(p.idle[east0], 0);
        assert!(p.idle[east0 + 1] >= 4, "sibling lane keeps idling");
        assert!(p.idle[Direction::North.index() * 2] >= 4);
    }

    #[test]
    fn sleeping_lane_stalls_flit_by_wake_latency() {
        let wake = 3u32;
        let mut r = Router::with_gating(
            0,
            4,
            1,
            Some(SleepConfig {
                policy: GatingPolicy::IdleThreshold(2),
                wake_latency: wake,
            }),
        );
        let mut p = Ports::new(1);
        // Idle past the threshold: the lane sleeps.
        for _ in 0..4 {
            let _ = r.step(to(Direction::East), |_, _| true, p.lane());
        }
        assert_eq!(p.fsm[Direction::East.index()].state(), SleepState::Asleep);

        // A flit arrives; it must wait out exactly `wake` cycles.
        r.accept(Direction::West, flit(1, true, true));
        let mut stalls = 0;
        loop {
            let out = r.step(to(Direction::East), |_, _| true, p.lane());
            if out.departures().count() == 1 {
                break;
            }
            stalls += 1;
            assert!(stalls < 10, "flit never departed");
        }
        assert_eq!(stalls, wake);
        assert_eq!(p.counters.wake_stall_cycles, wake as u64);
        assert_eq!(p.counters.cycles_waking, wake as u64);
        // All five idle lanes slept; only East had to wake.
        assert_eq!(p.counters.sleep_entries, 5);
    }

    #[test]
    fn empty_vc_sleeps_while_sibling_carries_a_worm() {
        // The per-VC gating granularity the refactor exists for: VC 1
        // of the East port sleeps through a worm crossing on VC 0.
        let cfg = SleepConfig {
            policy: GatingPolicy::IdleThreshold(2),
            wake_latency: 1,
        };
        let mut r = Router::with_gating(0, 8, 2, Some(cfg));
        let mut p = Ports::new(2);
        // A long worm on VC 0 keeps the port busy…
        r.accept(Direction::West, vflit(1, 0, true, false));
        for _ in 0..6 {
            r.accept(Direction::West, vflit(1, 0, false, false));
        }
        let route = |_: &Flit| RouteTarget {
            out: Direction::East,
            vc: 0,
        };
        for _ in 0..6 {
            let _ = r.step(route, |_, _| true, p.lane());
        }
        let east = Direction::East.index() * 2;
        assert_eq!(
            p.fsm[east].state(),
            SleepState::Active,
            "the worm's lane stays awake"
        );
        assert_eq!(
            p.fsm[east + 1].state(),
            SleepState::Asleep,
            "the empty sibling VC lane sleeps"
        );
        assert!(p.counters.cycles_busy >= 6);
        assert!(p.counters.cycles_asleep > 0);
    }

    #[test]
    fn ungated_router_has_zero_counters() {
        let mut r = Router::new(0, 4, 1);
        let mut p = Ports::new(1);
        for _ in 0..10 {
            let _ = r.step(to(Direction::East), |_, _| true, p.lane());
        }
        assert_eq!(p.counters, GatingCounters::default());
        assert_eq!(p.fsm[Direction::East.index()].state(), SleepState::Active);
    }

    #[test]
    fn never_policy_matches_ungated_behaviour_with_accounting() {
        let mut r = Router::with_gating(
            0,
            4,
            1,
            Some(SleepConfig {
                policy: GatingPolicy::Never,
                wake_latency: 1,
            }),
        );
        let mut p = Ports::new(1);
        for _ in 0..5 {
            let _ = r.step(to(Direction::East), |_, _| true, p.lane());
        }
        r.accept(Direction::West, flit(1, true, true));
        let out = r.step(to(Direction::East), |_, _| true, p.lane());
        assert_eq!(out.departures().count(), 1, "Never gating never stalls");
        assert_eq!(p.counters.sleep_entries, 0);
        assert_eq!(p.counters.cycles_busy, 1);
        // 5 idle cycles × 5 lanes + 4 idle lanes on the send cycle.
        assert_eq!(p.counters.cycles_idle_awake, 29);
    }

    #[test]
    fn step_and_step_fast_agree() {
        // `step` is a thin wrapper over `step_fast`; this guards the
        // wrapper plumbing (departure collection, outcome fields)
        // across VC counts and gating configs.
        for vcs in [1usize, 2, 4] {
            for gating in [
                None,
                Some(SleepConfig {
                    policy: GatingPolicy::IdleThreshold(2),
                    wake_latency: 2,
                }),
            ] {
                let mut slow = Router::with_gating(0, 4, vcs, gating);
                let mut fast = Router::with_gating(0, 4, vcs, gating);
                let mut sp = Ports::new(vcs);
                let mut fp = Ports::new(vcs);
                let mut x = 0x9e3779b97f4a7c15u64;
                let mut rnd = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                let route = move |f: &Flit| RouteTarget {
                    out: Direction::from_index(f.dst % 5),
                    vc: (f.packet_id % vcs as u64) as u8,
                };
                let mut pkt = 0u64;
                for cycle in 0..300u64 {
                    for _ in 0..(rnd() % 3) {
                        let port = Direction::from_index((rnd() % 5) as usize);
                        let vc = (rnd() % vcs as u64) as u8;
                        let dst = (rnd() % 5) as usize;
                        let len = 1 + (rnd() % 3) as usize;
                        if slow.occupancy(port, vc as usize) + len <= 4 {
                            pkt += 1;
                            for k in 0..len {
                                let f = Flit {
                                    packet_id: pkt,
                                    src: 0,
                                    dst,
                                    vc,
                                    is_head: k == 0,
                                    is_tail: k + 1 == len,
                                    injected_at: cycle,
                                };
                                slow.accept(port, f);
                                fast.accept(port, f);
                            }
                        }
                    }
                    let ready_mask = rnd();
                    let ready = move |d: Direction, vc: usize| {
                        ready_mask & (1 << (d.index() * 8 + vc)) != 0
                    };
                    let a = slow.step(route, ready, sp.lane());
                    let mut fast_deps: Vec<Departure> = Vec::new();
                    let b = fast.step_fast(route, ready, fp.lane(), |d| fast_deps.push(d));
                    let slow_deps: Vec<Departure> = a.departures().collect();
                    assert_eq!(slow_deps, fast_deps, "cycle {cycle} vcs {vcs} {gating:?}");
                    assert_eq!(a.arbitrations, b.arbitrations, "cycle {cycle}");
                    assert_eq!(sp.idle, fp.idle, "cycle {cycle}");
                    assert_eq!(sp.idle_ended, fp.idle_ended, "cycle {cycle}");
                    assert_eq!(sp.fsm, fp.fsm, "cycle {cycle}");
                    assert_eq!(sp.counters, fp.counters, "cycle {cycle}");
                    assert_eq!(slow.total_occupancy(), fast.total_occupancy());
                }
            }
        }
    }
}
