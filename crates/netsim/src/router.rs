//! Input-buffered wormhole router.
//!
//! One router has five input FIFOs (one per [`Direction`]) and a 5×5
//! crossbar — the paper's evaluation object. Wormhole switching: a head
//! flit claims its output port after winning round-robin arbitration;
//! body flits follow; the tail flit releases the port. Backpressure is a
//! simple on/off credit: a flit only advances when the downstream buffer
//! has room.

use crate::topology::Direction;
use crate::traffic::Flit;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Per-port output state: which input currently owns the port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
enum PortOwner {
    /// Free for a new head flit.
    #[default]
    Free,
    /// Allocated to the given input port until a tail flit passes.
    Owned(usize),
}

/// One wormhole router.
#[derive(Debug, Clone)]
pub struct Router {
    /// This router's id in the mesh.
    pub id: usize,
    buffers: [VecDeque<Flit>; 5],
    owners: [PortOwner; 5],
    rr_next: [usize; 5],
    buffer_depth: usize,
    /// Cycles each output port has been continuously idle.
    idle_run: [u64; 5],
}

/// A flit departing the router this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Departure {
    /// Output port it leaves through.
    pub output: Direction,
    /// The flit itself.
    pub flit: Flit,
}

impl Router {
    /// Creates an empty router.
    pub fn new(id: usize, buffer_depth: usize) -> Self {
        Router {
            id,
            buffers: Default::default(),
            owners: Default::default(),
            rr_next: [0; 5],
            buffer_depth,
            idle_run: [0; 5],
        }
    }

    /// Whether the input buffer for `port` can accept a flit.
    pub fn can_accept(&self, port: Direction) -> bool {
        self.buffers[port.index()].len() < self.buffer_depth
    }

    /// Pushes an arriving flit into an input buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full (callers must check
    /// [`Router::can_accept`] — the link-level credit).
    pub fn accept(&mut self, port: Direction, flit: Flit) {
        assert!(
            self.can_accept(port),
            "buffer overflow at router {}",
            self.id
        );
        self.buffers[port.index()].push_back(flit);
    }

    /// Buffer occupancy of an input port.
    pub fn occupancy(&self, port: Direction) -> usize {
        self.buffers[port.index()].len()
    }

    /// Total buffered flits.
    pub fn total_occupancy(&self) -> usize {
        self.buffers.iter().map(|b| b.len()).sum()
    }

    /// Current idle-run length of an output port (cycles since it last
    /// carried a flit).
    pub fn idle_run(&self, port: Direction) -> u64 {
        self.idle_run[port.index()]
    }

    /// One switch-allocation + traversal cycle.
    ///
    /// `route` maps a head flit to its output direction;
    /// `downstream_ready` reports whether the next-hop buffer (or the
    /// ejection port) can accept a flit on the given output.
    ///
    /// Returns the flits that leave this cycle (at most one per output)
    /// and the number of arbitrations performed. `idle_ended[p]` is the
    /// length of the idle run that ended on port `p` this cycle (0 if
    /// the port stayed idle or was already busy).
    pub fn step(
        &mut self,
        route: impl Fn(&Flit) -> Direction,
        downstream_ready: impl Fn(Direction) -> bool,
    ) -> StepOutcome {
        let mut departures = Vec::new();
        let mut arbitrations = 0u64;
        let mut idle_ended = [0u64; 5];

        for out in Direction::ALL {
            let oi = out.index();
            let mut sent = false;

            match self.owners[oi] {
                PortOwner::Owned(input) => {
                    // Continue the owning packet if a flit is ready.
                    if let Some(head) = self.buffers[input].front() {
                        if route(head) == out && downstream_ready(out) {
                            let flit = self.buffers[input].pop_front().expect("front exists");
                            if flit.is_tail {
                                self.owners[oi] = PortOwner::Free;
                            }
                            departures.push(Departure { output: out, flit });
                            sent = true;
                        }
                    }
                }
                PortOwner::Free => {
                    // Round-robin over inputs with a head flit for us.
                    arbitrations += 1;
                    let start = self.rr_next[oi];
                    for k in 0..5 {
                        let input = (start + k) % 5;
                        let Some(head) = self.buffers[input].front() else {
                            continue;
                        };
                        if !head.is_head || route(head) != out || !downstream_ready(out) {
                            continue;
                        }
                        let flit = self.buffers[input].pop_front().expect("front exists");
                        if !flit.is_tail {
                            self.owners[oi] = PortOwner::Owned(input);
                        }
                        self.rr_next[oi] = (input + 1) % 5;
                        departures.push(Departure { output: out, flit });
                        sent = true;
                        break;
                    }
                }
            }

            // Idle-run bookkeeping for the power model.
            if sent {
                idle_ended[oi] = self.idle_run[oi];
                self.idle_run[oi] = 0;
            } else {
                self.idle_run[oi] += 1;
            }
        }

        StepOutcome {
            departures,
            arbitrations,
            idle_ended,
        }
    }

    /// Drains the idle runs at end of simulation (each open run is
    /// reported so histograms include trailing idleness).
    pub fn drain_idle_runs(&mut self) -> [u64; 5] {
        let runs = self.idle_run;
        self.idle_run = [0; 5];
        runs
    }
}

/// What happened in one router cycle.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Flits leaving this cycle.
    pub departures: Vec<Departure>,
    /// Arbitration events (for the arbiter energy model).
    pub arbitrations: u64,
    /// Idle-interval lengths that ended this cycle, per output index.
    pub idle_ended: [u64; 5],
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(id: u64, head: bool, tail: bool) -> Flit {
        Flit {
            packet_id: id,
            src: 0,
            dst: 1,
            is_head: head,
            is_tail: tail,
            injected_at: 0,
        }
    }

    #[test]
    fn single_flit_passes_through() {
        let mut r = Router::new(0, 4);
        r.accept(Direction::West, flit(1, true, true));
        let out = r.step(|_| Direction::East, |_| true);
        assert_eq!(out.departures.len(), 1);
        assert_eq!(out.departures[0].output, Direction::East);
        assert_eq!(r.total_occupancy(), 0);
    }

    #[test]
    fn wormhole_holds_port_for_whole_packet() {
        let mut r = Router::new(0, 8);
        r.accept(Direction::West, flit(1, true, false));
        r.accept(Direction::West, flit(1, false, false));
        r.accept(Direction::West, flit(1, false, true));
        // A competing head on another input wants the same output.
        r.accept(Direction::North, flit(2, true, true));

        let mut winners = Vec::new();
        for _ in 0..4 {
            let out = r.step(|_| Direction::East, |_| true);
            for d in out.departures {
                winners.push(d.flit.packet_id);
            }
        }
        // All four flits cross, and packet 1's three flits stay
        // contiguous (the port is held until the tail) — which input
        // wins the initial arbitration is round-robin state, not part of
        // the contract.
        assert_eq!(winners.len(), 4);
        let first_one = winners.iter().position(|&p| p == 1).expect("packet 1 sent");
        assert_eq!(&winners[first_one..first_one + 3], &[1, 1, 1]);
    }

    #[test]
    fn backpressure_blocks() {
        let mut r = Router::new(0, 4);
        r.accept(Direction::West, flit(1, true, true));
        let out = r.step(|_| Direction::East, |_| false);
        assert!(out.departures.is_empty());
        assert_eq!(r.total_occupancy(), 1);
    }

    #[test]
    fn buffer_overflow_panics() {
        let mut r = Router::new(0, 1);
        r.accept(Direction::West, flit(1, true, true));
        assert!(!r.can_accept(Direction::West));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.accept(Direction::West, flit(2, true, true));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn round_robin_rotates_between_competitors() {
        let mut r = Router::new(0, 4);
        // Two single-flit packets per input, both to East.
        for _ in 0..2 {
            r.accept(Direction::West, flit(10, true, true));
            r.accept(Direction::North, flit(20, true, true));
        }
        let mut order = Vec::new();
        for _ in 0..4 {
            let out = r.step(|_| Direction::East, |_| true);
            for d in out.departures {
                order.push(d.flit.packet_id);
            }
        }
        assert_eq!(order.len(), 4);
        // Alternation: no input sends twice in a row.
        assert_ne!(order[0], order[1]);
        assert_ne!(order[1], order[2]);
    }

    #[test]
    fn idle_runs_are_tracked() {
        let mut r = Router::new(0, 4);
        // Three idle cycles on every port.
        for _ in 0..3 {
            let _ = r.step(|_| Direction::East, |_| true);
        }
        r.accept(Direction::West, flit(1, true, true));
        let out = r.step(|_| Direction::East, |_| true);
        // East's 3-cycle idle run ended when the flit crossed.
        assert_eq!(out.idle_ended[Direction::East.index()], 3);
        assert_eq!(r.idle_run(Direction::East), 0);
        assert!(r.idle_run(Direction::North) >= 4);
    }
}
