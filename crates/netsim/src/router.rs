//! Input-buffered wormhole router.
//!
//! One router has five input FIFOs (one per [`Direction`]) and a 5×5
//! crossbar — the paper's evaluation object. Wormhole switching: a head
//! flit claims its output port after winning round-robin arbitration;
//! body flits follow; the tail flit releases the port. Backpressure is a
//! simple on/off credit: a flit only advances when the downstream buffer
//! has room.
//!
//! Each output port additionally carries a [`SleepFsm`] when in-loop
//! power gating is enabled: a sleeping port cannot carry flits until it
//! has waited out its wake latency, and the router accumulates the
//! [`GatingCounters`] that price the policy.
//!
//! The input FIFOs live in one flat ring-buffer allocation and
//! [`Router::step`] performs no heap allocation — the hot loop of the
//! whole simulator.

use crate::sleep::{SleepConfig, SleepFsm, SleepState};
use crate::topology::Direction;
use crate::traffic::Flit;
use lnoc_power::gating::GatingCounters;
use serde::{Deserialize, Serialize};

/// Per-port output state: which input currently owns the port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
enum PortOwner {
    /// Free for a new head flit.
    #[default]
    Free,
    /// Allocated to the given input port until a tail flit passes.
    Owned(usize),
}

/// All five input FIFOs in one flat allocation: port `p` owns the slot
/// range `p*depth..(p+1)*depth` as a ring buffer.
#[derive(Debug, Clone)]
struct PortBuffers {
    slots: Box<[Flit]>,
    head: [u32; 5],
    len: [u32; 5],
    depth: u32,
}

impl PortBuffers {
    fn new(depth: usize) -> Self {
        let filler = Flit {
            packet_id: u64::MAX,
            src: 0,
            dst: 0,
            is_head: false,
            is_tail: false,
            injected_at: 0,
        };
        PortBuffers {
            slots: vec![filler; 5 * depth].into_boxed_slice(),
            head: [0; 5],
            len: [0; 5],
            depth: depth as u32,
        }
    }

    fn len(&self, port: usize) -> usize {
        self.len[port] as usize
    }

    fn is_full(&self, port: usize) -> bool {
        self.len[port] == self.depth
    }

    fn front(&self, port: usize) -> Option<&Flit> {
        (self.len[port] > 0)
            .then(|| &self.slots[port * self.depth as usize + self.head[port] as usize])
    }

    fn push_back(&mut self, port: usize, flit: Flit) {
        debug_assert!(!self.is_full(port));
        let tail = (self.head[port] + self.len[port]) % self.depth;
        self.slots[port * self.depth as usize + tail as usize] = flit;
        self.len[port] += 1;
    }

    fn pop_front(&mut self, port: usize) -> Option<Flit> {
        if self.len[port] == 0 {
            return None;
        }
        let flit = self.slots[port * self.depth as usize + self.head[port] as usize];
        self.head[port] = (self.head[port] + 1) % self.depth;
        self.len[port] -= 1;
        Some(flit)
    }
}

/// One wormhole router.
#[derive(Debug, Clone)]
pub struct Router {
    /// This router's id in the mesh.
    pub id: usize,
    buffers: PortBuffers,
    owners: [PortOwner; 5],
    rr_next: [usize; 5],
    /// Cycles each output port has been continuously idle.
    idle_run: [u64; 5],
    sleep: [SleepFsm; 5],
    sleep_cfg: Option<SleepConfig>,
    counters: GatingCounters,
}

/// A flit departing the router this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Departure {
    /// Output port it leaves through.
    pub output: Direction,
    /// The flit itself.
    pub flit: Flit,
}

impl Router {
    /// Creates an empty, ungated router.
    pub fn new(id: usize, buffer_depth: usize) -> Self {
        Router {
            id,
            buffers: PortBuffers::new(buffer_depth),
            owners: Default::default(),
            rr_next: [0; 5],
            idle_run: [0; 5],
            sleep: Default::default(),
            sleep_cfg: None,
            counters: GatingCounters::default(),
        }
    }

    /// Creates a router whose output ports run the given sleep FSM
    /// configuration (`None` disables in-loop gating).
    pub fn with_gating(id: usize, buffer_depth: usize, sleep_cfg: Option<SleepConfig>) -> Self {
        Router {
            sleep_cfg,
            ..Router::new(id, buffer_depth)
        }
    }

    /// Whether the input buffer for `port` can accept a flit.
    pub fn can_accept(&self, port: Direction) -> bool {
        !self.buffers.is_full(port.index())
    }

    /// Pushes an arriving flit into an input buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full (callers must check
    /// [`Router::can_accept`] — the link-level credit).
    pub fn accept(&mut self, port: Direction, flit: Flit) {
        assert!(
            self.can_accept(port),
            "buffer overflow at router {}",
            self.id
        );
        self.buffers.push_back(port.index(), flit);
    }

    /// Buffer occupancy of an input port.
    pub fn occupancy(&self, port: Direction) -> usize {
        self.buffers.len(port.index())
    }

    /// Total buffered flits.
    pub fn total_occupancy(&self) -> usize {
        (0..5).map(|p| self.buffers.len(p)).sum()
    }

    /// Current idle-run length of an output port (cycles since it last
    /// carried a flit).
    pub fn idle_run(&self, port: Direction) -> u64 {
        self.idle_run[port.index()]
    }

    /// Sleep state of an output port.
    pub fn sleep_state(&self, port: Direction) -> SleepState {
        self.sleep[port.index()].state()
    }

    /// The gating counters accumulated so far (all five ports summed).
    pub fn gating_counters(&self) -> GatingCounters {
        self.counters
    }

    /// Resets the sleep FSMs and gating counters (measurement-window
    /// start, paired with [`Router::drain_idle_runs`]).
    pub fn reset_gating(&mut self) {
        for fsm in &mut self.sleep {
            fsm.reset();
        }
        self.counters = GatingCounters::default();
    }

    /// The input whose front flit is ready for `out` this cycle, without
    /// popping: the owning input while the port is allocated, otherwise
    /// the round-robin arbitration winner among waiting head flits.
    /// Inputs flagged in `used` already sent a flit this cycle and are
    /// skipped — an input buffer has one crossbar line, so it can feed
    /// at most one output per cycle.
    fn candidate_input(
        &self,
        out: Direction,
        route: impl Fn(&Flit) -> Direction,
        used: &[bool; 5],
    ) -> Option<usize> {
        let oi = out.index();
        match self.owners[oi] {
            PortOwner::Owned(input) => self
                .buffers
                .front(input)
                .filter(|f| !used[input] && route(f) == out)
                .map(|_| input),
            PortOwner::Free => {
                let start = self.rr_next[oi];
                (0..5).map(|k| (start + k) % 5).find(|&input| {
                    !used[input]
                        && self
                            .buffers
                            .front(input)
                            .is_some_and(|f| f.is_head && route(f) == out)
                })
            }
        }
    }

    /// One switch-allocation + traversal cycle.
    ///
    /// `route` maps a flit to its output direction; `downstream_ready`
    /// reports whether the next-hop buffer (or the ejection port) can
    /// accept a flit on the given output — callers must evaluate it
    /// against a cycle-start snapshot so results are independent of
    /// router iteration order.
    ///
    /// Returns the flits that leave this cycle (at most one per output)
    /// and the number of arbitrations performed. `idle_ended[p]` is the
    /// length of the idle run that ended on port `p` this cycle (0 if
    /// the port stayed idle or was already busy).
    pub fn step(
        &mut self,
        route: impl Fn(&Flit) -> Direction,
        downstream_ready: impl Fn(Direction) -> bool,
    ) -> StepOutcome {
        let mut departures = [None; 5];
        let mut arbitrations = 0u64;
        let mut idle_ended = [0u64; 5];
        // Inputs that already sent a flit this cycle: one crossbar line
        // per input buffer, so one read per input per cycle.
        let mut input_used = [false; 5];

        for out in Direction::ALL {
            let oi = out.index();

            let candidate = self.candidate_input(out, &route, &input_used);
            // A flit "wants" the port only when it could actually move:
            // a sleeping port stays in standby while downstream is
            // blocked instead of waking into backpressure.
            let wants = candidate.is_some() && downstream_ready(out);

            let can_transmit = match (self.sleep_cfg, &mut self.sleep[oi]) {
                (Some(cfg), fsm) => fsm.gate(wants, cfg.wake_latency),
                (None, _) => true,
            };

            if can_transmit && matches!(self.owners[oi], PortOwner::Free) {
                arbitrations += 1;
            }

            let mut sent = false;
            if can_transmit && wants {
                let input = candidate.expect("wants implies candidate");
                let flit = self.buffers.pop_front(input).expect("front exists");
                match self.owners[oi] {
                    PortOwner::Free => {
                        if !flit.is_tail {
                            self.owners[oi] = PortOwner::Owned(input);
                        }
                        self.rr_next[oi] = (input + 1) % 5;
                    }
                    PortOwner::Owned(_) => {
                        if flit.is_tail {
                            self.owners[oi] = PortOwner::Free;
                        }
                    }
                }
                departures[oi] = Some(Departure { output: out, flit });
                input_used[input] = true;
                sent = true;
            }

            // Idle-run bookkeeping for the power model.
            if sent {
                idle_ended[oi] = self.idle_run[oi];
                self.idle_run[oi] = 0;
            } else {
                self.idle_run[oi] += 1;
            }

            if let Some(cfg) = self.sleep_cfg {
                let stalled = wants && !sent;
                // Only Immediate's after-send entry needs to know
                // whether another flit is already waiting; skip the
                // rescan otherwise.
                // The just-used input is free again next cycle, so the
                // lookahead ignores this cycle's usage flags.
                let wants_after = sent
                    && cfg.threshold() == Some(0)
                    && downstream_ready(out)
                    && self.candidate_input(out, &route, &[false; 5]).is_some();
                let run = if sent {
                    idle_ended[oi]
                } else {
                    self.idle_run[oi]
                };
                self.sleep[oi].settle(sent, stalled, wants_after, run, &cfg, &mut self.counters);
            }
        }

        StepOutcome {
            departures,
            arbitrations,
            idle_ended,
        }
    }

    /// Drains the idle runs at end of simulation (each open run is
    /// reported so histograms include trailing idleness).
    pub fn drain_idle_runs(&mut self) -> [u64; 5] {
        let runs = self.idle_run;
        self.idle_run = [0; 5];
        runs
    }
}

/// What happened in one router cycle.
#[derive(Debug, Clone, Copy)]
pub struct StepOutcome {
    /// Flit leaving each output this cycle (indexed by
    /// [`Direction::index`]).
    pub departures: [Option<Departure>; 5],
    /// Arbitration events (for the arbiter energy model).
    pub arbitrations: u64,
    /// Idle-interval lengths that ended this cycle, per output index.
    pub idle_ended: [u64; 5],
}

impl StepOutcome {
    /// Iterates the departures that actually happened.
    pub fn departures(&self) -> impl Iterator<Item = Departure> + '_ {
        self.departures.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnoc_power::gating::GatingPolicy;

    fn flit(id: u64, head: bool, tail: bool) -> Flit {
        Flit {
            packet_id: id,
            src: 0,
            dst: 1,
            is_head: head,
            is_tail: tail,
            injected_at: 0,
        }
    }

    #[test]
    fn single_flit_passes_through() {
        let mut r = Router::new(0, 4);
        r.accept(Direction::West, flit(1, true, true));
        let out = r.step(|_| Direction::East, |_| true);
        let deps: Vec<_> = out.departures().collect();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].output, Direction::East);
        assert_eq!(r.total_occupancy(), 0);
    }

    #[test]
    fn wormhole_holds_port_for_whole_packet() {
        let mut r = Router::new(0, 8);
        r.accept(Direction::West, flit(1, true, false));
        r.accept(Direction::West, flit(1, false, false));
        r.accept(Direction::West, flit(1, false, true));
        // A competing head on another input wants the same output.
        r.accept(Direction::North, flit(2, true, true));

        let mut winners = Vec::new();
        for _ in 0..4 {
            let out = r.step(|_| Direction::East, |_| true);
            for d in out.departures() {
                winners.push(d.flit.packet_id);
            }
        }
        // All four flits cross, and packet 1's three flits stay
        // contiguous (the port is held until the tail) — which input
        // wins the initial arbitration is round-robin state, not part of
        // the contract.
        assert_eq!(winners.len(), 4);
        let first_one = winners.iter().position(|&p| p == 1).expect("packet 1 sent");
        assert_eq!(&winners[first_one..first_one + 3], &[1, 1, 1]);
    }

    #[test]
    fn backpressure_blocks() {
        let mut r = Router::new(0, 4);
        r.accept(Direction::West, flit(1, true, true));
        let out = r.step(|_| Direction::East, |_| false);
        assert_eq!(out.departures().count(), 0);
        assert_eq!(r.total_occupancy(), 1);
    }

    #[test]
    fn buffer_overflow_panics() {
        let mut r = Router::new(0, 1);
        r.accept(Direction::West, flit(1, true, true));
        assert!(!r.can_accept(Direction::West));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.accept(Direction::West, flit(2, true, true));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn ring_buffer_wraps_cleanly() {
        // Push/pop more flits than the depth so heads wrap around.
        let mut r = Router::new(0, 3);
        for round in 0..5u64 {
            r.accept(Direction::West, flit(round, true, true));
            r.accept(Direction::West, flit(round + 100, true, true));
            let f1 = r.step(|_| Direction::East, |_| true);
            let f2 = r.step(|_| Direction::East, |_| true);
            assert_eq!(f1.departures().next().unwrap().flit.packet_id, round);
            assert_eq!(f2.departures().next().unwrap().flit.packet_id, round + 100);
        }
        assert_eq!(r.total_occupancy(), 0);
    }

    #[test]
    fn one_input_feeds_at_most_one_output_per_cycle() {
        // Input West holds [tail of packet 1 → East, head of packet 2 →
        // Local]. A single input buffer has one crossbar line, so the
        // two flits must leave on different cycles even though both
        // outputs are free.
        let mut r = Router::new(0, 4);
        r.accept(Direction::West, flit(1, true, true));
        r.accept(Direction::West, flit(2, true, true));
        let route = |f: &Flit| {
            if f.packet_id == 1 {
                Direction::East
            } else {
                Direction::Local
            }
        };
        let first = r.step(route, |_| true);
        assert_eq!(first.departures().count(), 1, "one read per input");
        assert_eq!(first.departures().next().unwrap().output, Direction::East);
        let second = r.step(route, |_| true);
        assert_eq!(second.departures().next().unwrap().output, Direction::Local);
    }

    #[test]
    fn round_robin_rotates_between_competitors() {
        let mut r = Router::new(0, 4);
        // Two single-flit packets per input, both to East.
        for _ in 0..2 {
            r.accept(Direction::West, flit(10, true, true));
            r.accept(Direction::North, flit(20, true, true));
        }
        let mut order = Vec::new();
        for _ in 0..4 {
            let out = r.step(|_| Direction::East, |_| true);
            for d in out.departures() {
                order.push(d.flit.packet_id);
            }
        }
        assert_eq!(order.len(), 4);
        // Alternation: no input sends twice in a row.
        assert_ne!(order[0], order[1]);
        assert_ne!(order[1], order[2]);
    }

    #[test]
    fn idle_runs_are_tracked() {
        let mut r = Router::new(0, 4);
        // Three idle cycles on every port.
        for _ in 0..3 {
            let _ = r.step(|_| Direction::East, |_| true);
        }
        r.accept(Direction::West, flit(1, true, true));
        let out = r.step(|_| Direction::East, |_| true);
        // East's 3-cycle idle run ended when the flit crossed.
        assert_eq!(out.idle_ended[Direction::East.index()], 3);
        assert_eq!(r.idle_run(Direction::East), 0);
        assert!(r.idle_run(Direction::North) >= 4);
    }

    #[test]
    fn sleeping_port_stalls_flit_by_wake_latency() {
        let wake = 3u32;
        let mut r = Router::with_gating(
            0,
            4,
            Some(SleepConfig {
                policy: GatingPolicy::IdleThreshold(2),
                wake_latency: wake,
            }),
        );
        // Idle past the threshold: the port sleeps.
        for _ in 0..4 {
            let _ = r.step(|_| Direction::East, |_| true);
        }
        assert_eq!(r.sleep_state(Direction::East), SleepState::Asleep);

        // A flit arrives; it must wait out exactly `wake` cycles.
        r.accept(Direction::West, flit(1, true, true));
        let mut stalls = 0;
        loop {
            let out = r.step(|_| Direction::East, |_| true);
            if out.departures().count() == 1 {
                break;
            }
            stalls += 1;
            assert!(stalls < 10, "flit never departed");
        }
        assert_eq!(stalls, wake);
        let k = r.gating_counters();
        assert_eq!(k.wake_stall_cycles, wake as u64);
        assert_eq!(k.cycles_waking, wake as u64);
        // All five idle ports slept; only East had to wake.
        assert_eq!(k.sleep_entries, 5);
    }

    #[test]
    fn ungated_router_has_zero_counters() {
        let mut r = Router::new(0, 4);
        for _ in 0..10 {
            let _ = r.step(|_| Direction::East, |_| true);
        }
        assert_eq!(r.gating_counters(), GatingCounters::default());
        assert_eq!(r.sleep_state(Direction::East), SleepState::Active);
    }

    #[test]
    fn never_policy_matches_ungated_behaviour_with_accounting() {
        let mut r = Router::with_gating(
            0,
            4,
            Some(SleepConfig {
                policy: GatingPolicy::Never,
                wake_latency: 1,
            }),
        );
        for _ in 0..5 {
            let _ = r.step(|_| Direction::East, |_| true);
        }
        r.accept(Direction::West, flit(1, true, true));
        let out = r.step(|_| Direction::East, |_| true);
        assert_eq!(out.departures().count(), 1, "Never gating never stalls");
        let k = r.gating_counters();
        assert_eq!(k.sleep_entries, 0);
        assert_eq!(k.cycles_busy, 1);
        // 5 idle cycles × 5 ports + 4 idle ports on the send cycle.
        assert_eq!(k.cycles_idle_awake, 29);
    }
}
