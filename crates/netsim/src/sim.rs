//! The cycle loop: injection, router stepping, link transfer, ejection.

use crate::router::Router;
use crate::stats::NetworkStats;
use crate::topology::{Direction, Mesh};
use crate::traffic::{Flit, TrafficPattern};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Mesh width.
    pub width: usize,
    /// Mesh height.
    pub height: usize,
    /// Packet injection probability per node per cycle.
    pub injection_rate: f64,
    /// Destination pattern.
    pub pattern: TrafficPattern,
    /// Flits per packet.
    pub packet_len_flits: usize,
    /// Input buffer depth in flits.
    pub buffer_depth: usize,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            width: 4,
            height: 4,
            injection_rate: 0.05,
            pattern: TrafficPattern::UniformRandom,
            packet_len_flits: 4,
            buffer_depth: 4,
            seed: 1,
        }
    }
}

/// A running mesh simulation.
#[derive(Debug)]
pub struct Simulation {
    cfg: MeshConfig,
    mesh: Mesh,
    routers: Vec<Router>,
    /// Source queues: packets wait here until the local port accepts.
    source_queues: Vec<VecDeque<Flit>>,
    rng: StdRng,
    next_packet_id: u64,
    cycle: u64,
}

impl Simulation {
    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (empty mesh, zero-length
    /// packets, zero buffers).
    pub fn new(cfg: MeshConfig) -> Self {
        assert!(
            cfg.width >= 2 && cfg.height >= 2,
            "mesh must be at least 2×2"
        );
        assert!(cfg.packet_len_flits >= 1, "packets need at least one flit");
        assert!(cfg.buffer_depth >= 1, "buffers need at least one slot");
        assert!(
            (0.0..=1.0).contains(&cfg.injection_rate),
            "injection rate is a probability"
        );
        let mesh = Mesh {
            width: cfg.width,
            height: cfg.height,
        };
        Simulation {
            mesh,
            routers: (0..mesh.len())
                .map(|id| Router::new(id, cfg.buffer_depth))
                .collect(),
            source_queues: vec![VecDeque::new(); mesh.len()],
            rng: StdRng::seed_from_u64(cfg.seed),
            next_packet_id: 0,
            cycle: 0,
            cfg,
        }
    }

    /// The mesh being simulated.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Runs `warmup` cycles unmeasured, then `measure` cycles with
    /// statistics collection, and returns the stats.
    pub fn run(&mut self, warmup: u64, measure: u64) -> NetworkStats {
        let mut stats = NetworkStats::new(self.mesh.len(), 4096);
        for _ in 0..warmup {
            self.step(None);
        }
        // Reset idle runs so warmup idleness does not pollute histograms.
        for r in &mut self.routers {
            let _ = r.drain_idle_runs();
        }
        for _ in 0..measure {
            self.step(Some(&mut stats));
        }
        stats.measured_cycles = measure;
        // Close out open idle runs.
        for (rid, r) in self.routers.iter_mut().enumerate() {
            for (p, run) in r.drain_idle_runs().into_iter().enumerate() {
                stats.idle_histograms[rid][p].record(run);
            }
        }
        stats
    }

    /// Advances one cycle.
    fn step(&mut self, mut stats: Option<&mut NetworkStats>) {
        self.cycle += 1;
        let n = self.mesh.len();

        // 1. Injection: generate new packets into source queues.
        for src in 0..n {
            if self.rng.gen_bool(self.cfg.injection_rate) {
                if let Some(dst) = self.cfg.pattern.destination(src, &self.mesh, &mut self.rng) {
                    let id = self.next_packet_id;
                    self.next_packet_id += 1;
                    let len = self.cfg.packet_len_flits;
                    for k in 0..len {
                        self.source_queues[src].push_back(Flit {
                            packet_id: id,
                            src,
                            dst,
                            is_head: k == 0,
                            is_tail: k + 1 == len,
                            injected_at: self.cycle,
                        });
                    }
                    if let Some(s) = stats.as_deref_mut() {
                        s.packets_injected += 1;
                    }
                }
            }
            // Move waiting flits into the local input buffer.
            while !self.source_queues[src].is_empty()
                && self.routers[src].can_accept(Direction::Local)
            {
                let flit = self.source_queues[src]
                    .pop_front()
                    .expect("non-empty checked");
                self.routers[src].accept(Direction::Local, flit);
                if let Some(s) = stats.as_deref_mut() {
                    s.router_activity[src].buffer_writes += 1;
                }
            }
        }

        // 2. Router cycles. Collect departures first (reads), then apply
        // them (writes) so a flit moves one hop per cycle.
        let mesh = self.mesh;
        let mut transfers: Vec<(usize, Direction, Flit)> = Vec::new();
        for rid in 0..n {
            // Downstream readiness snapshot.
            let ready = |out: Direction| -> bool {
                match out {
                    Direction::Local => true, // ejection always sinks
                    d => match mesh.neighbor(rid, d) {
                        Some(next) => self.routers[next].can_accept(d.opposite()),
                        None => false,
                    },
                }
            };
            let route = |flit: &Flit| mesh.route_xy(rid, flit.dst);
            let outcome = {
                let ready_vec: Vec<bool> = Direction::ALL.iter().map(|&d| ready(d)).collect();
                self.routers[rid].step(route, |d| ready_vec[d.index()])
            };

            if let Some(s) = stats.as_deref_mut() {
                s.router_activity[rid].cycles += 1;
                s.router_activity[rid].arbitrations += outcome.arbitrations;
                for (p, run) in outcome.idle_ended.into_iter().enumerate() {
                    s.idle_histograms[rid][p].record(run);
                }
            }

            for dep in outcome.departures {
                if let Some(s) = stats.as_deref_mut() {
                    s.router_activity[rid].crossbar_traversals += 1;
                    s.router_activity[rid].buffer_reads += 1;
                    if dep.output != Direction::Local {
                        s.router_activity[rid].link_traversals += 1;
                    }
                }
                transfers.push((rid, dep.output, dep.flit));
            }
        }

        // 3. Apply transfers.
        for (rid, out, flit) in transfers {
            match out {
                Direction::Local => {
                    if let Some(s) = stats.as_deref_mut() {
                        s.flits_delivered += 1;
                        if flit.is_tail {
                            s.packets_delivered += 1;
                            let latency = self.cycle - flit.injected_at;
                            s.latency_sum += latency;
                            s.latency_max = s.latency_max.max(latency);
                        }
                    }
                }
                d => {
                    let next = mesh
                        .neighbor(rid, d)
                        .expect("departures only target existing neighbours");
                    self.routers[next].accept(d.opposite(), flit);
                    if let Some(s) = stats.as_deref_mut() {
                        s.router_activity[next].buffer_writes += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> MeshConfig {
        MeshConfig {
            width: 4,
            height: 4,
            injection_rate: 0.05,
            pattern: TrafficPattern::UniformRandom,
            packet_len_flits: 4,
            buffer_depth: 4,
            seed: 42,
        }
    }

    #[test]
    fn packets_flow_and_are_conserved() {
        // Measure from cycle 0: packets straddling a warmup/measure
        // boundary would otherwise split their flit counts across the
        // unmeasured and measured windows and break exact conservation.
        let mut sim = Simulation::new(base_cfg());
        let stats = sim.run(0, 3500);
        assert!(stats.packets_delivered > 100, "{}", stats.packets_delivered);
        // Flits delivered = packets × packet length (within in-flight
        // slack of injected − delivered).
        assert!(
            stats.flits_delivered >= stats.packets_delivered * 4,
            "every delivered packet contributed all its flits"
        );
        assert!(stats.packets_injected >= stats.packets_delivered);
    }

    #[test]
    fn latency_at_least_hop_count() {
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: 0.01,
            ..base_cfg()
        });
        let stats = sim.run(200, 3000);
        // Minimum latency: ≥ packet length (serialization) at zero load.
        assert!(stats.avg_latency() >= 4.0, "{}", stats.avg_latency());
        assert!(stats.avg_latency() < 60.0, "{}", stats.avg_latency());
    }

    #[test]
    fn higher_load_means_higher_latency_and_throughput() {
        let run = |rate: f64| {
            let mut sim = Simulation::new(MeshConfig {
                injection_rate: rate,
                seed: 9,
                ..base_cfg()
            });
            sim.run(500, 4000)
        };
        let light = run(0.01);
        let heavy = run(0.08);
        assert!(heavy.throughput() > light.throughput());
        assert!(heavy.avg_latency() > light.avg_latency());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = Simulation::new(base_cfg());
            let s = sim.run(100, 1000);
            (s.packets_delivered, s.flits_delivered, s.latency_sum)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn idle_histograms_fill_under_light_load() {
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: 0.02,
            ..base_cfg()
        });
        let stats = sim.run(200, 2000);
        let merged = stats.merged_idle_histogram(4096);
        assert!(merged.interval_count() > 0);
        // Under 2 % load, most output-cycles are idle.
        let idle_frac = merged.total_idle_cycles() as f64 / (2000.0 * 16.0 * 5.0);
        assert!(idle_frac > 0.5, "idle fraction {idle_frac}");
    }

    #[test]
    fn utilization_tracks_load() {
        let mut light_sim = Simulation::new(MeshConfig {
            injection_rate: 0.01,
            ..base_cfg()
        });
        let mut heavy_sim = Simulation::new(MeshConfig {
            injection_rate: 0.10,
            ..base_cfg()
        });
        let light = light_sim.run(300, 2000).crossbar_utilization();
        let heavy = heavy_sim.run(300, 2000).crossbar_utilization();
        assert!(heavy > 2.0 * light, "light {light}, heavy {heavy}");
    }

    #[test]
    #[should_panic(expected = "at least 2×2")]
    fn tiny_mesh_rejected() {
        let _ = Simulation::new(MeshConfig {
            width: 1,
            ..base_cfg()
        });
    }

    #[test]
    fn all_patterns_deliver() {
        for pattern in TrafficPattern::ALL {
            let mut sim = Simulation::new(MeshConfig {
                pattern,
                injection_rate: 0.03,
                ..base_cfg()
            });
            let stats = sim.run(300, 2000);
            assert!(
                stats.packets_delivered > 10,
                "{pattern:?} delivered {}",
                stats.packets_delivered
            );
        }
    }
}
