//! The cycle loop: injection, router stepping, link transfer, ejection.
//!
//! Correctness notes:
//!
//! * Downstream readiness is evaluated against a snapshot of all input
//!   buffer occupancies taken once per cycle (the credit state at cycle
//!   start), so results are independent of the order routers are
//!   visited in — see [`Simulation::set_visit_reversed`] and the
//!   order-independence test.
//! * Ejection order is validated on the fly: every packet must arrive
//!   at its destination head-first, contiguously, with exactly
//!   `packet_len_flits` flits.
//! * The per-cycle scratch (transfers, occupancy snapshot) is reused
//!   across cycles and [`Router::step`] is allocation-free, so the
//!   steady-state loop performs no heap allocation.

use crate::router::Router;
use crate::sleep::SleepConfig;
use crate::stats::NetworkStats;
use crate::topology::{Direction, Mesh};
use crate::traffic::{Flit, InjectionProcess, TrafficPattern};
use lnoc_power::gating::GatingPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Mesh width.
    pub width: usize,
    /// Mesh height.
    pub height: usize,
    /// Mean packet injection probability per node per cycle.
    pub injection_rate: f64,
    /// Destination pattern.
    pub pattern: TrafficPattern,
    /// Flits per packet.
    pub packet_len_flits: usize,
    /// Input buffer depth in flits.
    pub buffer_depth: usize,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Torus wraparound links (see [`Mesh`] for the deadlock caveat).
    pub wrap: bool,
    /// Temporal injection process (Bernoulli or bursty ON–OFF).
    pub injection: InjectionProcess,
    /// In-loop power gating of router output ports; `None` simulates
    /// ungated hardware (and skips all gating bookkeeping).
    pub gating: Option<SleepConfig>,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            width: 4,
            height: 4,
            injection_rate: 0.05,
            pattern: TrafficPattern::UniformRandom,
            packet_len_flits: 4,
            buffer_depth: 4,
            seed: 1,
            wrap: false,
            injection: InjectionProcess::Bernoulli,
            gating: None,
        }
    }
}

/// Per-destination ejection progress, for on-the-fly validation of
/// in-order, contiguous packet delivery.
#[derive(Debug, Clone, Copy, Default)]
struct EjectProgress {
    current: Option<(u64, usize)>,
}

/// A running mesh simulation.
#[derive(Debug)]
pub struct Simulation {
    cfg: MeshConfig,
    mesh: Mesh,
    routers: Vec<Router>,
    /// Source queues: packets wait here until the local port accepts.
    source_queues: Vec<VecDeque<Flit>>,
    /// Per-node ON/OFF state of the bursty injection process.
    source_on: Vec<bool>,
    rng: StdRng,
    next_packet_id: u64,
    flits_injected: u64,
    cycle: u64,
    visit_reversed: bool,
    /// Reused per-cycle scratch: departures waiting to be applied.
    transfers: Vec<(usize, Direction, Flit)>,
    /// Reused per-cycle scratch: input occupancy snapshot, `router * 5
    /// + port` — the cycle-start credit state.
    occupancy: Vec<u32>,
    eject: Vec<EjectProgress>,
}

impl Simulation {
    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (empty mesh, zero-length
    /// packets, zero buffers, an [`GatingPolicy::Oracle`] in-loop
    /// policy — the oracle needs future knowledge and only exists
    /// offline — or a bursty process with zero mean dwell times).
    pub fn new(cfg: MeshConfig) -> Self {
        assert!(
            cfg.width >= 2 && cfg.height >= 2,
            "mesh must be at least 2×2"
        );
        assert!(cfg.packet_len_flits >= 1, "packets need at least one flit");
        assert!(cfg.buffer_depth >= 1, "buffers need at least one slot");
        assert!(
            (0.0..=1.0).contains(&cfg.injection_rate),
            "injection rate is a probability"
        );
        if let Some(gating) = &cfg.gating {
            assert!(
                gating.policy != GatingPolicy::Oracle,
                "the Oracle policy needs future knowledge; it exists only offline"
            );
        }
        if let InjectionProcess::BurstyOnOff {
            mean_burst,
            mean_idle,
        } = cfg.injection
        {
            assert!(
                mean_burst >= 1 && mean_idle >= 1,
                "bursty dwell times must be at least one cycle"
            );
            let duty = mean_burst as f64 / (mean_burst + mean_idle) as f64;
            assert!(
                cfg.injection_rate <= duty,
                "injection rate {} exceeds the ON duty cycle {duty:.3}; the bursty \
                 source saturates and cannot offer the configured load",
                cfg.injection_rate
            );
        }
        let mesh = Mesh {
            width: cfg.width,
            height: cfg.height,
            wrap: cfg.wrap,
        };
        Simulation {
            mesh,
            routers: (0..mesh.len())
                .map(|id| Router::with_gating(id, cfg.buffer_depth, cfg.gating))
                .collect(),
            source_queues: vec![VecDeque::new(); mesh.len()],
            source_on: vec![true; mesh.len()],
            rng: StdRng::seed_from_u64(cfg.seed),
            next_packet_id: 0,
            flits_injected: 0,
            cycle: 0,
            visit_reversed: false,
            transfers: Vec::new(),
            occupancy: vec![0; mesh.len() * 5],
            eject: vec![EjectProgress::default(); mesh.len()],
            cfg,
        }
    }

    /// The mesh being simulated.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Visits routers in reverse index order within each cycle. With
    /// the cycle-start occupancy snapshot the visit order must not
    /// change any observable result — this knob exists so tests can
    /// prove it.
    pub fn set_visit_reversed(&mut self, reversed: bool) {
        self.visit_reversed = reversed;
    }

    /// Flits currently inside the network (source queues + buffers) —
    /// with the injected/delivered counters this gives exact flit
    /// conservation when measuring from cycle 0.
    pub fn in_flight_flits(&self) -> u64 {
        let queued: usize = self.source_queues.iter().map(VecDeque::len).sum();
        let buffered: usize = self.routers.iter().map(Router::total_occupancy).sum();
        (queued + buffered) as u64
    }

    /// Flits injected since construction (all cycles, not just the
    /// measurement window).
    pub fn flits_injected_total(&self) -> u64 {
        self.flits_injected
    }

    /// Runs `warmup` cycles unmeasured, then `measure` cycles with
    /// statistics collection, and returns the stats.
    ///
    /// At the measurement boundary the idle runs *and* the sleep FSMs
    /// are reset, so the idle histograms and the in-loop gating
    /// counters describe exactly the same intervals.
    pub fn run(&mut self, warmup: u64, measure: u64) -> NetworkStats {
        let mut stats = NetworkStats::new(self.mesh.len(), 4096);
        for _ in 0..warmup {
            self.step(None);
        }
        // Reset idle runs and gating state so warmup does not pollute
        // the measurement.
        for r in &mut self.routers {
            let _ = r.drain_idle_runs();
            r.reset_gating();
        }
        for _ in 0..measure {
            self.step(Some(&mut stats));
        }
        stats.measured_cycles = measure;
        // Close out open idle runs and collect gating counters.
        for (rid, r) in self.routers.iter_mut().enumerate() {
            for (p, run) in r.drain_idle_runs().into_iter().enumerate() {
                stats.idle_histograms[rid][p].record_open(run);
            }
            stats.gating[rid] = r.gating_counters();
        }
        stats
    }

    /// Advances one cycle.
    fn step(&mut self, mut stats: Option<&mut NetworkStats>) {
        self.cycle += 1;
        let n = self.mesh.len();

        // 1. Injection: generate new packets into source queues.
        let on_rate = self.cfg.injection.on_rate(self.cfg.injection_rate);
        for src in 0..n {
            if let InjectionProcess::BurstyOnOff {
                mean_burst,
                mean_idle,
            } = self.cfg.injection
            {
                let flip = if self.source_on[src] {
                    self.rng.gen_bool(1.0 / mean_burst as f64)
                } else {
                    self.rng.gen_bool(1.0 / mean_idle as f64)
                };
                if flip {
                    self.source_on[src] = !self.source_on[src];
                }
            }
            let rate = if self.source_on[src] { on_rate } else { 0.0 };
            if rate > 0.0 && self.rng.gen_bool(rate) {
                if let Some(dst) = self.cfg.pattern.destination(src, &self.mesh, &mut self.rng) {
                    let id = self.next_packet_id;
                    self.next_packet_id += 1;
                    let len = self.cfg.packet_len_flits;
                    for k in 0..len {
                        self.source_queues[src].push_back(Flit {
                            packet_id: id,
                            src,
                            dst,
                            is_head: k == 0,
                            is_tail: k + 1 == len,
                            injected_at: self.cycle,
                        });
                    }
                    self.flits_injected += len as u64;
                    if let Some(s) = stats.as_deref_mut() {
                        s.packets_injected += 1;
                    }
                }
            }
            // Move waiting flits into the local input buffer.
            while !self.source_queues[src].is_empty()
                && self.routers[src].can_accept(Direction::Local)
            {
                let flit = self.source_queues[src]
                    .pop_front()
                    .expect("non-empty checked");
                self.routers[src].accept(Direction::Local, flit);
                if let Some(s) = stats.as_deref_mut() {
                    s.router_activity[src].buffer_writes += 1;
                }
            }
        }

        // 2. Snapshot the credit state: input occupancies at cycle
        // start. All downstream-readiness checks this cycle read the
        // snapshot, never live buffers, so the result cannot depend on
        // which routers already stepped.
        for (rid, r) in self.routers.iter().enumerate() {
            for d in Direction::ALL {
                self.occupancy[rid * 5 + d.index()] = r.occupancy(d) as u32;
            }
        }

        // 3. Router cycles. Collect departures first (reads), then
        // apply them (writes) so a flit moves one hop per cycle.
        let mesh = self.mesh;
        let depth = self.cfg.buffer_depth as u32;
        self.transfers.clear();
        for i in 0..n {
            let rid = if self.visit_reversed { n - 1 - i } else { i };
            let mut ready = [false; 5];
            for d in Direction::ALL {
                ready[d.index()] = match d {
                    Direction::Local => true, // ejection always sinks
                    d => match mesh.neighbor(rid, d) {
                        Some(next) => self.occupancy[next * 5 + d.opposite().index()] < depth,
                        None => false,
                    },
                };
            }
            let route = |flit: &Flit| mesh.route_xy(rid, flit.dst);
            let outcome = self.routers[rid].step(route, |d| ready[d.index()]);

            if let Some(s) = stats.as_deref_mut() {
                s.router_activity[rid].cycles += 1;
                s.router_activity[rid].arbitrations += outcome.arbitrations;
                for (p, run) in outcome.idle_ended.into_iter().enumerate() {
                    s.idle_histograms[rid][p].record(run);
                }
            }

            for dep in outcome.departures() {
                if let Some(s) = stats.as_deref_mut() {
                    s.router_activity[rid].crossbar_traversals += 1;
                    s.router_activity[rid].buffer_reads += 1;
                    if dep.output != Direction::Local {
                        s.router_activity[rid].link_traversals += 1;
                    }
                }
                self.transfers.push((rid, dep.output, dep.flit));
            }
        }

        // 4. Apply transfers.
        for ti in 0..self.transfers.len() {
            let (rid, out, flit) = self.transfers[ti];
            match out {
                Direction::Local => {
                    self.validate_ejection(rid, &flit);
                    if let Some(s) = stats.as_deref_mut() {
                        s.flits_delivered += 1;
                        if flit.is_tail {
                            s.packets_delivered += 1;
                            let latency = self.cycle - flit.injected_at;
                            s.latency_sum += latency;
                            s.latency_max = s.latency_max.max(latency);
                        }
                    }
                }
                d => {
                    let next = mesh
                        .neighbor(rid, d)
                        .expect("departures only target existing neighbours");
                    self.routers[next].accept(d.opposite(), flit);
                    if let Some(s) = stats.as_deref_mut() {
                        s.router_activity[next].buffer_writes += 1;
                    }
                }
            }
        }
    }

    /// Asserts in-order, contiguous, complete per-packet delivery.
    fn validate_ejection(&mut self, rid: usize, flit: &Flit) {
        assert_eq!(flit.dst, rid, "flit ejected at the wrong router");
        let progress = &mut self.eject[rid];
        match progress.current {
            None => {
                assert!(
                    flit.is_head,
                    "packet {} ejected body flit before its head at router {rid}",
                    flit.packet_id
                );
                if flit.is_tail {
                    assert_eq!(self.cfg.packet_len_flits, 1);
                } else {
                    progress.current = Some((flit.packet_id, 1));
                }
            }
            Some((pkt, seen)) => {
                assert_eq!(
                    flit.packet_id, pkt,
                    "packet interleaving at router {rid} ejection port"
                );
                assert!(!flit.is_head, "duplicate head flit in packet {pkt}");
                let seen = seen + 1;
                if flit.is_tail {
                    assert_eq!(
                        seen, self.cfg.packet_len_flits,
                        "packet {pkt} delivered with the wrong flit count"
                    );
                    progress.current = None;
                } else {
                    progress.current = Some((pkt, seen));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sleep::SleepConfig;
    use lnoc_power::gating::{energy_from_counters, evaluate_policy, GatingParams, GatingPolicy};
    use lnoc_tech::units::{Hertz, Joules, Watts};

    fn base_cfg() -> MeshConfig {
        MeshConfig {
            width: 4,
            height: 4,
            injection_rate: 0.05,
            pattern: TrafficPattern::UniformRandom,
            packet_len_flits: 4,
            buffer_depth: 4,
            seed: 42,
            ..MeshConfig::default()
        }
    }

    #[test]
    fn packets_flow_and_are_conserved() {
        // Measure from cycle 0: packets straddling a warmup/measure
        // boundary would otherwise split their flit counts across the
        // unmeasured and measured windows and break exact conservation.
        let mut sim = Simulation::new(base_cfg());
        let stats = sim.run(0, 3500);
        assert!(stats.packets_delivered > 100, "{}", stats.packets_delivered);
        // Flits delivered = packets × packet length (within in-flight
        // slack of injected − delivered).
        assert!(
            stats.flits_delivered >= stats.packets_delivered * 4,
            "every delivered packet contributed all its flits"
        );
        assert!(stats.packets_injected >= stats.packets_delivered);
        // Exact conservation: injected = delivered + still in flight.
        assert_eq!(
            sim.flits_injected_total(),
            stats.flits_delivered + sim.in_flight_flits()
        );
    }

    #[test]
    fn latency_at_least_hop_count() {
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: 0.01,
            ..base_cfg()
        });
        let stats = sim.run(200, 3000);
        // Minimum latency: ≥ packet length (serialization) at zero load.
        assert!(stats.avg_latency() >= 4.0, "{}", stats.avg_latency());
        assert!(stats.avg_latency() < 60.0, "{}", stats.avg_latency());
    }

    #[test]
    fn higher_load_means_higher_latency_and_throughput() {
        let run = |rate: f64| {
            let mut sim = Simulation::new(MeshConfig {
                injection_rate: rate,
                seed: 9,
                ..base_cfg()
            });
            sim.run(500, 4000)
        };
        let light = run(0.01);
        let heavy = run(0.08);
        assert!(heavy.throughput() > light.throughput());
        assert!(heavy.avg_latency() > light.avg_latency());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = Simulation::new(base_cfg());
            let s = sim.run(100, 1000);
            (s.packets_delivered, s.flits_delivered, s.latency_sum)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn router_visit_order_is_irrelevant() {
        // With the cycle-start occupancy snapshot, stepping routers in
        // reverse (or any) order must produce bit-identical statistics.
        // Before the snapshot fix, downstream readiness read live
        // buffers that earlier routers had already popped, so behaviour
        // depended on iteration order.
        for cfg in [
            base_cfg(),
            MeshConfig {
                injection_rate: 0.12,
                pattern: TrafficPattern::Transpose,
                seed: 3,
                ..base_cfg()
            },
            MeshConfig {
                wrap: true,
                pattern: TrafficPattern::Tornado,
                injection_rate: 0.03,
                ..base_cfg()
            },
            MeshConfig {
                gating: Some(SleepConfig {
                    policy: GatingPolicy::IdleThreshold(3),
                    wake_latency: 2,
                }),
                injection_rate: 0.06,
                seed: 7,
                ..base_cfg()
            },
        ] {
            let mut fwd = Simulation::new(cfg.clone());
            let mut rev = Simulation::new(cfg);
            rev.set_visit_reversed(true);
            let s_fwd = fwd.run(100, 1500);
            let s_rev = rev.run(100, 1500);
            assert_eq!(s_fwd, s_rev);
        }
    }

    #[test]
    fn idle_histograms_fill_under_light_load() {
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: 0.02,
            ..base_cfg()
        });
        let stats = sim.run(200, 2000);
        let merged = stats.merged_idle_histogram(4096);
        assert!(merged.interval_count() > 0);
        // Under 2 % load, most output-cycles are idle.
        let idle_frac = merged.total_idle_cycles() as f64 / (2000.0 * 16.0 * 5.0);
        assert!(idle_frac > 0.5, "idle fraction {idle_frac}");
    }

    #[test]
    fn utilization_tracks_load() {
        let mut light_sim = Simulation::new(MeshConfig {
            injection_rate: 0.01,
            ..base_cfg()
        });
        let mut heavy_sim = Simulation::new(MeshConfig {
            injection_rate: 0.10,
            ..base_cfg()
        });
        let light = light_sim.run(300, 2000).crossbar_utilization();
        let heavy = heavy_sim.run(300, 2000).crossbar_utilization();
        assert!(heavy > 2.0 * light, "light {light}, heavy {heavy}");
    }

    #[test]
    #[should_panic(expected = "at least 2×2")]
    fn tiny_mesh_rejected() {
        let _ = Simulation::new(MeshConfig {
            width: 1,
            ..base_cfg()
        });
    }

    #[test]
    #[should_panic(expected = "Oracle")]
    fn oracle_rejected_in_loop() {
        let _ = Simulation::new(MeshConfig {
            gating: Some(SleepConfig {
                policy: GatingPolicy::Oracle,
                wake_latency: 1,
            }),
            ..base_cfg()
        });
    }

    #[test]
    fn all_patterns_deliver() {
        for pattern in TrafficPattern::ALL {
            let mut sim = Simulation::new(MeshConfig {
                pattern,
                injection_rate: 0.03,
                ..base_cfg()
            });
            let stats = sim.run(300, 2000);
            assert!(
                stats.packets_delivered > 10,
                "{pattern:?} delivered {}",
                stats.packets_delivered
            );
        }
    }

    #[test]
    fn torus_delivers_and_shortens_paths() {
        let run = |wrap: bool| {
            let mut sim = Simulation::new(MeshConfig {
                wrap,
                injection_rate: 0.02,
                pattern: TrafficPattern::Tornado,
                seed: 17,
                ..base_cfg()
            });
            sim.run(300, 3000)
        };
        let mesh = run(false);
        let torus = run(true);
        assert!(mesh.packets_delivered > 50);
        assert!(torus.packets_delivered > 50);
        // Tornado on a 4-wide torus is a single wraparound-assisted hop
        // pattern; the mesh must walk the long way.
        assert!(
            torus.avg_latency() < mesh.avg_latency(),
            "torus {:.1} vs mesh {:.1}",
            torus.avg_latency(),
            mesh.avg_latency()
        );
    }

    #[test]
    fn bursty_injection_conserves_and_matches_load() {
        let mut sim = Simulation::new(MeshConfig {
            injection: InjectionProcess::BurstyOnOff {
                mean_burst: 20,
                mean_idle: 60,
            },
            injection_rate: 0.04,
            seed: 23,
            ..base_cfg()
        });
        let stats = sim.run(0, 8000);
        assert_eq!(
            sim.flits_injected_total(),
            stats.flits_delivered + sim.in_flight_flits()
        );
        // Offered load stays near the configured average rate.
        let offered = stats.packets_injected as f64 / (8000.0 * 16.0);
        assert!(
            (offered - 0.04).abs() < 0.01,
            "offered load {offered} vs configured 0.04"
        );
    }

    #[test]
    fn gating_stalls_traffic_and_matches_offline_energy() {
        let params = GatingParams {
            p_idle_awake: Watts(10.0e-6),
            p_standby: Watts(1.0e-6),
            e_transition: Joules(9.0e-15),
            wake_latency_cycles: 2,
        };
        let clock = Hertz(3.0e9);
        let policy = GatingPolicy::IdleThreshold(params.min_idle_cycles(clock));

        let gated_cfg = MeshConfig {
            gating: Some(SleepConfig {
                policy,
                wake_latency: params.wake_latency_cycles,
            }),
            injection_rate: 0.03,
            ..base_cfg()
        };
        let mut gated = Simulation::new(gated_cfg.clone());
        let g = gated.run(500, 6000);
        let mut ungated = Simulation::new(MeshConfig {
            gating: None,
            ..gated_cfg
        });
        let u = ungated.run(500, 6000);

        // Wake latency back-pressures real traffic.
        let counters = g.total_gating_counters();
        assert!(counters.sleep_entries > 100, "{counters:?}");
        assert!(counters.wake_stall_cycles > 0, "{counters:?}");
        assert!(
            g.avg_latency() > u.avg_latency(),
            "gated {:.2} must exceed ungated {:.2}",
            g.avg_latency(),
            u.avg_latency()
        );

        // In-loop energy agrees with the offline model evaluated on the
        // same run's histograms.
        let in_loop = energy_from_counters(&counters, &params, clock);
        let offline = evaluate_policy(&g.merged_idle_histogram(4096), &params, policy, clock);
        let rel =
            (in_loop.energy_policy.0 - offline.energy_policy.0).abs() / offline.energy_policy.0;
        assert!(rel < 0.05, "in-loop vs offline disagreement {rel:.4}");
        let rel_never =
            (in_loop.energy_never.0 - offline.energy_never.0).abs() / offline.energy_never.0;
        assert!(rel_never < 1e-9, "idle-cycle totals must match exactly");
    }
}
