//! The cycle loop: injection, router stepping, link transfer, credit
//! return, ejection.
//!
//! Two interchangeable kernels execute the loop (selected by
//! [`MeshConfig::kernel`]):
//!
//! * [`SimKernel::Reference`] — the dense oracle: every router is
//!   stepped every cycle and the credit state is rebuilt O(5·V·n) per
//!   cycle from the live buffers. Simple, obviously correct, slow.
//! * [`SimKernel::ActiveSet`] — the production kernel: a worklist of
//!   routers that can possibly do work this cycle (buffered flits, an
//!   output VC lane held mid-packet, or a waiting source packet —
//!   sleep-FSM motion earns no membership: an empty router's FSM
//!   future is closed-form and replayed in bulk, see
//!   [`SleepFsm::idle_predictable`]). Quiescent routers are skipped
//!   entirely; their idle cycles are accounted in O(1) bulk when they
//!   reactivate or the window closes, and the credit counters are
//!   maintained incrementally on flit departure/arrival instead of
//!   rebuilt.
//!
//! Flow control is credit-based: the simulation carries one explicit
//! credit counter per output VC lane (`router * 5V + port * V + vc`),
//! holding the free slots of the downstream router's input VC buffer.
//! A flit may depart only on a lane with a credit; the credit is
//! consumed when the flit is applied and returned when the downstream
//! router pops the flit onward. With `V = 1` this is numerically
//! identical to the old occupancy-snapshot backpressure (`credit > 0 ⇔
//! occupancy < depth`), which is what keeps the refactor
//! behaviour-preserving at one VC.
//!
//! The two kernels produce **bit-identical [`NetworkStats`]** for the
//! same [`MeshConfig`]: all RNG draws (injection, bursty flips,
//! destinations) happen per node per cycle in both kernels, and the
//! active-set kernel only skips work that draws no randomness and whose
//! effect is a closed-form function of the skipped cycle count. The
//! kernel-equivalence property tests pin this across traffic patterns,
//! injection processes, topologies, VC counts, gating policies and
//! visit order.
//!
//! **RNG discipline.** Every node draws from its own deterministic
//! stream, keyed by `(seed, router id)` ([`node_rng`]), and packet ids
//! are allocated per source ([`packet_id`]: source in the high bits,
//! a private sequence number in the low bits). A node's draw sequence
//! is therefore a pure function of its own history — independent of
//! the order nodes are visited in, of what any other node draws, and
//! of how the mesh is partitioned across parallel workers. This is
//! what lets a tiled kernel inject in parallel and still reproduce the
//! serial kernels bit for bit.
//!
//! Correctness notes:
//!
//! * Credit state is evaluated against the cycle-start snapshot
//!   (rebuilt per cycle in the reference kernel, mutated only in the
//!   transfer phase in the active-set kernel), so results are
//!   independent of the order routers are visited in — see
//!   [`Simulation::set_visit_reversed`] and the order-independence
//!   test.
//! * On a torus with `vcs ≥ 2`, dimension-order routing switches VC
//!   class at each ring's dateline ([`Mesh::dateline_class`]), making
//!   wormhole DOR deadlock-free; a zero-progress watchdog
//!   ([`MeshConfig::watchdog_cycles`]) aborts with a per-lane
//!   diagnostic instead of spinning forever if a regression ever
//!   reintroduces a cycle.
//! * Ejection order is validated on the fly: every packet must arrive
//!   at its destination head-first, contiguously, with exactly
//!   `packet_len_flits` flits. The check is always on in debug builds
//!   and behind [`MeshConfig::validate_ejection`] in release, so sweep
//!   binaries do not pay per-flit assertion cost.
//! * The per-cycle scratch (transfers, idle-ended slice, worklist) is
//!   reused across cycles and [`Router::step_fast`] is allocation-free,
//!   so the steady-state loop performs no heap allocation.

use crate::router::{PortLane, RouteTarget, Router, MAX_LANES, MAX_VCS};
use crate::sleep::{SleepConfig, SleepFsm};
use crate::stats::NetworkStats;
use crate::topology::{Direction, Mesh, NeighborTable, RouteTable};
use crate::traffic::{Flit, InjectionProcess, SourcePacket, TrafficPattern};
use lnoc_power::gating::{GatingCounters, GatingPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which cycle-loop kernel executes the simulation.
///
/// Both kernels produce bit-identical [`NetworkStats`] for the same
/// seed; they differ only in speed. `Reference` is retained as the
/// oracle the fast kernel is tested against (the same playbook as the
/// circuit engine's `SolverKind::Reference`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SimKernel {
    /// Choose automatically. Currently always resolves to `ActiveSet` —
    /// the kernels are result-identical, so there is no trade-off to
    /// weigh.
    #[default]
    Auto,
    /// Worklist kernel: only routers that can possibly do work are
    /// stepped; quiescent routers are bulk-accounted in O(1) when they
    /// reactivate.
    ActiveSet,
    /// Dense oracle: every router stepped every cycle, credit state
    /// rebuilt O(5·V·n) per cycle.
    Reference,
}

impl SimKernel {
    /// Resolves `Auto` to the concrete kernel that will run.
    pub fn resolve(self) -> SimKernel {
        match self {
            SimKernel::Auto => SimKernel::ActiveSet,
            k => k,
        }
    }

    /// Short name for reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            SimKernel::Auto => "auto",
            SimKernel::ActiveSet => "active-set",
            SimKernel::Reference => "reference",
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Mesh width.
    pub width: usize,
    /// Mesh height.
    pub height: usize,
    /// Mean packet injection probability per node per cycle.
    pub injection_rate: f64,
    /// Destination pattern.
    pub pattern: TrafficPattern,
    /// Flits per packet.
    pub packet_len_flits: usize,
    /// Input buffer depth in flits, **per virtual channel**.
    pub buffer_depth: usize,
    /// Virtual channels per port (1..=[`MAX_VCS`]). `1` reproduces the
    /// pre-VC single-FIFO router bit-for-bit; `≥ 2` enables dateline
    /// VC switching on a torus (deadlock-free DOR).
    pub vcs: usize,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Torus wraparound links (see [`Mesh`] for the deadlock caveat at
    /// `vcs == 1`).
    pub wrap: bool,
    /// Temporal injection process (Bernoulli or bursty ON–OFF).
    pub injection: InjectionProcess,
    /// In-loop power gating of router output VC lanes; `None`
    /// simulates ungated hardware (and skips all gating bookkeeping).
    pub gating: Option<SleepConfig>,
    /// Cycle-loop kernel (see [`SimKernel`]).
    pub kernel: SimKernel,
    /// Run the per-flit in-order ejection validation in release builds
    /// too. Debug builds (and therefore `cargo test`) always validate;
    /// release sweeps default to skipping the assertion cost.
    pub validate_ejection: bool,
    /// Maximum packets a node's source queue holds (≥ 1). Offers made
    /// while the queue is full are rejected and counted in
    /// [`NetworkStats::packets_dropped_at_source`] — without the cap, a
    /// saturated network grows source queues (and memory) without
    /// bound.
    pub source_queue_cap: usize,
    /// Zero-progress watchdog: if flits are buffered in the network
    /// and, for this many consecutive cycles, no flit moves and no
    /// credit returns, the simulation panics with a per-lane diagnostic
    /// (router, port, VC, owner) instead of spinning forever — so
    /// deadlock regressions fail fast in CI. `0` disables the
    /// watchdog.
    pub watchdog_cycles: u64,
}

impl MeshConfig {
    /// Default [`MeshConfig::source_queue_cap`]: deep enough that drops
    /// only happen under sustained saturation.
    pub const DEFAULT_SOURCE_QUEUE_CAP: usize = 64;

    /// Default [`MeshConfig::watchdog_cycles`]: far above any
    /// legitimate zero-progress stretch (the longest is a network-wide
    /// simultaneous wake, bounded by the wake latency), far below
    /// "spins forever".
    pub const DEFAULT_WATCHDOG_CYCLES: u64 = 100_000;
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            width: 4,
            height: 4,
            injection_rate: 0.05,
            pattern: TrafficPattern::UniformRandom,
            packet_len_flits: 4,
            buffer_depth: 4,
            vcs: 1,
            seed: 1,
            wrap: false,
            injection: InjectionProcess::Bernoulli,
            gating: None,
            kernel: SimKernel::Auto,
            validate_ejection: false,
            source_queue_cap: MeshConfig::DEFAULT_SOURCE_QUEUE_CAP,
            watchdog_cycles: MeshConfig::DEFAULT_WATCHDOG_CYCLES,
        }
    }
}

/// Builds router `rid`'s private RNG stream for a run seeded with
/// `seed`.
///
/// The golden-ratio multiply keeps the expanded seed distinct per
/// router (injective in `rid` for a fixed run seed), and
/// `seed_from_u64`'s SplitMix64 expansion decorrelates the resulting
/// generator states. Because each node only ever draws from its own
/// stream, its draw sequence does not depend on other nodes, on visit
/// order, or on shard geometry.
pub(crate) fn node_rng(seed: u64, rid: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (rid as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15))
}

/// Bits of a packet id holding the source-private sequence number; the
/// bits above carry the source router id.
const PACKET_SEQ_BITS: u32 = 40;

/// Allocates the globally unique id of source `src`'s `seq`-th packet.
///
/// Ids are per-source streams — `src` in the high bits, the source's
/// private sequence number in the low bits — so id allocation needs no
/// cross-node coordination (the property that lets tiled injection run
/// in parallel). Uniqueness: sources are distinct in the high bits and
/// sequences in the low bits; the result can never collide with
/// [`Flit::INVALID`] (`u64::MAX`) while `src < 2^24 − 1`, far above
/// any simulable mesh.
pub(crate) fn packet_id(src: usize, seq: u64) -> u64 {
    debug_assert!((src as u64) < (1 << (64 - PACKET_SEQ_BITS)) - 1);
    debug_assert!(seq < (1 << PACKET_SEQ_BITS));
    ((src as u64) << PACKET_SEQ_BITS) | seq
}

/// Per-destination ejection progress, for on-the-fly validation of
/// in-order, contiguous packet delivery.
#[derive(Debug, Clone, Copy, Default)]
struct EjectProgress {
    current: Option<(u64, usize)>,
}

/// One flit crossing a link (or ejecting) this cycle, recorded during
/// router stepping and applied afterwards so a flit moves one hop per
/// cycle. Carries the input lane it was popped from so the active-set
/// kernel can return the freed slot's credit to the upstream router.
#[derive(Debug, Clone, Copy)]
struct Transfer {
    from: u32,
    input: Direction,
    input_vc: u8,
    output: Direction,
    flit: Flit,
}

/// A running mesh simulation.
#[derive(Debug)]
pub struct Simulation {
    cfg: MeshConfig,
    /// The resolved kernel actually executing (`Auto` already mapped).
    kernel: SimKernel,
    mesh: Mesh,
    routers: Vec<Router>,
    /// Source queues: packet descriptors wait here until the local port
    /// accepts; flits are synthesized on acceptance.
    source_queues: Vec<VecDeque<SourcePacket>>,
    /// Per-node ON/OFF state of the bursty injection process.
    source_on: Vec<bool>,
    /// Per-router RNG streams (see [`node_rng`]).
    rngs: Vec<StdRng>,
    /// Per-source packet sequence numbers (see [`packet_id`]).
    next_seq: Vec<u64>,
    flits_injected: u64,
    cycle: u64,
    visit_reversed: bool,
    /// Reused per-cycle scratch: departures waiting to be applied.
    transfers: Vec<Transfer>,
    /// Credit counters, `router * 5V + port * V + vc` — free slots in
    /// the downstream input VC buffer reachable through that output
    /// lane (0 for edge ports without a link; Local lanes unused, the
    /// ejection port always sinks). The reference kernel rebuilds them
    /// every cycle; the active-set kernel maintains them incrementally
    /// on departure (consume) and downstream pop (return).
    credits: Vec<u32>,
    eject: Vec<EjectProgress>,

    // ---- SoA per-lane state (indexed `router * 5V + port * V + vc`) ----
    /// Consecutive idle cycles per output VC lane.
    idle_run: Vec<u64>,
    /// Sleep FSM per output VC lane.
    fsm: Vec<SleepFsm>,
    /// Gating counters per router (all lanes summed).
    counters: Vec<GatingCounters>,
    /// Reused per-router scratch for [`PortLane::idle_ended`].
    idle_ended: Vec<u64>,

    // ---- Watchdog state ----
    /// Flits currently buffered inside routers (not source queues).
    buffered_flits: u64,
    /// Consecutive cycles with buffered flits but zero progress.
    stagnant_cycles: u64,

    // ---- Active-set kernel state ----
    neighbors: NeighborTable,
    routes: Option<RouteTable>,
    /// Cached `(x, y)` per router id, so the hot route closure's
    /// dateline-class computation ([`Mesh::hop_vc_at`]) performs no
    /// divisions — the same treatment [`NeighborTable`] gives
    /// neighbour lookup.
    xy: Vec<(u16, u16)>,
    /// The worklist as a bitset (bit `rid` set ⇔ router `rid` steps
    /// this cycle). A bitset instead of a list keeps the traversal in
    /// router-index order — cache-linear over the router array and the
    /// SoA lanes — and makes membership tests one AND.
    active_bits: Vec<u64>,
    /// Last cycle a (now quiescent) router was stepped or accounted
    /// through; the gap to the current cycle is its pending bulk-idle
    /// accounting.
    last_stepped: Vec<u64>,
}

impl Simulation {
    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (empty mesh, zero-length
    /// packets, zero buffers, a VC count outside `1..=`[`MAX_VCS`], a
    /// zero source-queue cap, an [`GatingPolicy::Oracle`] in-loop
    /// policy — the oracle needs future knowledge and only exists
    /// offline — or a bursty process with zero mean dwell times).
    pub fn new(cfg: MeshConfig) -> Self {
        assert!(
            cfg.width >= 2 && cfg.height >= 2,
            "mesh must be at least 2×2"
        );
        assert!(cfg.packet_len_flits >= 1, "packets need at least one flit");
        assert!(cfg.buffer_depth >= 1, "buffers need at least one slot");
        assert!(
            (1..=MAX_VCS).contains(&cfg.vcs),
            "vcs must be in 1..={MAX_VCS}"
        );
        assert!(
            cfg.source_queue_cap >= 1,
            "source queues need room for at least one packet"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.injection_rate),
            "injection rate is a probability"
        );
        if let Some(gating) = &cfg.gating {
            assert!(
                gating.policy != GatingPolicy::Oracle,
                "the Oracle policy needs future knowledge; it exists only offline"
            );
        }
        if let InjectionProcess::BurstyOnOff {
            mean_burst,
            mean_idle,
        } = cfg.injection
        {
            assert!(
                mean_burst >= 1 && mean_idle >= 1,
                "bursty dwell times must be at least one cycle"
            );
            let duty = mean_burst as f64 / (mean_burst + mean_idle) as f64;
            assert!(
                cfg.injection_rate <= duty,
                "injection rate {} exceeds the ON duty cycle {duty:.3}; the bursty \
                 source saturates and cannot offer the configured load",
                cfg.injection_rate
            );
        }
        let mesh = Mesh {
            width: cfg.width,
            height: cfg.height,
            wrap: cfg.wrap,
        };
        let n = mesh.len();
        let v = cfg.vcs;
        let lanes = 5 * v;
        let kernel = cfg.kernel.resolve();
        // Initial credits: the full per-VC depth wherever a link
        // exists, zero on edge ports (so `credit > 0` doubles as the
        // link-existence check in the hot readiness closure).
        let mut credits = vec![0u32; n * lanes];
        for rid in 0..n {
            for d in &Direction::ALL[..4] {
                if mesh.neighbor(rid, *d).is_some() {
                    for vc in 0..v {
                        credits[rid * lanes + d.index() * v + vc] = cfg.buffer_depth as u32;
                    }
                }
            }
        }
        let sim = Simulation {
            mesh,
            kernel,
            routers: (0..n)
                .map(|id| Router::with_gating(id, cfg.buffer_depth, v, cfg.gating))
                .collect(),
            source_queues: vec![VecDeque::new(); n],
            source_on: vec![true; n],
            rngs: (0..n).map(|rid| node_rng(cfg.seed, rid)).collect(),
            next_seq: vec![0; n],
            flits_injected: 0,
            cycle: 0,
            visit_reversed: false,
            transfers: Vec::new(),
            credits,
            eject: vec![EjectProgress::default(); n],
            idle_run: vec![0; n * lanes],
            fsm: vec![SleepFsm::default(); n * lanes],
            counters: vec![GatingCounters::default(); n],
            idle_ended: vec![0; lanes],
            buffered_flits: 0,
            stagnant_cycles: 0,
            neighbors: NeighborTable::new(&mesh),
            xy: (0..n)
                .map(|rid| {
                    let (x, y) = mesh.coords(rid);
                    (x as u16, y as u16)
                })
                .collect(),
            routes: (kernel == SimKernel::ActiveSet)
                .then(|| RouteTable::build(&mesh))
                .flatten(),
            active_bits: vec![0; n.div_ceil(64)],
            last_stepped: vec![0; n],
            cfg,
        };
        // Every router starts empty, hence quiescent: the worklist
        // begins empty and fills from injection. Even gated networks
        // need no initial members — an idle lane's walk to sleep is
        // replayed in closed form when the router first activates.
        debug_assert!(sim.active_bits.iter().all(|&w| w == 0));
        sim
    }

    /// The mesh being simulated.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The kernel actually executing (`Auto` already resolved).
    pub fn kernel(&self) -> SimKernel {
        self.kernel
    }

    /// Virtual channels per port.
    pub fn vcs(&self) -> usize {
        self.cfg.vcs
    }

    /// Lanes per router (`5 * vcs`).
    fn lanes(&self) -> usize {
        5 * self.cfg.vcs
    }

    /// Routers in the current worklist — the ones the next cycle will
    /// step. The reference kernel steps everything, always.
    pub fn active_router_count(&self) -> usize {
        match self.kernel {
            SimKernel::ActiveSet => self
                .active_bits
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum(),
            _ => self.mesh.len(),
        }
    }

    /// Whether router `rid`'s worklist bit is set.
    fn is_active(&self, rid: usize) -> bool {
        self.active_bits[rid / 64] & (1u64 << (rid % 64)) != 0
    }

    /// Visits routers in reverse order within each cycle. With the
    /// cycle-start credit snapshot the visit order must not change any
    /// observable result — this knob exists so tests can prove it.
    pub fn set_visit_reversed(&mut self, reversed: bool) {
        self.visit_reversed = reversed;
    }

    /// Flits currently inside the network (source queues + buffers) —
    /// with the injected/delivered counters this gives exact flit
    /// conservation when measuring from cycle 0.
    pub fn in_flight_flits(&self) -> u64 {
        let len = self.cfg.packet_len_flits;
        let queued: u64 = self
            .source_queues
            .iter()
            .flat_map(|q| q.iter())
            .map(|p| p.remaining_flits(len))
            .sum();
        let buffered: usize = self.routers.iter().map(Router::total_occupancy).sum();
        queued + buffered as u64
    }

    /// Flits injected since construction (all cycles, not just the
    /// measurement window).
    pub fn flits_injected_total(&self) -> u64 {
        self.flits_injected
    }

    /// Asserts the credit-conservation invariant: for every link, the
    /// credits held by the upstream output lane plus the flits buffered
    /// in the downstream input VC equal the per-VC buffer depth.
    ///
    /// The active-set kernel re-checks this in debug builds at the end
    /// of every cycle (so `cargo test` exercises it on all cycles of
    /// every simulated configuration); this public entry point lets
    /// integration tests assert it at arbitrary observation points in
    /// release builds too. The reference kernel rebuilds credits from
    /// the live buffers each cycle, making the invariant true by
    /// construction — calling this is then a no-op.
    pub fn check_credit_conservation(&self) {
        if self.kernel != SimKernel::ActiveSet {
            return;
        }
        let v = self.cfg.vcs;
        let lanes = self.lanes();
        let depth = self.cfg.buffer_depth as u32;
        for rid in 0..self.mesh.len() {
            for d in &Direction::ALL[..4] {
                match self.neighbors.get(rid, *d) {
                    Some(next) => {
                        for vc in 0..v {
                            let held = self.credits[rid * lanes + d.index() * v + vc];
                            let buffered = self.routers[next].occupancy(d.opposite(), vc) as u32;
                            assert_eq!(
                                held + buffered,
                                depth,
                                "credit conservation broken: router {rid} {d} vc {vc}: \
                                 {held} credits + {buffered} buffered != depth {depth}"
                            );
                        }
                    }
                    None => {
                        for vc in 0..v {
                            assert_eq!(
                                self.credits[rid * lanes + d.index() * v + vc],
                                0,
                                "edge lane must hold no credits"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Runs `warmup` cycles unmeasured, then `measure` cycles with
    /// statistics collection, and returns the stats.
    ///
    /// At the measurement boundary the idle runs *and* the sleep FSMs
    /// are reset, so the idle histograms and the in-loop gating
    /// counters describe exactly the same intervals.
    pub fn run(&mut self, warmup: u64, measure: u64) -> NetworkStats {
        let mut stats = NetworkStats::new(
            self.mesh.len(),
            self.cfg.vcs,
            NetworkStats::DEFAULT_IDLE_BINS,
        );
        for _ in 0..warmup {
            self.step(None);
        }
        // Reset idle runs and gating state so warmup does not pollute
        // the measurement. Quiescent routers only need their skip
        // markers moved to the boundary — materializing their pending
        // idle cycles would be discarded by the resets below anyway.
        self.last_stepped.fill(self.cycle);
        self.idle_run.fill(0);
        for fsm in &mut self.fsm {
            fsm.reset();
        }
        self.counters.fill(GatingCounters::default());
        // The reset re-arms threshold sleeping (`slept_this_interval`
        // clears); quiescent routers need no reactivation — their walk
        // back to sleep is replayed in closed form when they next
        // flush or reactivate ([`SleepFsm::settle_idle_bulk`]).
        for _ in 0..measure {
            self.step(Some(&mut stats));
        }
        stats.measured_cycles = measure;
        self.flush_quiescent(Some(&mut stats));
        // Close out open idle runs and collect gating counters.
        let lanes = self.lanes();
        for rid in 0..self.mesh.len() {
            for lane in 0..lanes {
                let run = std::mem::take(&mut self.idle_run[rid * lanes + lane]);
                stats.idle_histograms[rid][lane].record_open(run);
            }
            stats.gating[rid] = self.counters[rid];
        }
        stats
    }

    /// Advances one cycle.
    fn step(&mut self, mut stats: Option<&mut NetworkStats>) {
        self.cycle += 1;
        // 1. Injection: generate new packets into source queues and
        // move waiting flits into local input buffers. Identical in
        // both kernels — every RNG draw happens per node per cycle.
        let drained = self.inject(&mut stats);
        // 2+3. Establish the cycle-start credit state and run the
        // router cycles, collecting departures (reads) before applying
        // them (writes) so a flit moves one hop per cycle.
        match self.kernel {
            SimKernel::Reference => self.route_cycle_reference(&mut stats),
            _ => self.route_cycle_active(&mut stats),
        }
        // 4. Apply transfers (this is also where credits move: consumed
        // by the departing flit, returned to the upstream router of the
        // freed slot).
        self.apply_transfers(&mut stats);
        #[cfg(debug_assertions)]
        self.assert_credits_in_sync();
        // 5. Zero-progress watchdog: every transfer both moves a flit
        // and returns a credit, so "no transfers and nothing drained
        // from a source queue" is exactly the no-progress condition.
        if self.cfg.watchdog_cycles > 0 {
            if !self.transfers.is_empty() || drained > 0 || self.buffered_flits == 0 {
                self.stagnant_cycles = 0;
            } else {
                self.stagnant_cycles += 1;
                if self.stagnant_cycles >= self.cfg.watchdog_cycles {
                    self.watchdog_abort();
                }
            }
        }
    }

    /// Phase 1: packet generation and source-queue drain. Returns the
    /// number of flits moved into local input buffers (progress, for
    /// the watchdog).
    fn inject(&mut self, stats: &mut Option<&mut NetworkStats>) -> u64 {
        let n = self.mesh.len();
        let len = self.cfg.packet_len_flits;
        let vcs = self.cfg.vcs;
        let active_kernel = self.kernel == SimKernel::ActiveSet;
        let on_rate = self.cfg.injection.on_rate(self.cfg.injection_rate);
        let mut drained = 0u64;
        for src in 0..n {
            if let InjectionProcess::BurstyOnOff {
                mean_burst,
                mean_idle,
            } = self.cfg.injection
            {
                let flip = if self.source_on[src] {
                    self.rngs[src].gen_bool(1.0 / mean_burst as f64)
                } else {
                    self.rngs[src].gen_bool(1.0 / mean_idle as f64)
                };
                if flip {
                    self.source_on[src] = !self.source_on[src];
                }
            }
            let rate = if self.source_on[src] { on_rate } else { 0.0 };
            if rate > 0.0 && self.rngs[src].gen_bool(rate) {
                if let Some(dst) = self
                    .cfg
                    .pattern
                    .destination(src, &self.mesh, &mut self.rngs[src])
                {
                    if self.source_queues[src].len() >= self.cfg.source_queue_cap {
                        // Queue at cap: reject the offer. The packet
                        // never existed, so conservation stays exact.
                        if let Some(s) = stats.as_deref_mut() {
                            s.packets_dropped_at_source += 1;
                        }
                    } else {
                        let id = packet_id(src, self.next_seq[src]);
                        self.next_seq[src] += 1;
                        self.source_queues[src].push_back(SourcePacket {
                            packet_id: id,
                            dst,
                            injected_at: self.cycle,
                            sent: 0,
                            vc: self.mesh.injection_vc(id, vcs),
                        });
                        self.flits_injected += len as u64;
                        if let Some(s) = stats.as_deref_mut() {
                            s.packets_injected += 1;
                        }
                        if active_kernel {
                            // The router must be stepped *this* cycle
                            // (skipped cycles end at cycle − 1).
                            self.activate(src, self.cycle - 1, stats.as_deref_mut());
                        }
                    }
                }
            }
            // Move waiting flits into the local input VC buffer (queue
            // checked first so idle nodes never touch router memory).
            // The source is FIFO: the front packet waits for its own
            // VC even if a sibling VC has room.
            while let Some(pkt) = self.source_queues[src].front_mut() {
                if !self.routers[src].can_accept(Direction::Local, pkt.vc as usize) {
                    break;
                }
                let flit = pkt
                    .next_flit(src, len)
                    .expect("queued descriptors have flits left");
                let done = pkt.remaining_flits(len) == 0;
                if done {
                    self.source_queues[src].pop_front();
                }
                self.routers[src].accept(Direction::Local, flit);
                self.buffered_flits += 1;
                drained += 1;
                if let Some(s) = stats.as_deref_mut() {
                    s.router_activity[src].buffer_writes += 1;
                }
            }
        }
        drained
    }

    /// Phases 2+3, reference kernel: rebuild the credit state from the
    /// live buffers, step every router — the dense oracle.
    fn route_cycle_reference(&mut self, stats: &mut Option<&mut NetworkStats>) {
        let n = self.mesh.len();
        let v = self.cfg.vcs;
        let lanes = 5 * v;
        let depth = self.cfg.buffer_depth as u32;
        for rid in 0..n {
            for d in &Direction::ALL[..4] {
                for vc in 0..v {
                    self.credits[rid * lanes + d.index() * v + vc] = match self
                        .mesh
                        .neighbor(rid, *d)
                    {
                        Some(next) => depth - self.routers[next].occupancy(d.opposite(), vc) as u32,
                        None => 0,
                    };
                }
            }
        }
        let mesh = self.mesh;
        self.transfers.clear();
        for i in 0..n {
            let rid = if self.visit_reversed { n - 1 - i } else { i };
            let mut ready = [false; MAX_LANES];
            for d in Direction::ALL {
                for vc in 0..v {
                    ready[d.index() * v + vc] = match d {
                        Direction::Local => true, // ejection always sinks
                        d => self.credits[rid * lanes + d.index() * v + vc] > 0,
                    };
                }
            }
            let route = |flit: &Flit| {
                let out = mesh.route_xy(rid, flit.dst);
                RouteTarget {
                    out,
                    vc: mesh.hop_vc(rid, flit.src, flit.packet_id, out, v),
                }
            };
            let base = rid * lanes;
            let lane = PortLane {
                idle_run: &mut self.idle_run[base..base + lanes],
                fsm: &mut self.fsm[base..base + lanes],
                counters: &mut self.counters[rid],
                idle_ended: &mut self.idle_ended,
            };
            let outcome = self.routers[rid].step(route, |d, vc| ready[d.index() * v + vc], lane);

            if let Some(s) = stats.as_deref_mut() {
                s.router_activity[rid].cycles += 1;
                s.router_activity[rid].arbitrations += outcome.arbitrations;
                for (l, &run) in self.idle_ended[..lanes].iter().enumerate() {
                    s.idle_histograms[rid][l].record(run);
                }
            }

            for dep in outcome.departures() {
                if let Some(s) = stats.as_deref_mut() {
                    s.router_activity[rid].crossbar_traversals += 1;
                    s.router_activity[rid].buffer_reads += 1;
                    if dep.output != Direction::Local {
                        s.router_activity[rid].link_traversals += 1;
                    }
                }
                self.transfers.push(Transfer {
                    from: rid as u32,
                    input: dep.input,
                    input_vc: dep.input_vc,
                    output: dep.output,
                    flit: dep.flit,
                });
            }
        }
    }

    /// Phases 2+3, active-set kernel: the credit state is already
    /// current (maintained incrementally), so only the worklist is
    /// stepped — in router-index order straight off the bitset, with
    /// lazy credit reads and table-driven routing
    /// ([`Router::step_fast`]).
    fn route_cycle_active(&mut self, stats: &mut Option<&mut NetworkStats>) {
        let visit_reversed = self.visit_reversed;
        let cycle = self.cycle;
        let mesh = self.mesh;
        let v = self.cfg.vcs;
        let lanes = 5 * v;
        // Split borrows once: the per-router loop needs disjoint
        // mutable access to routers / SoA lanes / transfers while the
        // readiness closure reads the credit counters.
        let Simulation {
            routers,
            source_queues,
            transfers,
            credits,
            idle_run,
            fsm,
            counters,
            idle_ended,
            routes,
            xy,
            active_bits,
            last_stepped,
            ..
        } = self;
        let routes = routes.as_ref();
        let at = |rid: usize| {
            let (x, y) = xy[rid];
            (x as usize, y as usize)
        };
        transfers.clear();

        let words = active_bits.len();
        for wi in 0..words {
            let w = if visit_reversed { words - 1 - wi } else { wi };
            let mut bits = active_bits[w];
            while bits != 0 {
                let b = if visit_reversed {
                    63 - bits.leading_zeros() as usize
                } else {
                    bits.trailing_zeros() as usize
                };
                bits &= !(1u64 << b);
                let rid = w * 64 + b;

                let route = |flit: &Flit| {
                    let out = match routes {
                        Some(t) => t.route(rid, flit.dst),
                        None => mesh.route_xy(rid, flit.dst),
                    };
                    RouteTarget {
                        out,
                        vc: mesh.hop_vc_at(at(rid), at(flit.src), flit.packet_id, out, v),
                    }
                };
                // Lazy credit reads: only evaluated for lanes a flit
                // actually wants (ejection always sinks; edge lanes
                // hold zero credits, so no-link and no-room collapse
                // into one check).
                let base = rid * lanes;
                let ready = |d: Direction, vc: usize| match d {
                    Direction::Local => true,
                    d => credits[base + d.index() * v + vc] > 0,
                };
                let lane = PortLane {
                    idle_run: &mut idle_run[base..base + lanes],
                    fsm: &mut fsm[base..base + lanes],
                    counters: &mut counters[rid],
                    idle_ended,
                };
                let mut departed = 0u64;
                let mut link_departed = 0u64;
                let outcome = routers[rid].step_fast(route, ready, lane, |dep| {
                    departed += 1;
                    if dep.output != Direction::Local {
                        link_departed += 1;
                    }
                    transfers.push(Transfer {
                        from: rid as u32,
                        input: dep.input,
                        input_vc: dep.input_vc,
                        output: dep.output,
                        flit: dep.flit,
                    });
                });

                if let Some(s) = stats.as_deref_mut() {
                    let a = &mut s.router_activity[rid];
                    a.cycles += 1;
                    a.arbitrations += outcome.arbitrations;
                    a.crossbar_traversals += departed;
                    a.buffer_reads += departed;
                    a.link_traversals += link_departed;
                    for (l, &run) in idle_ended[..lanes].iter().enumerate() {
                        // Guarded: most stepped lanes end no idle run,
                        // and even `record(0)`'s early return costs a
                        // call per lane per cycle on the hot path.
                        if run > 0 {
                            s.idle_histograms[rid][l].record(run);
                        }
                    }
                }

                // Retire the router if it just went quiescent (nothing
                // this cycle's remaining steps can change that — only
                // phase-4 arrivals can, and they re-activate it). An
                // empty router's sleep FSMs are always bulk-replayable
                // — even mid-threshold-walk — so buffers, owners and
                // the source queue are the whole predicate.
                if routers[rid].is_quiet() && source_queues[rid].is_empty() {
                    active_bits[w] &= !(1u64 << b);
                    last_stepped[rid] = cycle;
                }
            }
        }
    }

    /// Phase 4: apply the collected transfers (ejections and link
    /// crossings), moving the credits and activating receivers in
    /// active-set mode.
    fn apply_transfers(&mut self, stats: &mut Option<&mut NetworkStats>) {
        let active_kernel = self.kernel == SimKernel::ActiveSet;
        let v = self.cfg.vcs;
        let lanes = 5 * v;
        for ti in 0..self.transfers.len() {
            let t = self.transfers[ti];
            let from = t.from as usize;
            // The pop freed a slot in `from`'s input VC: return the
            // credit to the upstream router that fills it (injection
            // from the local source checks the buffer directly, so the
            // Local input has no credit counter).
            if active_kernel && t.input != Direction::Local {
                let up = self
                    .neighbors
                    .get(from, t.input)
                    .expect("buffered flits arrived over an existing link");
                self.credits[up * lanes + t.input.opposite().index() * v + t.input_vc as usize] +=
                    1;
            }
            match t.output {
                Direction::Local => {
                    self.buffered_flits -= 1;
                    if cfg!(debug_assertions) || self.cfg.validate_ejection {
                        self.validate_ejection(from, &t.flit);
                    }
                    if let Some(s) = stats.as_deref_mut() {
                        s.flits_delivered += 1;
                        if t.flit.is_tail {
                            s.packets_delivered += 1;
                            let latency = self.cycle - t.flit.injected_at;
                            s.latency_sum += latency;
                            s.latency_max = s.latency_max.max(latency);
                        }
                    }
                }
                d => {
                    let next = if active_kernel {
                        self.neighbors.get(from, d)
                    } else {
                        self.mesh.neighbor(from, d)
                    }
                    .expect("departures only target existing neighbours");
                    self.routers[next].accept(d.opposite(), t.flit);
                    if active_kernel {
                        // Consume the credit for the slot just filled.
                        self.credits[from * lanes + d.index() * v + t.flit.vc as usize] -= 1;
                        // The receiver was already accounted idle for
                        // this whole cycle; it steps from the next one.
                        self.activate(next, self.cycle, stats.as_deref_mut());
                    }
                    if let Some(s) = stats.as_deref_mut() {
                        s.router_activity[next].buffer_writes += 1;
                    }
                }
            }
        }
    }

    /// Puts a quiescent router back in the worklist, first settling the
    /// cycles it skipped (`through` is the last cycle it should be
    /// accounted as idle; phase-1 activations pass `cycle − 1` because
    /// the router still steps this cycle, phase-4 activations pass
    /// `cycle` because it only steps from the next one).
    fn activate(&mut self, rid: usize, through: u64, stats: Option<&mut NetworkStats>) {
        if self.is_active(rid) {
            return;
        }
        let skipped = through - self.last_stepped[rid];
        self.account_skipped(rid, skipped, stats);
        self.last_stepped[rid] = through;
        self.active_bits[rid / 64] |= 1u64 << (rid % 64);
    }

    /// Bulk-settles `skipped` consecutive idle cycles for a quiescent
    /// router in O(1): exactly what the dense loop would have done —
    /// idle runs grow, awake lanes arbitrate, and sleep FSMs replay
    /// their (closed-form) future, including a threshold walk that
    /// asserts sleep partway through the gap — without touching the
    /// router.
    fn account_skipped(&mut self, rid: usize, skipped: u64, stats: Option<&mut NetworkStats>) {
        if skipped == 0 {
            return;
        }
        let lanes = self.lanes();
        let base = rid * lanes;
        let arbitrations = match &self.cfg.gating {
            // Ungated: every free lane arbitrates every cycle.
            None => {
                for run in &mut self.idle_run[base..base + lanes] {
                    *run += skipped;
                }
                lanes as u64 * skipped
            }
            Some(cfg) => {
                let th = cfg.threshold();
                let counters = &mut self.counters[rid];
                let mut arbitrations = 0;
                for (run, fsm) in self.idle_run[base..base + lanes]
                    .iter_mut()
                    .zip(&mut self.fsm[base..base + lanes])
                {
                    let before = *run;
                    *run += skipped;
                    arbitrations += fsm.settle_idle_bulk(skipped, before, th, counters);
                }
                arbitrations
            }
        };
        if let Some(s) = stats {
            s.router_activity[rid].cycles += skipped;
            s.router_activity[rid].arbitrations += arbitrations;
        }
    }

    /// Settles all quiescent routers up to the current cycle (window
    /// boundaries and end-of-run).
    fn flush_quiescent(&mut self, mut stats: Option<&mut NetworkStats>) {
        if self.kernel != SimKernel::ActiveSet {
            return;
        }
        let cycle = self.cycle;
        for rid in 0..self.mesh.len() {
            if !self.is_active(rid) {
                let skipped = cycle - self.last_stepped[rid];
                self.account_skipped(rid, skipped, stats.as_deref_mut());
                self.last_stepped[rid] = cycle;
            }
        }
    }

    /// Debug-build invariant: the incrementally maintained credit
    /// counters must always match the live downstream buffer
    /// occupancies at cycle end.
    #[cfg(debug_assertions)]
    fn assert_credits_in_sync(&self) {
        self.check_credit_conservation();
    }

    /// The watchdog fired: panic with a per-lane diagnostic of every
    /// blocked flit so a deadlock regression names the cycle's
    /// participants instead of hanging CI.
    fn watchdog_abort(&self) -> ! {
        let v = self.cfg.vcs;
        let lanes = self.lanes();
        let mut report = String::new();
        let mut shown = 0usize;
        let mut blocked = 0usize;
        for (rid, r) in self.routers.iter().enumerate() {
            for d in Direction::ALL {
                for vc in 0..v {
                    let occ = r.occupancy(d, vc);
                    if occ == 0 {
                        continue;
                    }
                    blocked += 1;
                    if shown < 8 {
                        let credit = self.credits[rid * lanes + d.index() * v + vc];
                        report.push_str(&format!(
                            "\n  router {rid} input {d} vc {vc}: {occ} flit(s) waiting \
                             (upstream-side credit counter: {credit})"
                        ));
                        shown += 1;
                    }
                }
            }
        }
        panic!(
            "watchdog: no flit moved and no credit returned for {} cycles at cycle {} \
             with {} flits buffered ({} occupied input VCs, first {} shown):{}\n\
             (torus DOR with vcs = 1 has no dateline escape — run with vcs >= 2)",
            self.cfg.watchdog_cycles, self.cycle, self.buffered_flits, blocked, shown, report
        );
    }

    /// Asserts in-order, contiguous, complete per-packet delivery.
    fn validate_ejection(&mut self, rid: usize, flit: &Flit) {
        assert_eq!(flit.dst, rid, "flit ejected at the wrong router");
        let progress = &mut self.eject[rid];
        match progress.current {
            None => {
                assert!(
                    flit.is_head,
                    "packet {} ejected body flit before its head at router {rid}",
                    flit.packet_id
                );
                if flit.is_tail {
                    assert_eq!(self.cfg.packet_len_flits, 1);
                } else {
                    progress.current = Some((flit.packet_id, 1));
                }
            }
            Some((pkt, seen)) => {
                assert_eq!(
                    flit.packet_id, pkt,
                    "packet interleaving at router {rid} ejection port"
                );
                assert!(!flit.is_head, "duplicate head flit in packet {pkt}");
                let seen = seen + 1;
                if flit.is_tail {
                    assert_eq!(
                        seen, self.cfg.packet_len_flits,
                        "packet {pkt} delivered with the wrong flit count"
                    );
                    progress.current = None;
                } else {
                    progress.current = Some((pkt, seen));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sleep::SleepConfig;
    use lnoc_power::gating::{energy_from_counters, evaluate_policy, GatingParams, GatingPolicy};
    use lnoc_tech::units::{Hertz, Joules, Watts};

    fn base_cfg() -> MeshConfig {
        MeshConfig {
            width: 4,
            height: 4,
            injection_rate: 0.05,
            pattern: TrafficPattern::UniformRandom,
            packet_len_flits: 4,
            buffer_depth: 4,
            seed: 42,
            ..MeshConfig::default()
        }
    }

    #[test]
    fn packets_flow_and_are_conserved() {
        // Measure from cycle 0: packets straddling a warmup/measure
        // boundary would otherwise split their flit counts across the
        // unmeasured and measured windows and break exact conservation.
        let mut sim = Simulation::new(base_cfg());
        let stats = sim.run(0, 3500);
        assert!(stats.packets_delivered > 100, "{}", stats.packets_delivered);
        // Flits delivered = packets × packet length (within in-flight
        // slack of injected − delivered).
        assert!(
            stats.flits_delivered >= stats.packets_delivered * 4,
            "every delivered packet contributed all its flits"
        );
        assert!(stats.packets_injected >= stats.packets_delivered);
        // Exact conservation: injected = delivered + still in flight.
        assert_eq!(
            sim.flits_injected_total(),
            stats.flits_delivered + sim.in_flight_flits()
        );
    }

    #[test]
    fn packets_flow_with_virtual_channels() {
        for vcs in [2usize, 4] {
            let mut sim = Simulation::new(MeshConfig { vcs, ..base_cfg() });
            let stats = sim.run(0, 3000);
            assert!(
                stats.packets_delivered > 100,
                "vcs {vcs}: {}",
                stats.packets_delivered
            );
            assert_eq!(
                sim.flits_injected_total(),
                stats.flits_delivered + sim.in_flight_flits()
            );
            sim.check_credit_conservation();
        }
    }

    #[test]
    fn latency_at_least_hop_count() {
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: 0.01,
            ..base_cfg()
        });
        let stats = sim.run(200, 3000);
        // Minimum latency: ≥ packet length (serialization) at zero load.
        assert!(stats.avg_latency() >= 4.0, "{}", stats.avg_latency());
        assert!(stats.avg_latency() < 60.0, "{}", stats.avg_latency());
    }

    #[test]
    fn higher_load_means_higher_latency_and_throughput() {
        let run = |rate: f64| {
            let mut sim = Simulation::new(MeshConfig {
                injection_rate: rate,
                seed: 9,
                ..base_cfg()
            });
            sim.run(500, 4000)
        };
        let light = run(0.01);
        let heavy = run(0.08);
        assert!(heavy.throughput() > light.throughput());
        assert!(heavy.avg_latency() > light.avg_latency());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = Simulation::new(base_cfg());
            let s = sim.run(100, 1000);
            (s.packets_delivered, s.flits_delivered, s.latency_sum)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn router_visit_order_is_irrelevant() {
        // With the cycle-start credit snapshot, stepping routers in
        // reverse (or any) order must produce bit-identical statistics
        // — in both kernels and at any VC count. Before the snapshot
        // fix, downstream readiness read live buffers that earlier
        // routers had already popped, so behaviour depended on
        // iteration order.
        for kernel in [SimKernel::ActiveSet, SimKernel::Reference] {
            for cfg in [
                base_cfg(),
                MeshConfig {
                    injection_rate: 0.12,
                    pattern: TrafficPattern::Transpose,
                    seed: 3,
                    vcs: 2,
                    ..base_cfg()
                },
                MeshConfig {
                    wrap: true,
                    pattern: TrafficPattern::Tornado,
                    injection_rate: 0.03,
                    vcs: 2,
                    ..base_cfg()
                },
                MeshConfig {
                    gating: Some(SleepConfig {
                        policy: GatingPolicy::IdleThreshold(3),
                        wake_latency: 2,
                    }),
                    injection_rate: 0.06,
                    seed: 7,
                    vcs: 4,
                    ..base_cfg()
                },
            ] {
                let cfg = MeshConfig { kernel, ..cfg };
                let mut fwd = Simulation::new(cfg.clone());
                let mut rev = Simulation::new(cfg);
                rev.set_visit_reversed(true);
                let s_fwd = fwd.run(100, 1500);
                let s_rev = rev.run(100, 1500);
                assert_eq!(s_fwd, s_rev);
            }
        }
    }

    #[test]
    fn idle_histograms_fill_under_light_load() {
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: 0.02,
            ..base_cfg()
        });
        let stats = sim.run(200, 2000);
        let merged = stats.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS);
        assert!(merged.interval_count() > 0);
        // Under 2 % load, most output-cycles are idle.
        let idle_frac = merged.total_idle_cycles() as f64 / (2000.0 * 16.0 * 5.0);
        assert!(idle_frac > 0.5, "idle fraction {idle_frac}");
    }

    #[test]
    fn utilization_tracks_load() {
        let mut light_sim = Simulation::new(MeshConfig {
            injection_rate: 0.01,
            ..base_cfg()
        });
        let mut heavy_sim = Simulation::new(MeshConfig {
            injection_rate: 0.10,
            ..base_cfg()
        });
        let light = light_sim.run(300, 2000).crossbar_utilization();
        let heavy = heavy_sim.run(300, 2000).crossbar_utilization();
        assert!(heavy > 2.0 * light, "light {light}, heavy {heavy}");
    }

    #[test]
    #[should_panic(expected = "at least 2×2")]
    fn tiny_mesh_rejected() {
        let _ = Simulation::new(MeshConfig {
            width: 1,
            ..base_cfg()
        });
    }

    #[test]
    #[should_panic(expected = "Oracle")]
    fn oracle_rejected_in_loop() {
        let _ = Simulation::new(MeshConfig {
            gating: Some(SleepConfig {
                policy: GatingPolicy::Oracle,
                wake_latency: 1,
            }),
            ..base_cfg()
        });
    }

    #[test]
    #[should_panic(expected = "source queues")]
    fn zero_source_queue_cap_rejected() {
        let _ = Simulation::new(MeshConfig {
            source_queue_cap: 0,
            ..base_cfg()
        });
    }

    #[test]
    #[should_panic(expected = "vcs must be in")]
    fn zero_vcs_rejected() {
        let _ = Simulation::new(MeshConfig {
            vcs: 0,
            ..base_cfg()
        });
    }

    #[test]
    #[should_panic(expected = "vcs must be in")]
    fn oversized_vcs_rejected() {
        let _ = Simulation::new(MeshConfig {
            vcs: MAX_VCS + 1,
            ..base_cfg()
        });
    }

    #[test]
    fn all_patterns_deliver() {
        for pattern in TrafficPattern::ALL {
            let mut sim = Simulation::new(MeshConfig {
                pattern,
                injection_rate: 0.03,
                ..base_cfg()
            });
            let stats = sim.run(300, 2000);
            assert!(
                stats.packets_delivered > 10,
                "{pattern:?} delivered {}",
                stats.packets_delivered
            );
        }
    }

    #[test]
    fn torus_delivers_and_shortens_paths() {
        let run = |wrap: bool| {
            let mut sim = Simulation::new(MeshConfig {
                wrap,
                injection_rate: 0.02,
                pattern: TrafficPattern::Tornado,
                seed: 17,
                ..base_cfg()
            });
            sim.run(300, 3000)
        };
        let mesh = run(false);
        let torus = run(true);
        assert!(mesh.packets_delivered > 50);
        assert!(torus.packets_delivered > 50);
        // Tornado on a 4-wide torus is a single wraparound-assisted hop
        // pattern; the mesh must walk the long way.
        assert!(
            torus.avg_latency() < mesh.avg_latency(),
            "torus {:.1} vs mesh {:.1}",
            torus.avg_latency(),
            mesh.avg_latency()
        );
    }

    #[test]
    fn torus_tornado_saturation_drains_with_dateline_vcs() {
        // The acceptance scenario: Tornado at saturation on a wrapped
        // 16×16 with 2 VCs (dateline switching) must make sustained
        // progress without tripping the watchdog. At vcs = 1 the same
        // load wedges wormhole DOR on the rings.
        let mut sim = Simulation::new(MeshConfig {
            width: 16,
            height: 16,
            wrap: true,
            vcs: 2,
            pattern: TrafficPattern::Tornado,
            injection_rate: 1.0,
            source_queue_cap: 4,
            watchdog_cycles: 2_000,
            seed: 9,
            ..base_cfg()
        });
        let stats = sim.run(0, 6000);
        assert!(
            stats.packets_delivered > 2_000,
            "saturated torus must stream packets, got {}",
            stats.packets_delivered
        );
        sim.check_credit_conservation();
    }

    #[test]
    fn watchdog_names_the_blocked_lanes_on_deadlock() {
        // vcs = 1 torus DOR has no dateline escape: Tornado at
        // saturation wedges the rings and the watchdog must abort with
        // the diagnostic instead of spinning.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut sim = Simulation::new(MeshConfig {
                width: 8,
                height: 8,
                wrap: true,
                vcs: 1,
                pattern: TrafficPattern::Tornado,
                injection_rate: 1.0,
                packet_len_flits: 8,
                source_queue_cap: 8,
                watchdog_cycles: 500,
                seed: 5,
                ..base_cfg()
            });
            sim.run(0, 50_000)
        }));
        let msg = *result
            .expect_err("saturated vcs=1 torus tornado must deadlock")
            .downcast::<String>()
            .expect("panic carries the diagnostic string");
        assert!(msg.contains("watchdog"), "{msg}");
        assert!(msg.contains("router"), "diagnostic names a router: {msg}");
        assert!(msg.contains("vc"), "diagnostic names a VC: {msg}");
    }

    #[test]
    fn bursty_injection_conserves_and_matches_load() {
        let mut sim = Simulation::new(MeshConfig {
            injection: InjectionProcess::BurstyOnOff {
                mean_burst: 20,
                mean_idle: 60,
            },
            injection_rate: 0.04,
            seed: 23,
            ..base_cfg()
        });
        let stats = sim.run(0, 8000);
        assert_eq!(
            sim.flits_injected_total(),
            stats.flits_delivered + sim.in_flight_flits()
        );
        // Offered load stays near the configured average rate.
        let offered = stats.packets_injected as f64 / (8000.0 * 16.0);
        assert!(
            (offered - 0.04).abs() < 0.01,
            "offered load {offered} vs configured 0.04"
        );
    }

    #[test]
    fn capped_source_queue_drops_and_stays_exact() {
        // A tiny cap under a saturating hotspot load must reject offers
        // without breaking flit conservation.
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: 0.5,
            pattern: TrafficPattern::Hotspot,
            source_queue_cap: 2,
            seed: 3,
            ..base_cfg()
        });
        let stats = sim.run(0, 2000);
        assert!(
            stats.packets_dropped_at_source > 0,
            "saturating load must hit the cap"
        );
        assert_eq!(
            sim.flits_injected_total(),
            stats.flits_delivered + sim.in_flight_flits()
        );
        assert_eq!(
            stats.packets_injected * 4,
            sim.flits_injected_total(),
            "dropped packets contribute no flits"
        );
        // The source queues themselves respect the cap.
        assert!(sim.source_queues.iter().all(|q| q.len() <= 2));
    }

    #[test]
    fn gating_stalls_traffic_and_matches_offline_energy() {
        let params = GatingParams {
            p_idle_awake: Watts(10.0e-6),
            p_standby: Watts(1.0e-6),
            e_transition: Joules(9.0e-15),
            wake_latency_cycles: 2,
        };
        let clock = Hertz(3.0e9);
        let policy = GatingPolicy::IdleThreshold(params.min_idle_cycles(clock));

        let gated_cfg = MeshConfig {
            gating: Some(SleepConfig {
                policy,
                wake_latency: params.wake_latency_cycles,
            }),
            injection_rate: 0.03,
            ..base_cfg()
        };
        let mut gated = Simulation::new(gated_cfg.clone());
        let g = gated.run(500, 6000);
        let mut ungated = Simulation::new(MeshConfig {
            gating: None,
            ..gated_cfg
        });
        let u = ungated.run(500, 6000);

        // Wake latency back-pressures real traffic.
        let counters = g.total_gating_counters();
        assert!(counters.sleep_entries > 100, "{counters:?}");
        assert!(counters.wake_stall_cycles > 0, "{counters:?}");
        assert!(
            g.avg_latency() > u.avg_latency(),
            "gated {:.2} must exceed ungated {:.2}",
            g.avg_latency(),
            u.avg_latency()
        );

        // In-loop energy agrees with the offline model evaluated on the
        // same run's histograms.
        let in_loop = energy_from_counters(&counters, &params, clock);
        let offline = evaluate_policy(
            &g.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS),
            &params,
            policy,
            clock,
        );
        let rel =
            (in_loop.energy_policy.0 - offline.energy_policy.0).abs() / offline.energy_policy.0;
        assert!(rel < 0.05, "in-loop vs offline disagreement {rel:.4}");
        let rel_never =
            (in_loop.energy_never.0 - offline.energy_never.0).abs() / offline.energy_never.0;
        assert!(rel_never < 1e-9, "idle-cycle totals must match exactly");
    }

    #[test]
    fn per_vc_gating_sleeps_finer_than_per_port() {
        // Same traffic, same policy: with 2 VCs the sleep controllers
        // see twice the lanes, and an empty VC bank can park while its
        // sibling carries a worm — so the asleep fraction of all
        // lane-cycles must not drop when granularity rises.
        let run = |vcs: usize| {
            let mut sim = Simulation::new(MeshConfig {
                vcs,
                injection_rate: 0.04,
                gating: Some(SleepConfig {
                    policy: GatingPolicy::IdleThreshold(4),
                    wake_latency: 1,
                }),
                seed: 31,
                ..base_cfg()
            });
            let stats = sim.run(300, 5000);
            let k = stats.total_gating_counters();
            let lane_cycles = (5 * vcs) as f64 * 16.0 * 5000.0;
            (k.cycles_asleep as f64 / lane_cycles, k.sleep_entries)
        };
        let (frac1, _) = run(1);
        let (frac2, entries2) = run(2);
        assert!(entries2 > 0);
        assert!(
            frac2 >= frac1 * 0.95,
            "finer gating granularity lost sleep coverage: {frac1:.3} -> {frac2:.3}"
        );
    }
}
