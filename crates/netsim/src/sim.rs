//! The cycle loop: injection, router stepping, link transfer, ejection.
//!
//! Two interchangeable kernels execute the loop (selected by
//! [`MeshConfig::kernel`]):
//!
//! * [`SimKernel::Reference`] — the dense oracle: every router is
//!   stepped every cycle and the input-occupancy snapshot is rebuilt
//!   O(5·n) per cycle. Simple, obviously correct, slow.
//! * [`SimKernel::ActiveSet`] — the production kernel: a worklist of
//!   routers that can possibly do work this cycle (buffered flits, a
//!   port held mid-packet, a waiting source packet, or a sleep FSM
//!   still in motion). Quiescent routers are skipped entirely; their
//!   idle cycles are accounted in O(1) bulk when they reactivate or
//!   the window closes, and the occupancy snapshot is maintained
//!   incrementally on accept/pop instead of rebuilt.
//!
//! The two kernels produce **bit-identical [`NetworkStats`]** for the
//! same [`MeshConfig`]: all RNG draws (injection, bursty flips,
//! destinations) happen per node per cycle in both kernels, and the
//! active-set kernel only skips work that draws no randomness and whose
//! effect is a closed-form function of the skipped cycle count. The
//! kernel-equivalence property tests pin this across traffic patterns,
//! injection processes, topologies, gating policies and visit order.
//!
//! Correctness notes:
//!
//! * Downstream readiness is evaluated against a snapshot of all input
//!   buffer occupancies taken once per cycle (the credit state at cycle
//!   start), so results are independent of the order routers are
//!   visited in — see [`Simulation::set_visit_reversed`] and the
//!   order-independence test.
//! * Ejection order is validated on the fly: every packet must arrive
//!   at its destination head-first, contiguously, with exactly
//!   `packet_len_flits` flits. The check is always on in debug builds
//!   and behind [`MeshConfig::validate_ejection`] in release, so sweep
//!   binaries do not pay per-flit assertion cost.
//! * The per-cycle scratch (transfers, occupancy snapshot, worklist) is
//!   reused across cycles and [`Router::step`] is allocation-free, so
//!   the steady-state loop performs no heap allocation.

use crate::router::{PortLane, Router};
use crate::sleep::{SleepConfig, SleepFsm};
use crate::stats::NetworkStats;
use crate::topology::{Direction, Mesh, NeighborTable, RouteTable};
use crate::traffic::{Flit, InjectionProcess, SourcePacket, TrafficPattern};
use lnoc_power::gating::{GatingCounters, GatingPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which cycle-loop kernel executes the simulation.
///
/// Both kernels produce bit-identical [`NetworkStats`] for the same
/// seed; they differ only in speed. `Reference` is retained as the
/// oracle the fast kernel is tested against (the same playbook as the
/// circuit engine's `SolverKind::Reference`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SimKernel {
    /// Choose automatically. Currently always resolves to `ActiveSet` —
    /// the kernels are result-identical, so there is no trade-off to
    /// weigh.
    #[default]
    Auto,
    /// Worklist kernel: only routers that can possibly do work are
    /// stepped; quiescent routers are bulk-accounted in O(1) when they
    /// reactivate.
    ActiveSet,
    /// Dense oracle: every router stepped every cycle, snapshot rebuilt
    /// O(5·n) per cycle — the seed implementation kept verbatim.
    Reference,
}

impl SimKernel {
    /// Resolves `Auto` to the concrete kernel that will run.
    pub fn resolve(self) -> SimKernel {
        match self {
            SimKernel::Auto => SimKernel::ActiveSet,
            k => k,
        }
    }

    /// Short name for reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            SimKernel::Auto => "auto",
            SimKernel::ActiveSet => "active-set",
            SimKernel::Reference => "reference",
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Mesh width.
    pub width: usize,
    /// Mesh height.
    pub height: usize,
    /// Mean packet injection probability per node per cycle.
    pub injection_rate: f64,
    /// Destination pattern.
    pub pattern: TrafficPattern,
    /// Flits per packet.
    pub packet_len_flits: usize,
    /// Input buffer depth in flits.
    pub buffer_depth: usize,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Torus wraparound links (see [`Mesh`] for the deadlock caveat).
    pub wrap: bool,
    /// Temporal injection process (Bernoulli or bursty ON–OFF).
    pub injection: InjectionProcess,
    /// In-loop power gating of router output ports; `None` simulates
    /// ungated hardware (and skips all gating bookkeeping).
    pub gating: Option<SleepConfig>,
    /// Cycle-loop kernel (see [`SimKernel`]).
    pub kernel: SimKernel,
    /// Run the per-flit in-order ejection validation in release builds
    /// too. Debug builds (and therefore `cargo test`) always validate;
    /// release sweeps default to skipping the assertion cost.
    pub validate_ejection: bool,
    /// Maximum packets a node's source queue holds (≥ 1). Offers made
    /// while the queue is full are rejected and counted in
    /// [`NetworkStats::packets_dropped_at_source`] — without the cap, a
    /// saturated network grows source queues (and memory) without
    /// bound.
    pub source_queue_cap: usize,
}

impl MeshConfig {
    /// Default [`MeshConfig::source_queue_cap`]: deep enough that drops
    /// only happen under sustained saturation.
    pub const DEFAULT_SOURCE_QUEUE_CAP: usize = 64;
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            width: 4,
            height: 4,
            injection_rate: 0.05,
            pattern: TrafficPattern::UniformRandom,
            packet_len_flits: 4,
            buffer_depth: 4,
            seed: 1,
            wrap: false,
            injection: InjectionProcess::Bernoulli,
            gating: None,
            kernel: SimKernel::Auto,
            validate_ejection: false,
            source_queue_cap: MeshConfig::DEFAULT_SOURCE_QUEUE_CAP,
        }
    }
}

/// Per-destination ejection progress, for on-the-fly validation of
/// in-order, contiguous packet delivery.
#[derive(Debug, Clone, Copy, Default)]
struct EjectProgress {
    current: Option<(u64, usize)>,
}

/// One flit crossing a link (or ejecting) this cycle, recorded during
/// router stepping and applied afterwards so a flit moves one hop per
/// cycle. Carries the input port it was popped from so the active-set
/// kernel can decrement its incremental occupancy snapshot.
#[derive(Debug, Clone, Copy)]
struct Transfer {
    from: u32,
    input: Direction,
    output: Direction,
    flit: Flit,
}

/// A running mesh simulation.
#[derive(Debug)]
pub struct Simulation {
    cfg: MeshConfig,
    /// The resolved kernel actually executing (`Auto` already mapped).
    kernel: SimKernel,
    mesh: Mesh,
    routers: Vec<Router>,
    /// Source queues: packet descriptors wait here until the local port
    /// accepts; flits are synthesized on acceptance.
    source_queues: Vec<VecDeque<SourcePacket>>,
    /// Per-node ON/OFF state of the bursty injection process.
    source_on: Vec<bool>,
    rng: StdRng,
    next_packet_id: u64,
    flits_injected: u64,
    cycle: u64,
    visit_reversed: bool,
    /// Reused per-cycle scratch: departures waiting to be applied.
    transfers: Vec<Transfer>,
    /// Input occupancy snapshot, `router * 5 + port` — the cycle-start
    /// credit state. The reference kernel rebuilds it every cycle; the
    /// active-set kernel maintains it incrementally on accept/pop.
    occupancy: Vec<u32>,
    eject: Vec<EjectProgress>,

    // ---- SoA per-port state (indexed `router * 5 + port`) ----
    /// Consecutive idle cycles per output port.
    idle_run: Vec<u64>,
    /// Sleep FSM per output port.
    fsm: Vec<SleepFsm>,
    /// Gating counters per router (all five ports summed).
    counters: Vec<GatingCounters>,

    // ---- Active-set kernel state ----
    neighbors: NeighborTable,
    routes: Option<RouteTable>,
    /// The worklist as a bitset (bit `rid` set ⇔ router `rid` steps
    /// this cycle). A bitset instead of a list keeps the traversal in
    /// router-index order — cache-linear over the router array and the
    /// SoA lanes — and makes membership tests one AND.
    active_bits: Vec<u64>,
    /// Last cycle a (now quiescent) router was stepped or accounted
    /// through; the gap to the current cycle is its pending bulk-idle
    /// accounting.
    last_stepped: Vec<u64>,
}

impl Simulation {
    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (empty mesh, zero-length
    /// packets, zero buffers, a zero source-queue cap, an
    /// [`GatingPolicy::Oracle`] in-loop policy — the oracle needs
    /// future knowledge and only exists offline — or a bursty process
    /// with zero mean dwell times).
    pub fn new(cfg: MeshConfig) -> Self {
        assert!(
            cfg.width >= 2 && cfg.height >= 2,
            "mesh must be at least 2×2"
        );
        assert!(cfg.packet_len_flits >= 1, "packets need at least one flit");
        assert!(cfg.buffer_depth >= 1, "buffers need at least one slot");
        assert!(
            cfg.source_queue_cap >= 1,
            "source queues need room for at least one packet"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.injection_rate),
            "injection rate is a probability"
        );
        if let Some(gating) = &cfg.gating {
            assert!(
                gating.policy != GatingPolicy::Oracle,
                "the Oracle policy needs future knowledge; it exists only offline"
            );
        }
        if let InjectionProcess::BurstyOnOff {
            mean_burst,
            mean_idle,
        } = cfg.injection
        {
            assert!(
                mean_burst >= 1 && mean_idle >= 1,
                "bursty dwell times must be at least one cycle"
            );
            let duty = mean_burst as f64 / (mean_burst + mean_idle) as f64;
            assert!(
                cfg.injection_rate <= duty,
                "injection rate {} exceeds the ON duty cycle {duty:.3}; the bursty \
                 source saturates and cannot offer the configured load",
                cfg.injection_rate
            );
        }
        let mesh = Mesh {
            width: cfg.width,
            height: cfg.height,
            wrap: cfg.wrap,
        };
        let n = mesh.len();
        let kernel = cfg.kernel.resolve();
        let sim = Simulation {
            mesh,
            kernel,
            routers: (0..n)
                .map(|id| Router::with_gating(id, cfg.buffer_depth, cfg.gating))
                .collect(),
            source_queues: vec![VecDeque::new(); n],
            source_on: vec![true; n],
            rng: StdRng::seed_from_u64(cfg.seed),
            next_packet_id: 0,
            flits_injected: 0,
            cycle: 0,
            visit_reversed: false,
            transfers: Vec::new(),
            occupancy: vec![0; n * 5],
            eject: vec![EjectProgress::default(); n],
            idle_run: vec![0; n * 5],
            fsm: vec![SleepFsm::default(); n * 5],
            counters: vec![GatingCounters::default(); n],
            neighbors: NeighborTable::new(&mesh),
            routes: (kernel == SimKernel::ActiveSet)
                .then(|| RouteTable::build(&mesh))
                .flatten(),
            active_bits: vec![0; n.div_ceil(64)],
            last_stepped: vec![0; n],
            cfg,
        };
        // Every router starts empty, hence quiescent: the worklist
        // begins empty and fills from injection. Even gated networks
        // need no initial members — an idle port's walk to sleep is
        // replayed in closed form when the router first activates.
        debug_assert!(sim.active_bits.iter().all(|&w| w == 0));
        sim
    }

    /// The mesh being simulated.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The kernel actually executing (`Auto` already resolved).
    pub fn kernel(&self) -> SimKernel {
        self.kernel
    }

    /// Routers in the current worklist — the ones the next cycle will
    /// step. The reference kernel steps everything, always.
    pub fn active_router_count(&self) -> usize {
        match self.kernel {
            SimKernel::ActiveSet => self
                .active_bits
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum(),
            _ => self.mesh.len(),
        }
    }

    /// Whether router `rid`'s worklist bit is set.
    fn is_active(&self, rid: usize) -> bool {
        self.active_bits[rid / 64] & (1u64 << (rid % 64)) != 0
    }

    /// Visits routers in reverse order within each cycle. With the
    /// cycle-start occupancy snapshot the visit order must not change
    /// any observable result — this knob exists so tests can prove it.
    pub fn set_visit_reversed(&mut self, reversed: bool) {
        self.visit_reversed = reversed;
    }

    /// Flits currently inside the network (source queues + buffers) —
    /// with the injected/delivered counters this gives exact flit
    /// conservation when measuring from cycle 0.
    pub fn in_flight_flits(&self) -> u64 {
        let len = self.cfg.packet_len_flits;
        let queued: u64 = self
            .source_queues
            .iter()
            .flat_map(|q| q.iter())
            .map(|p| p.remaining_flits(len))
            .sum();
        let buffered: usize = self.routers.iter().map(Router::total_occupancy).sum();
        queued + buffered as u64
    }

    /// Flits injected since construction (all cycles, not just the
    /// measurement window).
    pub fn flits_injected_total(&self) -> u64 {
        self.flits_injected
    }

    /// Runs `warmup` cycles unmeasured, then `measure` cycles with
    /// statistics collection, and returns the stats.
    ///
    /// At the measurement boundary the idle runs *and* the sleep FSMs
    /// are reset, so the idle histograms and the in-loop gating
    /// counters describe exactly the same intervals.
    pub fn run(&mut self, warmup: u64, measure: u64) -> NetworkStats {
        let mut stats = NetworkStats::new(self.mesh.len(), NetworkStats::DEFAULT_IDLE_BINS);
        for _ in 0..warmup {
            self.step(None);
        }
        // Reset idle runs and gating state so warmup does not pollute
        // the measurement. Quiescent routers only need their skip
        // markers moved to the boundary — materializing their pending
        // idle cycles would be discarded by the resets below anyway.
        self.last_stepped.fill(self.cycle);
        self.idle_run.fill(0);
        for fsm in &mut self.fsm {
            fsm.reset();
        }
        self.counters.fill(GatingCounters::default());
        // The reset re-arms threshold sleeping (`slept_this_interval`
        // clears); quiescent routers need no reactivation — their walk
        // back to sleep is replayed in closed form when they next
        // flush or reactivate ([`SleepFsm::settle_idle_bulk`]).
        for _ in 0..measure {
            self.step(Some(&mut stats));
        }
        stats.measured_cycles = measure;
        self.flush_quiescent(Some(&mut stats));
        // Close out open idle runs and collect gating counters.
        for rid in 0..self.mesh.len() {
            for p in 0..5 {
                let run = std::mem::take(&mut self.idle_run[rid * 5 + p]);
                stats.idle_histograms[rid][p].record_open(run);
            }
            stats.gating[rid] = self.counters[rid];
        }
        stats
    }

    /// Advances one cycle.
    fn step(&mut self, mut stats: Option<&mut NetworkStats>) {
        self.cycle += 1;
        // 1. Injection: generate new packets into source queues and
        // move waiting flits into local input buffers. Identical in
        // both kernels — every RNG draw happens per node per cycle.
        self.inject(&mut stats);
        // 2+3. Snapshot the credit state and run the router cycles,
        // collecting departures (reads) before applying them (writes)
        // so a flit moves one hop per cycle.
        match self.kernel {
            SimKernel::Reference => self.route_cycle_reference(&mut stats),
            _ => self.route_cycle_active(&mut stats),
        }
        // 4. Apply transfers.
        self.apply_transfers(&mut stats);
        #[cfg(debug_assertions)]
        self.assert_occupancy_in_sync();
    }

    /// Phase 1: packet generation and source-queue drain.
    fn inject(&mut self, stats: &mut Option<&mut NetworkStats>) {
        let n = self.mesh.len();
        let len = self.cfg.packet_len_flits;
        let active_kernel = self.kernel == SimKernel::ActiveSet;
        let on_rate = self.cfg.injection.on_rate(self.cfg.injection_rate);
        for src in 0..n {
            if let InjectionProcess::BurstyOnOff {
                mean_burst,
                mean_idle,
            } = self.cfg.injection
            {
                let flip = if self.source_on[src] {
                    self.rng.gen_bool(1.0 / mean_burst as f64)
                } else {
                    self.rng.gen_bool(1.0 / mean_idle as f64)
                };
                if flip {
                    self.source_on[src] = !self.source_on[src];
                }
            }
            let rate = if self.source_on[src] { on_rate } else { 0.0 };
            if rate > 0.0 && self.rng.gen_bool(rate) {
                if let Some(dst) = self.cfg.pattern.destination(src, &self.mesh, &mut self.rng) {
                    if self.source_queues[src].len() >= self.cfg.source_queue_cap {
                        // Queue at cap: reject the offer. The packet
                        // never existed, so conservation stays exact.
                        if let Some(s) = stats.as_deref_mut() {
                            s.packets_dropped_at_source += 1;
                        }
                    } else {
                        let id = self.next_packet_id;
                        self.next_packet_id += 1;
                        self.source_queues[src].push_back(SourcePacket {
                            packet_id: id,
                            dst,
                            injected_at: self.cycle,
                            sent: 0,
                        });
                        self.flits_injected += len as u64;
                        if let Some(s) = stats.as_deref_mut() {
                            s.packets_injected += 1;
                        }
                        if active_kernel {
                            // The router must be stepped *this* cycle
                            // (skipped cycles end at cycle − 1).
                            self.activate(src, self.cycle - 1, stats.as_deref_mut());
                        }
                    }
                }
            }
            // Move waiting flits into the local input buffer (queue
            // checked first so idle nodes never touch router memory).
            while let Some(pkt) = self.source_queues[src].front_mut() {
                if !self.routers[src].can_accept(Direction::Local) {
                    break;
                }
                let flit = pkt
                    .next_flit(src, len)
                    .expect("queued descriptors have flits left");
                let done = pkt.remaining_flits(len) == 0;
                if done {
                    self.source_queues[src].pop_front();
                }
                self.routers[src].accept(Direction::Local, flit);
                if active_kernel {
                    self.occupancy[src * 5 + Direction::Local.index()] += 1;
                }
                if let Some(s) = stats.as_deref_mut() {
                    s.router_activity[src].buffer_writes += 1;
                }
            }
        }
    }

    /// Phases 2+3, reference kernel: rebuild the snapshot, step every
    /// router — the seed cycle loop, kept verbatim as the oracle.
    fn route_cycle_reference(&mut self, stats: &mut Option<&mut NetworkStats>) {
        let n = self.mesh.len();
        for (rid, r) in self.routers.iter().enumerate() {
            for d in Direction::ALL {
                self.occupancy[rid * 5 + d.index()] = r.occupancy(d) as u32;
            }
        }
        let mesh = self.mesh;
        let depth = self.cfg.buffer_depth as u32;
        self.transfers.clear();
        for i in 0..n {
            let rid = if self.visit_reversed { n - 1 - i } else { i };
            let mut ready = [false; 5];
            for d in Direction::ALL {
                ready[d.index()] = match d {
                    Direction::Local => true, // ejection always sinks
                    d => match mesh.neighbor(rid, d) {
                        Some(next) => self.occupancy[next * 5 + d.opposite().index()] < depth,
                        None => false,
                    },
                };
            }
            let route = |flit: &Flit| mesh.route_xy(rid, flit.dst);
            let base = rid * 5;
            let lane = PortLane {
                idle_run: (&mut self.idle_run[base..base + 5]).try_into().expect("5"),
                fsm: (&mut self.fsm[base..base + 5]).try_into().expect("5"),
                counters: &mut self.counters[rid],
            };
            let outcome = self.routers[rid].step(route, |d| ready[d.index()], lane);

            if let Some(s) = stats.as_deref_mut() {
                s.router_activity[rid].cycles += 1;
                s.router_activity[rid].arbitrations += outcome.arbitrations;
                for (p, run) in outcome.idle_ended.into_iter().enumerate() {
                    s.idle_histograms[rid][p].record(run);
                }
            }

            for dep in outcome.departures() {
                if let Some(s) = stats.as_deref_mut() {
                    s.router_activity[rid].crossbar_traversals += 1;
                    s.router_activity[rid].buffer_reads += 1;
                    if dep.output != Direction::Local {
                        s.router_activity[rid].link_traversals += 1;
                    }
                }
                self.transfers.push(Transfer {
                    from: rid as u32,
                    input: dep.input,
                    output: dep.output,
                    flit: dep.flit,
                });
            }
        }
    }

    /// Phases 2+3, active-set kernel: the snapshot is already current
    /// (maintained incrementally), so only the worklist is stepped —
    /// in router-index order straight off the bitset, with lazy
    /// downstream-readiness and table-driven routing
    /// ([`Router::step_fast`]).
    fn route_cycle_active(&mut self, stats: &mut Option<&mut NetworkStats>) {
        let depth = self.cfg.buffer_depth as u32;
        let visit_reversed = self.visit_reversed;
        let cycle = self.cycle;
        let mesh = self.mesh;
        // Split borrows once: the per-router loop needs disjoint
        // mutable access to routers / SoA lanes / transfers while the
        // readiness closure reads the occupancy snapshot.
        let Simulation {
            routers,
            source_queues,
            transfers,
            occupancy,
            idle_run,
            fsm,
            counters,
            neighbors,
            routes,
            active_bits,
            last_stepped,
            ..
        } = self;
        let routes = routes.as_ref();
        transfers.clear();

        let words = active_bits.len();
        for wi in 0..words {
            let w = if visit_reversed { words - 1 - wi } else { wi };
            let mut bits = active_bits[w];
            while bits != 0 {
                let b = if visit_reversed {
                    63 - bits.leading_zeros() as usize
                } else {
                    bits.trailing_zeros() as usize
                };
                bits &= !(1u64 << b);
                let rid = w * 64 + b;

                let route = |flit: &Flit| match routes {
                    Some(t) => t.route(rid, flit.dst),
                    None => mesh.route_xy(rid, flit.dst),
                };
                // Lazy readiness: only evaluated for outputs a flit
                // actually wants (ejection always sinks).
                let ready = |d: Direction| match d {
                    Direction::Local => true,
                    d => match neighbors.get(rid, d) {
                        Some(next) => occupancy[next * 5 + d.opposite().index()] < depth,
                        None => false,
                    },
                };
                let base = rid * 5;
                let lane = PortLane {
                    idle_run: (&mut idle_run[base..base + 5]).try_into().expect("5"),
                    fsm: (&mut fsm[base..base + 5]).try_into().expect("5"),
                    counters: &mut counters[rid],
                };
                let mut departed = 0u64;
                let mut link_departed = 0u64;
                let outcome = routers[rid].step_fast(route, ready, lane, |dep| {
                    departed += 1;
                    if dep.output != Direction::Local {
                        link_departed += 1;
                    }
                    transfers.push(Transfer {
                        from: rid as u32,
                        input: dep.input,
                        output: dep.output,
                        flit: dep.flit,
                    });
                });

                if let Some(s) = stats.as_deref_mut() {
                    let a = &mut s.router_activity[rid];
                    a.cycles += 1;
                    a.arbitrations += outcome.arbitrations;
                    a.crossbar_traversals += departed;
                    a.buffer_reads += departed;
                    a.link_traversals += link_departed;
                    for (p, run) in outcome.idle_ended.into_iter().enumerate() {
                        // Guarded: most stepped ports end no idle run,
                        // and even `record(0)`'s early return costs a
                        // call per port per cycle on the hot path.
                        if run > 0 {
                            s.idle_histograms[rid][p].record(run);
                        }
                    }
                }

                // Retire the router if it just went quiescent (nothing
                // this cycle's remaining steps can change that — only
                // phase-4 arrivals can, and they re-activate it). An
                // empty router's sleep FSMs are always bulk-replayable
                // — even mid-threshold-walk — so buffers, owners and
                // the source queue are the whole predicate.
                if routers[rid].is_quiet() && source_queues[rid].is_empty() {
                    active_bits[w] &= !(1u64 << b);
                    last_stepped[rid] = cycle;
                }
            }
        }
    }

    /// Phase 4: apply the collected transfers (ejections and link
    /// crossings), maintaining the incremental snapshot and activating
    /// receivers in active-set mode.
    fn apply_transfers(&mut self, stats: &mut Option<&mut NetworkStats>) {
        let active_kernel = self.kernel == SimKernel::ActiveSet;
        for ti in 0..self.transfers.len() {
            let t = self.transfers[ti];
            let from = t.from as usize;
            if active_kernel {
                self.occupancy[from * 5 + t.input.index()] -= 1;
            }
            match t.output {
                Direction::Local => {
                    if cfg!(debug_assertions) || self.cfg.validate_ejection {
                        self.validate_ejection(from, &t.flit);
                    }
                    if let Some(s) = stats.as_deref_mut() {
                        s.flits_delivered += 1;
                        if t.flit.is_tail {
                            s.packets_delivered += 1;
                            let latency = self.cycle - t.flit.injected_at;
                            s.latency_sum += latency;
                            s.latency_max = s.latency_max.max(latency);
                        }
                    }
                }
                d => {
                    let next = if active_kernel {
                        self.neighbors.get(from, d)
                    } else {
                        self.mesh.neighbor(from, d)
                    }
                    .expect("departures only target existing neighbours");
                    self.routers[next].accept(d.opposite(), t.flit);
                    if active_kernel {
                        self.occupancy[next * 5 + d.opposite().index()] += 1;
                        // The receiver was already accounted idle for
                        // this whole cycle; it steps from the next one.
                        self.activate(next, self.cycle, stats.as_deref_mut());
                    }
                    if let Some(s) = stats.as_deref_mut() {
                        s.router_activity[next].buffer_writes += 1;
                    }
                }
            }
        }
    }

    /// Puts a quiescent router back in the worklist, first settling the
    /// cycles it skipped (`through` is the last cycle it should be
    /// accounted as idle; phase-1 activations pass `cycle − 1` because
    /// the router still steps this cycle, phase-4 activations pass
    /// `cycle` because it only steps from the next one).
    fn activate(&mut self, rid: usize, through: u64, stats: Option<&mut NetworkStats>) {
        if self.is_active(rid) {
            return;
        }
        let skipped = through - self.last_stepped[rid];
        self.account_skipped(rid, skipped, stats);
        self.last_stepped[rid] = through;
        self.active_bits[rid / 64] |= 1u64 << (rid % 64);
    }

    /// Bulk-settles `skipped` consecutive idle cycles for a quiescent
    /// router in O(1): exactly what the dense loop would have done —
    /// idle runs grow, awake ports arbitrate, and sleep FSMs replay
    /// their (closed-form) future, including a threshold walk that
    /// asserts sleep partway through the gap — without touching the
    /// router.
    fn account_skipped(&mut self, rid: usize, skipped: u64, stats: Option<&mut NetworkStats>) {
        if skipped == 0 {
            return;
        }
        let base = rid * 5;
        let arbitrations = match &self.cfg.gating {
            // Ungated: all five free ports arbitrate every cycle.
            None => {
                for run in &mut self.idle_run[base..base + 5] {
                    *run += skipped;
                }
                5 * skipped
            }
            Some(cfg) => {
                let th = cfg.threshold();
                let counters = &mut self.counters[rid];
                let mut arbitrations = 0;
                for (run, fsm) in self.idle_run[base..base + 5]
                    .iter_mut()
                    .zip(&mut self.fsm[base..base + 5])
                {
                    let before = *run;
                    *run += skipped;
                    arbitrations += fsm.settle_idle_bulk(skipped, before, th, counters);
                }
                arbitrations
            }
        };
        if let Some(s) = stats {
            s.router_activity[rid].cycles += skipped;
            s.router_activity[rid].arbitrations += arbitrations;
        }
    }

    /// Settles all quiescent routers up to the current cycle (window
    /// boundaries and end-of-run).
    fn flush_quiescent(&mut self, mut stats: Option<&mut NetworkStats>) {
        if self.kernel != SimKernel::ActiveSet {
            return;
        }
        let cycle = self.cycle;
        for rid in 0..self.mesh.len() {
            if !self.is_active(rid) {
                let skipped = cycle - self.last_stepped[rid];
                self.account_skipped(rid, skipped, stats.as_deref_mut());
                self.last_stepped[rid] = cycle;
            }
        }
    }

    /// Debug-build invariant: the incrementally maintained snapshot
    /// must always equal the live buffer occupancies at cycle end.
    #[cfg(debug_assertions)]
    fn assert_occupancy_in_sync(&self) {
        if self.kernel != SimKernel::ActiveSet {
            return;
        }
        for (rid, r) in self.routers.iter().enumerate() {
            for d in Direction::ALL {
                debug_assert_eq!(
                    self.occupancy[rid * 5 + d.index()],
                    r.occupancy(d) as u32,
                    "incremental occupancy out of sync at router {rid} port {d}"
                );
            }
        }
    }

    /// Asserts in-order, contiguous, complete per-packet delivery.
    fn validate_ejection(&mut self, rid: usize, flit: &Flit) {
        assert_eq!(flit.dst, rid, "flit ejected at the wrong router");
        let progress = &mut self.eject[rid];
        match progress.current {
            None => {
                assert!(
                    flit.is_head,
                    "packet {} ejected body flit before its head at router {rid}",
                    flit.packet_id
                );
                if flit.is_tail {
                    assert_eq!(self.cfg.packet_len_flits, 1);
                } else {
                    progress.current = Some((flit.packet_id, 1));
                }
            }
            Some((pkt, seen)) => {
                assert_eq!(
                    flit.packet_id, pkt,
                    "packet interleaving at router {rid} ejection port"
                );
                assert!(!flit.is_head, "duplicate head flit in packet {pkt}");
                let seen = seen + 1;
                if flit.is_tail {
                    assert_eq!(
                        seen, self.cfg.packet_len_flits,
                        "packet {pkt} delivered with the wrong flit count"
                    );
                    progress.current = None;
                } else {
                    progress.current = Some((pkt, seen));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sleep::SleepConfig;
    use lnoc_power::gating::{energy_from_counters, evaluate_policy, GatingParams, GatingPolicy};
    use lnoc_tech::units::{Hertz, Joules, Watts};

    fn base_cfg() -> MeshConfig {
        MeshConfig {
            width: 4,
            height: 4,
            injection_rate: 0.05,
            pattern: TrafficPattern::UniformRandom,
            packet_len_flits: 4,
            buffer_depth: 4,
            seed: 42,
            ..MeshConfig::default()
        }
    }

    #[test]
    fn packets_flow_and_are_conserved() {
        // Measure from cycle 0: packets straddling a warmup/measure
        // boundary would otherwise split their flit counts across the
        // unmeasured and measured windows and break exact conservation.
        let mut sim = Simulation::new(base_cfg());
        let stats = sim.run(0, 3500);
        assert!(stats.packets_delivered > 100, "{}", stats.packets_delivered);
        // Flits delivered = packets × packet length (within in-flight
        // slack of injected − delivered).
        assert!(
            stats.flits_delivered >= stats.packets_delivered * 4,
            "every delivered packet contributed all its flits"
        );
        assert!(stats.packets_injected >= stats.packets_delivered);
        // Exact conservation: injected = delivered + still in flight.
        assert_eq!(
            sim.flits_injected_total(),
            stats.flits_delivered + sim.in_flight_flits()
        );
    }

    #[test]
    fn latency_at_least_hop_count() {
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: 0.01,
            ..base_cfg()
        });
        let stats = sim.run(200, 3000);
        // Minimum latency: ≥ packet length (serialization) at zero load.
        assert!(stats.avg_latency() >= 4.0, "{}", stats.avg_latency());
        assert!(stats.avg_latency() < 60.0, "{}", stats.avg_latency());
    }

    #[test]
    fn higher_load_means_higher_latency_and_throughput() {
        let run = |rate: f64| {
            let mut sim = Simulation::new(MeshConfig {
                injection_rate: rate,
                seed: 9,
                ..base_cfg()
            });
            sim.run(500, 4000)
        };
        let light = run(0.01);
        let heavy = run(0.08);
        assert!(heavy.throughput() > light.throughput());
        assert!(heavy.avg_latency() > light.avg_latency());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = Simulation::new(base_cfg());
            let s = sim.run(100, 1000);
            (s.packets_delivered, s.flits_delivered, s.latency_sum)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn router_visit_order_is_irrelevant() {
        // With the cycle-start occupancy snapshot, stepping routers in
        // reverse (or any) order must produce bit-identical statistics
        // — in both kernels. Before the snapshot fix, downstream
        // readiness read live buffers that earlier routers had already
        // popped, so behaviour depended on iteration order.
        for kernel in [SimKernel::ActiveSet, SimKernel::Reference] {
            for cfg in [
                base_cfg(),
                MeshConfig {
                    injection_rate: 0.12,
                    pattern: TrafficPattern::Transpose,
                    seed: 3,
                    ..base_cfg()
                },
                MeshConfig {
                    wrap: true,
                    pattern: TrafficPattern::Tornado,
                    injection_rate: 0.03,
                    ..base_cfg()
                },
                MeshConfig {
                    gating: Some(SleepConfig {
                        policy: GatingPolicy::IdleThreshold(3),
                        wake_latency: 2,
                    }),
                    injection_rate: 0.06,
                    seed: 7,
                    ..base_cfg()
                },
            ] {
                let cfg = MeshConfig { kernel, ..cfg };
                let mut fwd = Simulation::new(cfg.clone());
                let mut rev = Simulation::new(cfg);
                rev.set_visit_reversed(true);
                let s_fwd = fwd.run(100, 1500);
                let s_rev = rev.run(100, 1500);
                assert_eq!(s_fwd, s_rev);
            }
        }
    }

    #[test]
    fn idle_histograms_fill_under_light_load() {
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: 0.02,
            ..base_cfg()
        });
        let stats = sim.run(200, 2000);
        let merged = stats.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS);
        assert!(merged.interval_count() > 0);
        // Under 2 % load, most output-cycles are idle.
        let idle_frac = merged.total_idle_cycles() as f64 / (2000.0 * 16.0 * 5.0);
        assert!(idle_frac > 0.5, "idle fraction {idle_frac}");
    }

    #[test]
    fn utilization_tracks_load() {
        let mut light_sim = Simulation::new(MeshConfig {
            injection_rate: 0.01,
            ..base_cfg()
        });
        let mut heavy_sim = Simulation::new(MeshConfig {
            injection_rate: 0.10,
            ..base_cfg()
        });
        let light = light_sim.run(300, 2000).crossbar_utilization();
        let heavy = heavy_sim.run(300, 2000).crossbar_utilization();
        assert!(heavy > 2.0 * light, "light {light}, heavy {heavy}");
    }

    #[test]
    #[should_panic(expected = "at least 2×2")]
    fn tiny_mesh_rejected() {
        let _ = Simulation::new(MeshConfig {
            width: 1,
            ..base_cfg()
        });
    }

    #[test]
    #[should_panic(expected = "Oracle")]
    fn oracle_rejected_in_loop() {
        let _ = Simulation::new(MeshConfig {
            gating: Some(SleepConfig {
                policy: GatingPolicy::Oracle,
                wake_latency: 1,
            }),
            ..base_cfg()
        });
    }

    #[test]
    #[should_panic(expected = "source queues")]
    fn zero_source_queue_cap_rejected() {
        let _ = Simulation::new(MeshConfig {
            source_queue_cap: 0,
            ..base_cfg()
        });
    }

    #[test]
    fn all_patterns_deliver() {
        for pattern in TrafficPattern::ALL {
            let mut sim = Simulation::new(MeshConfig {
                pattern,
                injection_rate: 0.03,
                ..base_cfg()
            });
            let stats = sim.run(300, 2000);
            assert!(
                stats.packets_delivered > 10,
                "{pattern:?} delivered {}",
                stats.packets_delivered
            );
        }
    }

    #[test]
    fn torus_delivers_and_shortens_paths() {
        let run = |wrap: bool| {
            let mut sim = Simulation::new(MeshConfig {
                wrap,
                injection_rate: 0.02,
                pattern: TrafficPattern::Tornado,
                seed: 17,
                ..base_cfg()
            });
            sim.run(300, 3000)
        };
        let mesh = run(false);
        let torus = run(true);
        assert!(mesh.packets_delivered > 50);
        assert!(torus.packets_delivered > 50);
        // Tornado on a 4-wide torus is a single wraparound-assisted hop
        // pattern; the mesh must walk the long way.
        assert!(
            torus.avg_latency() < mesh.avg_latency(),
            "torus {:.1} vs mesh {:.1}",
            torus.avg_latency(),
            mesh.avg_latency()
        );
    }

    #[test]
    fn bursty_injection_conserves_and_matches_load() {
        let mut sim = Simulation::new(MeshConfig {
            injection: InjectionProcess::BurstyOnOff {
                mean_burst: 20,
                mean_idle: 60,
            },
            injection_rate: 0.04,
            seed: 23,
            ..base_cfg()
        });
        let stats = sim.run(0, 8000);
        assert_eq!(
            sim.flits_injected_total(),
            stats.flits_delivered + sim.in_flight_flits()
        );
        // Offered load stays near the configured average rate.
        let offered = stats.packets_injected as f64 / (8000.0 * 16.0);
        assert!(
            (offered - 0.04).abs() < 0.01,
            "offered load {offered} vs configured 0.04"
        );
    }

    #[test]
    fn capped_source_queue_drops_and_stays_exact() {
        // A tiny cap under a saturating hotspot load must reject offers
        // without breaking flit conservation.
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: 0.5,
            pattern: TrafficPattern::Hotspot,
            source_queue_cap: 2,
            seed: 3,
            ..base_cfg()
        });
        let stats = sim.run(0, 2000);
        assert!(
            stats.packets_dropped_at_source > 0,
            "saturating load must hit the cap"
        );
        assert_eq!(
            sim.flits_injected_total(),
            stats.flits_delivered + sim.in_flight_flits()
        );
        assert_eq!(
            stats.packets_injected * 4,
            sim.flits_injected_total(),
            "dropped packets contribute no flits"
        );
        // The source queues themselves respect the cap.
        assert!(sim.source_queues.iter().all(|q| q.len() <= 2));
    }

    #[test]
    fn gating_stalls_traffic_and_matches_offline_energy() {
        let params = GatingParams {
            p_idle_awake: Watts(10.0e-6),
            p_standby: Watts(1.0e-6),
            e_transition: Joules(9.0e-15),
            wake_latency_cycles: 2,
        };
        let clock = Hertz(3.0e9);
        let policy = GatingPolicy::IdleThreshold(params.min_idle_cycles(clock));

        let gated_cfg = MeshConfig {
            gating: Some(SleepConfig {
                policy,
                wake_latency: params.wake_latency_cycles,
            }),
            injection_rate: 0.03,
            ..base_cfg()
        };
        let mut gated = Simulation::new(gated_cfg.clone());
        let g = gated.run(500, 6000);
        let mut ungated = Simulation::new(MeshConfig {
            gating: None,
            ..gated_cfg
        });
        let u = ungated.run(500, 6000);

        // Wake latency back-pressures real traffic.
        let counters = g.total_gating_counters();
        assert!(counters.sleep_entries > 100, "{counters:?}");
        assert!(counters.wake_stall_cycles > 0, "{counters:?}");
        assert!(
            g.avg_latency() > u.avg_latency(),
            "gated {:.2} must exceed ungated {:.2}",
            g.avg_latency(),
            u.avg_latency()
        );

        // In-loop energy agrees with the offline model evaluated on the
        // same run's histograms.
        let in_loop = energy_from_counters(&counters, &params, clock);
        let offline = evaluate_policy(
            &g.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS),
            &params,
            policy,
            clock,
        );
        let rel =
            (in_loop.energy_policy.0 - offline.energy_policy.0).abs() / offline.energy_policy.0;
        assert!(rel < 0.05, "in-loop vs offline disagreement {rel:.4}");
        let rel_never =
            (in_loop.energy_never.0 - offline.energy_never.0).abs() / offline.energy_never.0;
        assert!(rel_never < 1e-9, "idle-cycle totals must match exactly");
    }
}
