//! The cycle loop: injection, router stepping, link transfer, credit
//! return, ejection.
//!
//! Three interchangeable kernels execute the loop (selected by
//! [`MeshConfig::kernel`]), all three configurations of **one shared
//! two-phase engine**:
//!
//! * [`SimKernel::Reference`] — the dense oracle: every router is
//!   stepped every cycle and the credit state is rebuilt O(5·V·n) per
//!   cycle from the live buffers. Simple, obviously correct, slow.
//! * [`SimKernel::ActiveSet`] — the serial production kernel: a
//!   worklist of routers that can possibly do work this cycle
//!   (buffered flits, an output VC lane held mid-packet, or a waiting
//!   source packet — sleep-FSM motion earns no membership: an empty
//!   router's FSM future is closed-form and replayed in bulk, see
//!   [`SleepFsm::idle_predictable`]). Quiescent routers are skipped
//!   entirely; their idle cycles are accounted in O(1) bulk when they
//!   reactivate or the window closes, and the credit counters are
//!   maintained incrementally on flit departure/arrival instead of
//!   rebuilt.
//! * [`SimKernel::Sharded`] — the active-set kernel, tiled: the mesh
//!   is partitioned into full-width row bands
//!   ([`crate::topology::TileMap`]), each band owns a contiguous slice
//!   of every per-router SoA slab (buffers, lanes, credits, RNG
//!   streams, source queues) plus its own worklist bitset, and bands
//!   step concurrently on worker threads
//!   ([`MeshConfig::shards`] / [`MeshConfig::threads`]).
//!
//! ## Why the sharded kernel is deterministic
//!
//! A cycle runs in two phases per shard with one barrier between them:
//!
//! 1. **compute** (parallel) — inject, step the tile's active set
//!    against the cycle-start credit snapshot, and apply transfers.
//!    Everything read here is tile-local by construction: a router's
//!    readiness reads only *its own* output-lane credits, routing reads
//!    shared immutable tables, and injection draws come from per-router
//!    RNG streams. Effects that land in another tile — a flit crossing
//!    the band boundary, a credit returning upstream — are staged into
//!    fixed-capacity, double-buffered mailboxes instead of applied.
//! 2. **exchange** (parallel, after the barrier) — each shard drains
//!    its inboxes (senders in ascending shard order) and applies the
//!    arrivals and credit returns to its own state.
//!
//! Within one cycle, all cross-tile effects commute: at most one flit
//! can arrive per input VC buffer per cycle (one flit per upstream
//! output lane), at most one credit can return per output lane (one
//! pop per downstream input port), and every statistics update is an
//! integer add or max. So *when* within the cycle a boundary effect is
//! applied cannot change the cycle's outcome — the same argument that
//! already makes the serial kernels independent of router visit order.
//! Per-shard statistics are reduced with [`NetworkStats::merge_shard`] in
//! ascending shard order. The result: `shards ∈ {1, 2, 4, 8, …}` × any
//! thread count produce the same `NetworkStats`, pinned by the
//! kernel-equivalence and shard-equivalence test matrices.
//!
//! Flow control is credit-based: the simulation carries one explicit
//! credit counter per output VC lane (`router * 5V + port * V + vc`),
//! holding the free slots of the downstream router's input VC buffer.
//! A flit may depart only on a lane with a credit; the credit is
//! consumed when the flit is applied and returned when the downstream
//! router pops the flit onward. With `V = 1` this is numerically
//! identical to the old occupancy-snapshot backpressure (`credit > 0 ⇔
//! occupancy < depth`), which is what keeps the refactor
//! behaviour-preserving at one VC.
//!
//! The two kernels produce **bit-identical [`NetworkStats`]** for the
//! same [`MeshConfig`]: all RNG draws (injection, bursty flips,
//! destinations) happen per node per cycle in both kernels, and the
//! active-set kernel only skips work that draws no randomness and whose
//! effect is a closed-form function of the skipped cycle count. The
//! kernel-equivalence property tests pin this across traffic patterns,
//! injection processes, topologies, VC counts, gating policies and
//! visit order.
//!
//! **RNG discipline.** Every node draws from its own deterministic
//! stream, keyed by `(seed, router id)` ([`node_rng`]), and packet ids
//! are allocated per source ([`packet_id`]: source in the high bits,
//! a private sequence number in the low bits). A node's draw sequence
//! is therefore a pure function of its own history — independent of
//! the order nodes are visited in, of what any other node draws, and
//! of how the mesh is partitioned across parallel workers. This is
//! what lets a tiled kernel inject in parallel and still reproduce the
//! serial kernels bit for bit.
//!
//! Correctness notes:
//!
//! * Credit state is evaluated against the cycle-start snapshot
//!   (rebuilt per cycle in the reference kernel, mutated only in the
//!   transfer phase in the active-set kernel), so results are
//!   independent of the order routers are visited in — see
//!   [`Simulation::set_visit_reversed`] and the order-independence
//!   test.
//! * On a torus with `vcs ≥ 2`, dimension-order routing switches VC
//!   class at each ring's dateline ([`Mesh::dateline_class`]), making
//!   wormhole DOR deadlock-free; a zero-progress watchdog
//!   ([`MeshConfig::watchdog_cycles`]) aborts with a per-lane
//!   diagnostic instead of spinning forever if a regression ever
//!   reintroduces a cycle.
//! * Ejection order is validated on the fly: every packet must arrive
//!   at its destination head-first, contiguously, with exactly
//!   `packet_len_flits` flits. The check is always on in debug builds
//!   and behind [`MeshConfig::validate_ejection`] in release, so sweep
//!   binaries do not pay per-flit assertion cost.
//! * The per-cycle scratch (transfers, idle-ended slice, worklist) is
//!   reused across cycles and [`Router::step_fast`] is allocation-free,
//!   so the steady-state loop performs no heap allocation.

use crate::fault::{FaultPlan, FaultSchedule};
use crate::router::{PortLane, RouteTarget, Router, MAX_VCS};
use crate::shard::{boundary_mailboxes, BoundaryMsg};
use crate::sleep::{SleepConfig, SleepFsm};
use crate::stats::NetworkStats;
use crate::sync::{Mailboxes, PoisonGuard, ShardSlots, SpinBarrier};
use crate::topology::{Direction, FaultMap, Mesh, NeighborTable, RouteTable, TileMap};
use crate::traffic::{Flit, GapSampler, InjectionProcess, SourcePacket, TrafficPattern};
use crate::wheel::TimeWheel;
use lnoc_power::gating::{GatingCounters, GatingPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Which cycle-loop kernel executes the simulation.
///
/// Both kernels produce bit-identical [`NetworkStats`] for the same
/// seed; they differ only in speed. `Reference` is retained as the
/// oracle the fast kernel is tested against (the same playbook as the
/// circuit engine's `SolverKind::Reference`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SimKernel {
    /// Choose automatically. The kernels are result-identical, so the
    /// choice is purely about speed: [`Simulation::new`] resolves
    /// `Auto` to `EventDriven` for offered loads at or below
    /// [`SimKernel::AUTO_EVENT_MAX_RATE`] (where the clock mostly
    /// leaps), to `Sharded` for meshes of at least
    /// [`SimKernel::AUTO_SHARD_MIN_ROUTERS`] routers above that load
    /// (where parallelism pays for the tile tax) and to `ActiveSet`
    /// everywhere else, so small busy runs never pay either overhead.
    #[default]
    Auto,
    /// Worklist kernel: only routers that can possibly do work are
    /// stepped; quiescent routers are bulk-accounted in O(1) when they
    /// reactivate.
    ActiveSet,
    /// Dense oracle: every router stepped every cycle, credit state
    /// rebuilt O(5·V·n) per cycle.
    Reference,
    /// Tile-sharded kernel: the mesh is partitioned into row bands
    /// ([`crate::topology::TileMap`]), each band runs the active-set
    /// step on its own worker, and boundary traffic crosses through
    /// double-buffered mailboxes. Bit-identical to the serial kernels
    /// for every shard and thread count (see
    /// [`MeshConfig::shards`] / [`MeshConfig::threads`]).
    Sharded,
    /// Event-driven leap kernel: each source's next injection arrival
    /// — the shared gap-sampled renewal slot for Bernoulli traffic
    /// ([`crate::traffic::GapSampler`]), a private-stream replay for
    /// bursty ([`crate::traffic::InjectionProcess::next_arrival`]) —
    /// is parked on a calendar-queue time wheel; whenever the network
    /// holds no flits, the global clock leaps straight to the next
    /// scheduled arrival (or fault-epoch boundary), and the skipped
    /// span is settled with the same closed-form bulk-idle machinery
    /// the worklist kernel uses. Bit-identical to every other kernel —
    /// including exact fault-epoch and cycle-budget boundaries — and
    /// fastest exactly where the leakage study lives: low rates, where
    /// most cycles are dead. At saturation the wheel never empties and
    /// the kernel degrades to ~active-set per-cycle stepping.
    EventDriven,
}

impl SimKernel {
    /// Router count at which `Auto` starts picking the sharded kernel
    /// (64×64). Below it the per-tile overhead outweighs the
    /// parallelism (the sharded kernel measures ~0.65× the serial rate
    /// at 4×4 but ≥1.1× at 64×64 and above).
    pub const AUTO_SHARD_MIN_ROUTERS: usize = 4096;

    /// Offered load at or below which `Auto` picks the event-driven
    /// kernel. At a per-node rate `r`, injection gaps average `1/r`
    /// cycles per node; below ~0.02 the network drains between
    /// arrivals often enough that leaping beats both per-cycle
    /// stepping and sharded parallelism (see BENCH_noc.json's
    /// `event_vs_active_set` column).
    pub const AUTO_EVENT_MAX_RATE: f64 = 0.02;

    /// Router count at or above which `Auto` picks the event-driven
    /// kernel regardless of offered load. With lazy per-router leap
    /// settlement, every per-run cost the event kernel pays is
    /// O(touched), while both per-cycle kernels pay O(n) per cycle —
    /// so at million-router scale (512×512 and up) even busy meshes
    /// come out ahead: a higher load means fewer leaps, but the
    /// stepped cycles still only touch the routers that hold flits.
    pub const AUTO_EVENT_MIN_ROUTERS: usize = 262_144;

    /// Resolves `Auto` without mesh context — the zero-load answer
    /// (`EventDriven`, the fastest kernel when nothing is offered).
    /// [`Simulation::new`] uses [`SimKernel::resolve_for`], which also
    /// considers the mesh size and offered load.
    pub fn resolve(self) -> SimKernel {
        self.resolve_for(0, 0.0)
    }

    /// Resolves `Auto` for a concrete configuration: `EventDriven` at
    /// or below [`SimKernel::AUTO_EVENT_MAX_RATE`] offered load or for
    /// meshes of at least [`SimKernel::AUTO_EVENT_MIN_ROUTERS`]
    /// routers (any load), `Sharded` for meshes of at least
    /// [`SimKernel::AUTO_SHARD_MIN_ROUTERS`] routers above that load,
    /// `ActiveSet` otherwise. Safe to key on size and load because
    /// statistics are bit-identical across kernels and shard counts —
    /// only throughput changes.
    pub fn resolve_for(self, routers: usize, injection_rate: f64) -> SimKernel {
        match self {
            SimKernel::Auto => {
                if injection_rate <= Self::AUTO_EVENT_MAX_RATE
                    || routers >= Self::AUTO_EVENT_MIN_ROUTERS
                {
                    SimKernel::EventDriven
                } else if routers >= Self::AUTO_SHARD_MIN_ROUTERS {
                    SimKernel::Sharded
                } else {
                    SimKernel::ActiveSet
                }
            }
            k => k,
        }
    }

    /// Short name for reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            SimKernel::Auto => "auto",
            SimKernel::ActiveSet => "active-set",
            SimKernel::Reference => "reference",
            SimKernel::Sharded => "sharded",
            SimKernel::EventDriven => "event",
        }
    }
}

/// Why a simulation run stopped early instead of completing its
/// configured cycles.
///
/// Produced by [`Simulation::try_run`]; [`Simulation::run`] panics with
/// the [`std::fmt::Display`] rendering instead (the historical
/// behaviour, still what CI deadlock-regression tests pin). Every abort
/// is deterministic — a pure function of the configuration — so a
/// supervisor can safely record it as a permanent, non-retryable
/// failure of that configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimAbort {
    /// The zero-progress watchdog fired: flits were buffered and, for
    /// [`MeshConfig::watchdog_cycles`] consecutive cycles, no flit
    /// moved and no credit returned.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Flits buffered network-wide when it fired.
        buffered: u64,
        /// The full per-lane diagnostic (router / port / VC / credit
        /// report, fault-map classification) — exactly the text the
        /// panicking path has always printed.
        diagnostic: String,
    },
    /// The run would exceed [`MeshConfig::cycle_budget`]: the worker
    /// loop stopped at the budget boundary. The check is a pure
    /// function of the loop index, so every worker, shard and kernel
    /// stops at the same cycle.
    CycleBudgetExceeded {
        /// The configured budget ([`MeshConfig::cycle_budget`]).
        budget: u64,
        /// Cycles the run was asked to execute (warmup + measure).
        requested: u64,
    },
}

impl std::fmt::Display for SimAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // The diagnostic already carries cycle and buffered-flit
            // context; printing it verbatim keeps the rendered text
            // identical to the historical panic message.
            SimAbort::Deadlock { diagnostic, .. } => f.write_str(diagnostic),
            SimAbort::CycleBudgetExceeded { budget, requested } => write!(
                f,
                "cycle budget exceeded: run of {requested} cycles stopped at the \
                 configured budget of {budget} cycles"
            ),
        }
    }
}

impl std::error::Error for SimAbort {}

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Mesh width.
    pub width: usize,
    /// Mesh height.
    pub height: usize,
    /// Mean packet injection probability per node per cycle.
    pub injection_rate: f64,
    /// Destination pattern.
    pub pattern: TrafficPattern,
    /// Flits per packet.
    pub packet_len_flits: usize,
    /// Input buffer depth in flits, **per virtual channel**.
    pub buffer_depth: usize,
    /// Virtual channels per port (1..=[`MAX_VCS`]). `1` reproduces the
    /// pre-VC single-FIFO router bit-for-bit; `≥ 2` enables dateline
    /// VC switching on a torus (deadlock-free DOR).
    pub vcs: usize,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Torus wraparound links (see [`Mesh`] for the deadlock caveat at
    /// `vcs == 1`).
    pub wrap: bool,
    /// Temporal injection process (Bernoulli or bursty ON–OFF).
    pub injection: InjectionProcess,
    /// In-loop power gating of router output VC lanes; `None`
    /// simulates ungated hardware (and skips all gating bookkeeping).
    pub gating: Option<SleepConfig>,
    /// Cycle-loop kernel (see [`SimKernel`]).
    pub kernel: SimKernel,
    /// Run the per-flit in-order ejection validation in release builds
    /// too. Debug builds (and therefore `cargo test`) always validate;
    /// release sweeps default to skipping the assertion cost.
    pub validate_ejection: bool,
    /// Maximum packets a node's source queue holds (≥ 1). Offers made
    /// while the queue is full are rejected and counted in
    /// [`NetworkStats::packets_dropped_at_source`] — without the cap, a
    /// saturated network grows source queues (and memory) without
    /// bound.
    pub source_queue_cap: usize,
    /// Zero-progress watchdog: if flits are buffered in the network
    /// and, for this many consecutive cycles, no flit moves and no
    /// credit returns, the run aborts with a per-lane diagnostic
    /// (router, port, VC, owner) instead of spinning forever — so
    /// deadlock regressions fail fast in CI. [`Simulation::try_run`]
    /// returns the diagnostic as [`SimAbort::Deadlock`];
    /// [`Simulation::run`] panics with the same text. `0` disables
    /// the watchdog.
    pub watchdog_cycles: u64,
    /// Escape hatch for deadlock debugging: when set, the watchdog
    /// panics at the fire site inside the worker (the historical
    /// behaviour) even under [`Simulation::try_run`], so a test or a
    /// debugger sees the stack of the wedged worker instead of a
    /// returned error. The panic payload is the same diagnostic text
    /// either way.
    pub panic_on_deadlock: bool,
    /// Upper bound on cycles one `run`/`try_run` call may execute
    /// (`0` = unlimited). If `warmup + measure` exceeds the budget the
    /// worker loop stops at the boundary and the run aborts with
    /// [`SimAbort::CycleBudgetExceeded`]. The check is part of the
    /// deterministic cycle loop — a pure function of the loop index —
    /// so all kernels, shard counts and thread counts abort
    /// identically; orchestrators use it as the in-engine half of a
    /// per-point deadline (the engine itself stays wall-clock-free).
    pub cycle_budget: u64,
    /// Tile count for [`SimKernel::Sharded`] (`0` = auto: one tile per
    /// available core). Clamped to the mesh height (every tile band
    /// owns at least one row). **Never changes results**: statistics
    /// are bit-identical for every shard count — the count only trades
    /// parallelism against per-tile work. Ignored by the serial
    /// kernels.
    pub shards: usize,
    /// Worker threads for [`SimKernel::Sharded`] (`0` = auto: one per
    /// available core, at most one per shard). Purely an execution
    /// detail — `shards` fixes the tile geometry and the results;
    /// threads only decide how many tiles step concurrently, so
    /// `--threads 1` replays an 8-shard run bit-for-bit on one core.
    /// Ignored by the serial kernels.
    pub threads: usize,
    /// Deterministic fault schedule ([`FaultPlan`]); `None` simulates
    /// a fault-free network and skips every fault check, leaving all
    /// statistics bit-for-bit identical to builds without the fault
    /// layer. The plan expands to the same event sequence for every
    /// kernel and every shard × thread count, so faulted runs stay as
    /// reproducible as healthy ones. Faulted meshes are capped at
    /// [`FaultMap::MAX_ROUTERS`] routers.
    pub faults: Option<FaultPlan>,
    /// Force the pre-debt *eager* measurement-boundary behaviour: at
    /// the boundary, reset every router's idle runs, sleep FSMs and
    /// gating counters up front instead of deferring untouched routers'
    /// settlement to first touch or close-out. Results are bit-identical
    /// either way — this switch exists so the lazy-settlement property
    /// tests can run the eager path as the oracle. Leave `false`
    /// (deferred) everywhere else: eager settlement costs O(routers) at
    /// the boundary, which at a million routers dwarfs the event
    /// kernel's whole cycle loop.
    pub eager_settlement: bool,
}

impl MeshConfig {
    /// Default [`MeshConfig::source_queue_cap`]: deep enough that drops
    /// only happen under sustained saturation.
    pub const DEFAULT_SOURCE_QUEUE_CAP: usize = 64;

    /// Default [`MeshConfig::watchdog_cycles`]: far above any
    /// legitimate zero-progress stretch (the longest is a network-wide
    /// simultaneous wake, bounded by the wake latency), far below
    /// "spins forever".
    pub const DEFAULT_WATCHDOG_CYCLES: u64 = 100_000;
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            width: 4,
            height: 4,
            injection_rate: 0.05,
            pattern: TrafficPattern::UniformRandom,
            packet_len_flits: 4,
            buffer_depth: 4,
            vcs: 1,
            seed: 1,
            wrap: false,
            injection: InjectionProcess::Bernoulli,
            gating: None,
            kernel: SimKernel::Auto,
            validate_ejection: false,
            source_queue_cap: MeshConfig::DEFAULT_SOURCE_QUEUE_CAP,
            watchdog_cycles: MeshConfig::DEFAULT_WATCHDOG_CYCLES,
            panic_on_deadlock: false,
            cycle_budget: 0,
            shards: 0,
            threads: 0,
            faults: None,
            eager_settlement: false,
        }
    }
}

/// Builds router `rid`'s private RNG stream for a run seeded with
/// `seed`.
///
/// The golden-ratio multiply keeps the expanded seed distinct per
/// router (injective in `rid` for a fixed run seed), and
/// `seed_from_u64`'s SplitMix64 expansion decorrelates the resulting
/// generator states. Because each node only ever draws from its own
/// stream, its draw sequence does not depend on other nodes, on visit
/// order, or on shard geometry.
pub(crate) fn node_rng(seed: u64, rid: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (rid as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15))
}

/// Bits of a packet id holding the source-private sequence number; the
/// bits above carry the source router id.
const PACKET_SEQ_BITS: u32 = 40;

/// Allocates the globally unique id of source `src`'s `seq`-th packet.
///
/// Ids are per-source streams — `src` in the high bits, the source's
/// private sequence number in the low bits — so id allocation needs no
/// cross-node coordination (the property that lets tiled injection run
/// in parallel). Uniqueness: sources are distinct in the high bits and
/// sequences in the low bits; the result can never collide with
/// [`Flit::INVALID`] (`u64::MAX`) while `src < 2^24 − 1`, far above
/// any simulable mesh.
pub(crate) fn packet_id(src: usize, seq: u64) -> u64 {
    debug_assert!((src as u64) < (1 << (64 - PACKET_SEQ_BITS)) - 1);
    debug_assert!(seq < (1 << PACKET_SEQ_BITS));
    ((src as u64) << PACKET_SEQ_BITS) | seq
}

/// Per-destination ejection progress, for on-the-fly validation of
/// in-order, contiguous packet delivery.
#[derive(Debug, Clone, Copy, Default)]
struct EjectProgress {
    current: Option<(u64, usize)>,
}

/// One flit crossing a link (or ejecting) this cycle, recorded during
/// router stepping and applied afterwards so a flit moves one hop per
/// cycle. Carries the input lane it was popped from so the active-set
/// kernel can return the freed slot's credit to the upstream router.
#[derive(Debug, Clone, Copy)]
struct Transfer {
    from: u32,
    input: Direction,
    input_vc: u8,
    output: Direction,
    flit: Flit,
}

/// A running mesh simulation.
///
/// All per-router state lives in network-wide SoA slabs ordered by
/// router id. Because the tile partition is made of full-width row
/// bands ([`TileMap`]), every shard owns a *contiguous* slice of every
/// slab — the sharded runner carves the slabs with `split_at_mut` and
/// hands each worker a [`ShardView`] of disjoint slices, no index
/// translation and no locks on the hot path.
#[derive(Debug)]
pub struct Simulation {
    cfg: MeshConfig,
    /// The resolved kernel actually executing (`Auto` already mapped).
    kernel: SimKernel,
    mesh: Mesh,
    routers: Vec<Router>,
    /// Source queues: packet descriptors wait here until the local port
    /// accepts; flits are synthesized on acceptance.
    source_queues: Vec<VecDeque<SourcePacket>>,
    /// Per-node ON/OFF state of the bursty injection process.
    source_on: Vec<bool>,
    /// Per-node renewal slot of the Bernoulli injection process: the
    /// absolute cycle of the node's next scheduled arrival
    /// (`u64::MAX` = never — rate 0, or a bursty configuration, which
    /// keeps per-cycle draws instead). Advanced one geometric gap draw
    /// per arrival ([`GapSampler`]), so idle sources cost no RNG work
    /// at all.
    next_offer: Vec<u64>,
    /// Per-router RNG streams (see [`node_rng`]).
    rngs: Vec<StdRng>,
    /// Geometric gap sampler for the Bernoulli renewal chain, built
    /// once from the ON rate (unused by bursty configurations).
    gap: GapSampler,
    /// Per-source packet sequence numbers (see [`packet_id`]).
    next_seq: Vec<u64>,
    cycle: u64,
    visit_reversed: bool,
    /// Credit counters, `router * 5V + port * V + vc` — free slots in
    /// the downstream input VC buffer reachable through that output
    /// lane (0 for edge ports without a link; Local lanes unused, the
    /// ejection port always sinks). The reference kernel rebuilds them
    /// every cycle; the active-set and sharded kernels maintain them
    /// incrementally on departure (consume) and downstream pop
    /// (return).
    credits: Vec<u32>,
    eject: Vec<EjectProgress>,

    // ---- SoA per-lane state (indexed `router * 5V + port * V + vc`) ----
    /// Consecutive idle cycles per output VC lane.
    idle_run: Vec<u64>,
    /// Sleep FSM per output VC lane.
    fsm: Vec<SleepFsm>,
    /// Gating counters per router (all lanes summed).
    counters: Vec<GatingCounters>,
    /// Last cycle a (now quiescent) router was stepped or accounted
    /// through; the gap to the current cycle is its pending bulk-idle
    /// accounting.
    last_stepped: Vec<u64>,

    // ---- Shared immutable lookup state ----
    neighbors: NeighborTable,
    routes: Option<RouteTable>,
    /// Expanded fault schedule (`None` when [`MeshConfig::faults`] is
    /// unset or the plan produces no events). Epochs are applied at
    /// cycle boundaries by the three-pass reap in [`run_worker`];
    /// `ShardScratch::epoch` tracks how many each tile has applied.
    faults: Option<FaultSchedule>,
    /// Cached `(x, y)` per router id, so the hot route closure's
    /// dateline-class computation ([`Mesh::hop_vc_at`]) performs no
    /// divisions — the same treatment [`NeighborTable`] gives
    /// neighbour lookup.
    xy: Vec<(u16, u16)>,

    // ---- Tile partition ----
    /// The tile partition (a single tile for the serial kernels).
    tiles: TileMap,
    /// Per-shard worklists, scratch and counters (one entry for the
    /// serial kernels).
    scratch: Vec<ShardScratch>,
    /// Resolved worker-thread budget for the sharded kernel.
    threads: usize,
}

/// Per-shard persistent state: the tile's worklist bitset, per-cycle
/// scratch, mailbox staging buffers, and the tile's share of the
/// network-wide conservation counters.
#[derive(Debug)]
struct ShardScratch {
    /// Shard index.
    shard: usize,
    /// First global router id of the tile.
    base: usize,
    /// Routers in the tile.
    len: usize,
    /// The tile's worklist as a bitset over *local* router indices
    /// (bit `lr` set ⇔ router `base + lr` steps this cycle). A bitset
    /// keeps the traversal in router-index order — cache-linear over
    /// the tile's slice of the router array and the SoA lanes.
    active_bits: Vec<u64>,
    /// Reused per-cycle scratch: departures waiting to be applied.
    transfers: Vec<Transfer>,
    /// Reused per-router scratch for [`PortLane::idle_ended`].
    idle_ended: Vec<u64>,
    /// Staged outgoing boundary messages, parallel to
    /// `Mailboxes::outboxes(shard)`.
    outgoing: Vec<Vec<BoundaryMsg>>,
    /// Receiver-side drain buffers, parallel to
    /// `Mailboxes::inboxes(shard)`.
    incoming: Vec<Vec<BoundaryMsg>>,
    /// Flits injected by this tile's sources since construction.
    flits_injected: u64,
    /// Flits still waiting in this tile's source queues (maintained
    /// incrementally; the O(n) scan is debug-asserted against it).
    queued_flits: u64,
    /// Flits buffered in this tile's routers (maintained
    /// incrementally: inject drain +1, ejection −1, boundary departure
    /// −1, boundary arrival +1).
    buffered_flits: u64,
    /// Consecutive cycles with buffered flits but zero network-wide
    /// progress — every shard computes the same value from the shared
    /// progress slots, so the watchdog decision is global and
    /// deterministic.
    stagnant_cycles: u64,
    /// Router-step executions in this tile (the quiescence tests
    /// assert an all-idle run performs none).
    routers_stepped: u64,
    /// Fault epochs this tile has applied — advanced in lockstep by
    /// the three-pass reap, so every shard agrees on the active
    /// [`FaultMap`] at every cycle.
    epoch: usize,
    /// Flits discarded by fault reaping since construction (persists
    /// across runs, like `flits_injected` — together they keep flit
    /// conservation exact: injected = delivered + in flight +
    /// dropped).
    flits_dropped: u64,
    /// This tile's statistics for the current measurement window —
    /// tile-sized, locally indexed — merged into the run result in
    /// ascending shard order via [`NetworkStats::merge_shard`].
    stats: Option<NetworkStats>,
    /// Event-kernel prediction state (`None` on every other kernel).
    events: Option<Box<EventState>>,
    /// Cycles the event kernel skipped outright (performance
    /// telemetry, deliberately *outside* [`NetworkStats`] so the
    /// bit-identity contract stays about simulated behaviour).
    cycles_leapt: u64,
    /// Injection-arrival events fired by the event kernel.
    events_processed: u64,
    /// Leaps the event kernel took (jump count; `cycles_leapt` is the
    /// cycle total).
    leaps: u64,
    /// Measurement-boundary watermark of the current run. `Some(w)`
    /// means the window opened at cycle `w` under *deferred
    /// settlement*: routers whose `last_stepped ≤ w` and whose active
    /// bit is clear still owe the boundary reset of their idle runs,
    /// sleep FSMs and gating counters (their *settlement debt*), paid
    /// on first touch ([`ShardView::activate`]), at close-out
    /// ([`ShardView::close_run`]) or when an abort freezes the run.
    /// `None` during warmup, on the reference kernel and under
    /// [`MeshConfig::eager_settlement`].
    boundary: Option<u64>,
    /// Deferred boundary settlements paid, touch + close-out (persists
    /// across runs, like `cycles_leapt`).
    routers_settled: u64,
    /// The subset of `routers_settled` paid on *touch* — a wheel-event
    /// fire, an incoming flit — i.e. the per-leap settlement work the
    /// O(touched) claim is about.
    settle_ops: u64,
    /// Longest deferred span settled on touch (cycles between the
    /// watermark and the settlement).
    max_debt_span: u64,
}

/// The event kernel's scheduling state: one pending injection arrival
/// per source router, parked on a calendar-queue [`TimeWheel`].
///
/// Two modes, by injection process:
///
/// * **Bernoulli** — the wheel mirrors the shared renewal chain
///   (`Simulation::next_offer`): each router's next arrival cycle was
///   produced by one [`GapSampler`] draw, so entries are scheduled
///   once at run start and persist across fault epochs. A router that
///   is dead when its slot fires is a *miss*: no destination draw,
///   just the re-arm gap draw — the identical sequence the per-cycle
///   kernels consume in their lazy catch-up loop, so bit-identity
///   holds by construction. Dead routers stay scheduled (their misses
///   are the "phantom" events), which also bounds every leap.
/// * **Bursty on/off** — predictions replay the per-cycle draw order
///   (ON/OFF flip, offer coin, then destination on a hit) ahead of
///   wall-time. The invariant that buys bit-identity: router `l`'s
///   private stream has been consumed for every cycle in
///   `(run start, drawn_through[l]]` and no further. Because streams
///   are per-router ([`node_rng`]), consuming them ahead of wall-time
///   is unobservable; predictions never cross a fault-epoch boundary
///   (the aliveness map is only constant within one), so every epoch
///   re-arms the whole population.
#[derive(Debug)]
struct EventState {
    /// Pending arrivals keyed by absolute cycle (at most one per
    /// router: the *next* one).
    wheel: TimeWheel,
    /// Bursty only: last absolute cycle whose injection draws have
    /// been consumed from each router's stream.
    drawn_through: Vec<u64>,
    /// Bursty only: destination of the pending offer, valid while the
    /// router has an event scheduled. (Bernoulli draws the destination
    /// at fire time — pre-drawing would diverge if the router dies
    /// before the slot comes up.)
    pending_dst: Vec<u32>,
    /// Fault epoch the horizon was armed under; a mismatch (or the
    /// `usize::MAX` run-start sentinel) recomputes the horizon and, on
    /// bursty, re-predicts every router against it.
    armed_epoch: usize,
    /// Scheduling horizon (inclusive): the run's last cycle, clamped
    /// by the cycle budget and the next fault-epoch boundary, so leaps
    /// land on epoch edges and deadlines exactly.
    horizon: u64,
    /// Reused drain buffer for the ids due at the current cycle.
    due: Vec<u32>,
}

/// One worker's mutable window onto a tile: disjoint slices of every
/// per-router slab, plus the tile's scratch. Local index `lr`
/// addresses global router `base + lr`; lane arrays are indexed
/// `lr * 5V + port * V + vc`.
#[derive(Debug)]
struct ShardView<'a> {
    base: usize,
    len: usize,
    scratch: &'a mut ShardScratch,
    routers: &'a mut [Router],
    source_queues: &'a mut [VecDeque<SourcePacket>],
    source_on: &'a mut [bool],
    next_offer: &'a mut [u64],
    rngs: &'a mut [StdRng],
    next_seq: &'a mut [u64],
    credits: &'a mut [u32],
    eject: &'a mut [EjectProgress],
    idle_run: &'a mut [u64],
    fsm: &'a mut [SleepFsm],
    counters: &'a mut [GatingCounters],
    last_stepped: &'a mut [u64],
}

/// One shard's contribution to a fault-epoch boundary, exchanged
/// through a mutex (cold path: faults fire a handful of times per
/// run, never per cycle). Pass 1 fills `doomed` (sorted packet ids
/// nominated by this shard's scan); pass 2 reads every shard's
/// nominations and fills `credit_returns` (global lane index → count)
/// for slots freed in this tile whose upstream lane may live
/// elsewhere; pass 3 applies the returns lane-owner-side.
#[derive(Debug, Default)]
struct FaultReap {
    doomed: Vec<u64>,
    credit_returns: Vec<(u64, u32)>,
}

/// Shared, immutable context of one `run` call (everything a worker
/// needs beyond its own [`ShardView`]).
#[derive(Debug)]
struct RunCtx<'a> {
    cfg: &'a MeshConfig,
    kernel: SimKernel,
    mesh: Mesh,
    vcs: usize,
    lanes: usize,
    neighbors: &'a NeighborTable,
    routes: Option<&'a RouteTable>,
    xy: &'a [(u16, u16)],
    tiles: &'a TileMap,
    mail: &'a Mailboxes<BoundaryMsg>,
    slots: &'a [ShardSlots],
    barrier: &'a SpinBarrier,
    workers: usize,
    visit_reversed: bool,
    warmup: u64,
    measure: u64,
    start_cycle: u64,
    /// Whether this run defers the measurement-boundary settlement of
    /// untouched routers (the debt/watermark scheme). Off for the
    /// reference kernel — it fills the worklist wholesale instead of
    /// going through `activate`, so debts would never be paid — and
    /// under [`MeshConfig::eager_settlement`].
    deferred: bool,
    on_rate: f64,
    /// Geometric gap sampler for the Bernoulli renewal chain.
    gap: &'a GapSampler,
    /// The run's fault schedule (`None` = healthy network, zero
    /// fault-layer cost on the hot path).
    faults: Option<&'a FaultSchedule>,
    /// Per-shard fault-reap exchange slots (see [`FaultReap`]).
    fault_slots: &'a [Mutex<FaultReap>],
    /// Where a worker records why the run stopped early. Written at
    /// most once per run (the abort decision is globally deterministic,
    /// so the first writer's value is the value); read by
    /// [`Simulation::try_run`] after the workers join.
    abort: &'a Mutex<Option<SimAbort>>,
}

impl Simulation {
    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (empty mesh, zero-length
    /// packets, zero buffers, a VC count outside `1..=`[`MAX_VCS`], a
    /// zero source-queue cap, an [`GatingPolicy::Oracle`] in-loop
    /// policy — the oracle needs future knowledge and only exists
    /// offline — or a bursty process with zero mean dwell times).
    pub fn new(cfg: MeshConfig) -> Self {
        assert!(
            cfg.width >= 2 && cfg.height >= 2,
            "mesh must be at least 2×2"
        );
        assert!(cfg.packet_len_flits >= 1, "packets need at least one flit");
        assert!(cfg.buffer_depth >= 1, "buffers need at least one slot");
        assert!(
            (1..=MAX_VCS).contains(&cfg.vcs),
            "vcs must be in 1..={MAX_VCS}"
        );
        assert!(
            cfg.source_queue_cap >= 1,
            "source queues need room for at least one packet"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.injection_rate),
            "injection rate is a probability"
        );
        if let Some(gating) = &cfg.gating {
            assert!(
                gating.policy != GatingPolicy::Oracle,
                "the Oracle policy needs future knowledge; it exists only offline"
            );
        }
        if let InjectionProcess::BurstyOnOff {
            mean_burst,
            mean_idle,
        } = cfg.injection
        {
            assert!(
                mean_burst >= 1 && mean_idle >= 1,
                "bursty dwell times must be at least one cycle"
            );
            let duty = mean_burst as f64 / (mean_burst + mean_idle) as f64;
            assert!(
                cfg.injection_rate <= duty,
                "injection rate {} exceeds the ON duty cycle {duty:.3}; the bursty \
                 source saturates and cannot offer the configured load",
                cfg.injection_rate
            );
        }
        let mesh = Mesh {
            width: cfg.width,
            height: cfg.height,
            wrap: cfg.wrap,
        };
        let n = mesh.len();
        let v = cfg.vcs;
        let lanes = 5 * v;
        let kernel = cfg.kernel.resolve_for(n, cfg.injection_rate);
        if cfg.faults.is_some() {
            assert!(
                n <= FaultMap::MAX_ROUTERS,
                "faulted meshes are capped at {} routers (the fault layer \
                 keeps per-destination BFS routing tables)",
                FaultMap::MAX_ROUTERS
            );
        }
        // Expanded once, up front: the schedule is a pure function of
        // (plan, mesh), shared read-only by every worker.
        let faults = cfg
            .faults
            .as_ref()
            .and_then(|plan| FaultSchedule::build(plan, &mesh));
        // Shard geometry: the serial kernels always run one tile; the
        // sharded kernel defaults to one tile per available core,
        // clamped so every tile band owns at least one row. The shard
        // count never changes results — only how work is partitioned.
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let (shard_count, threads) = match kernel {
            SimKernel::Sharded => {
                let s = if cfg.shards > 0 { cfg.shards } else { cores };
                let s = s.clamp(1, cfg.height);
                let t = if cfg.threads > 0 { cfg.threads } else { cores };
                (s, t.clamp(1, s))
            }
            _ => (1, 1),
        };
        let tiles = TileMap::new(&mesh, shard_count);
        // Initial credits: the full per-VC depth wherever a link
        // exists, zero on edge ports (so `credit > 0` doubles as the
        // link-existence check in the hot readiness closure).
        let mut credits = vec![0u32; n * lanes];
        for rid in 0..n {
            for d in &Direction::ALL[..4] {
                if mesh.neighbor(rid, *d).is_some() {
                    for vc in 0..v {
                        credits[rid * lanes + d.index() * v + vc] = cfg.buffer_depth as u32;
                    }
                }
            }
        }
        let scratch: Vec<ShardScratch> = (0..shard_count)
            .map(|s| {
                let range = tiles.router_range(s);
                ShardScratch {
                    shard: s,
                    base: range.start,
                    len: range.len(),
                    active_bits: vec![0; range.len().div_ceil(64)],
                    transfers: Vec::new(),
                    idle_ended: vec![0; lanes],
                    outgoing: vec![Vec::new(); tiles.neighbors(s).len()],
                    incoming: vec![Vec::new(); tiles.neighbors(s).len()],
                    flits_injected: 0,
                    queued_flits: 0,
                    buffered_flits: 0,
                    stagnant_cycles: 0,
                    routers_stepped: 0,
                    epoch: 0,
                    flits_dropped: 0,
                    stats: None,
                    events: None,
                    cycles_leapt: 0,
                    events_processed: 0,
                    leaps: 0,
                    boundary: None,
                    routers_settled: 0,
                    settle_ops: 0,
                    max_debt_span: 0,
                }
            })
            .collect();
        // The Bernoulli renewal chain: each live source's first arrival
        // is drawn at construction — the first draw on its stream, in
        // every kernel — and re-drawn once per subsequent arrival.
        let on_rate = cfg.injection.on_rate(cfg.injection_rate);
        let gap = GapSampler::new(on_rate);
        let mut rngs: Vec<StdRng> = (0..n).map(|rid| node_rng(cfg.seed, rid)).collect();
        let next_offer: Vec<u64> = match cfg.injection {
            InjectionProcess::Bernoulli if on_rate > 0.0 => {
                rngs.iter_mut().map(|rng| gap.sample(rng)).collect()
            }
            _ => vec![u64::MAX; n],
        };
        let sim = Simulation {
            mesh,
            kernel,
            routers: (0..n)
                .map(|id| Router::with_gating(id, cfg.buffer_depth, v, cfg.gating))
                .collect(),
            source_queues: vec![VecDeque::new(); n],
            source_on: vec![true; n],
            next_offer,
            rngs,
            gap,
            next_seq: vec![0; n],
            cycle: 0,
            visit_reversed: false,
            credits,
            eject: vec![EjectProgress::default(); n],
            idle_run: vec![0; n * lanes],
            fsm: vec![SleepFsm::default(); n * lanes],
            counters: vec![GatingCounters::default(); n],
            last_stepped: vec![0; n],
            neighbors: NeighborTable::new(&mesh),
            xy: (0..n)
                .map(|rid| {
                    let (x, y) = mesh.coords(rid);
                    (x as u16, y as u16)
                })
                .collect(),
            routes: (kernel != SimKernel::Reference)
                .then(|| RouteTable::build(&mesh))
                .flatten(),
            faults,
            tiles,
            scratch,
            threads,
            cfg,
        };
        // Every router starts empty, hence quiescent: the worklists
        // begin empty and fill from injection. Even gated networks
        // need no initial members — an idle lane's walk to sleep is
        // replayed in closed form when the router first activates.
        debug_assert!(sim
            .scratch
            .iter()
            .all(|s| s.active_bits.iter().all(|&w| w == 0)));
        sim
    }

    /// The mesh being simulated.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The kernel actually executing (`Auto` already resolved).
    pub fn kernel(&self) -> SimKernel {
        self.kernel
    }

    /// Virtual channels per port.
    pub fn vcs(&self) -> usize {
        self.cfg.vcs
    }

    /// The number of tile shards the simulation is partitioned into
    /// (1 for the serial kernels).
    pub fn shards(&self) -> usize {
        self.tiles.shards()
    }

    /// The resolved worker-thread budget (1 for the serial kernels).
    /// Purely an execution detail: results are identical for any
    /// thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Lanes per router (`5 * vcs`).
    fn lanes(&self) -> usize {
        5 * self.cfg.vcs
    }

    /// Routers in the current worklists — the ones the next cycle will
    /// step. The reference kernel steps everything, always.
    pub fn active_router_count(&self) -> usize {
        match self.kernel {
            SimKernel::Reference => self.mesh.len(),
            _ => self
                .scratch
                .iter()
                .flat_map(|s| s.active_bits.iter())
                .map(|w| w.count_ones() as usize)
                .sum(),
        }
    }

    /// Total router-step executions performed so far — the all-idle
    /// quiescence tests assert a settled network performs none.
    pub fn routers_stepped_total(&self) -> u64 {
        self.scratch.iter().map(|s| s.routers_stepped).sum()
    }

    /// Visits routers in reverse order within each cycle (within each
    /// tile, for the sharded kernel). With the cycle-start credit
    /// snapshot the visit order must not change any observable result
    /// — this knob exists so tests can prove it.
    pub fn set_visit_reversed(&mut self, reversed: bool) {
        self.visit_reversed = reversed;
    }

    /// Flits currently inside the network (source queues + buffers) —
    /// with the injected/delivered counters this gives exact flit
    /// conservation when measuring from cycle 0.
    ///
    /// O(shards): maintained incrementally at inject, accept and eject
    /// (debug builds re-derive it with the full scan and assert
    /// agreement), so watchdog-style progress checks never pay an
    /// O(routers × ports × vcs) walk per call.
    pub fn in_flight_flits(&self) -> u64 {
        let fast: u64 = self
            .scratch
            .iter()
            .map(|s| s.queued_flits + s.buffered_flits)
            .sum();
        debug_assert_eq!(
            fast,
            self.in_flight_flits_scanned(),
            "incremental in-flight counters diverged from the full scan"
        );
        fast
    }

    /// The O(routers × lanes) scan the incremental counters replace —
    /// kept as the debug oracle.
    fn in_flight_flits_scanned(&self) -> u64 {
        let len = self.cfg.packet_len_flits;
        let queued: u64 = self
            .source_queues
            .iter()
            .flat_map(|q| q.iter())
            .map(|p| p.remaining_flits(len))
            .sum();
        let buffered: usize = self.routers.iter().map(Router::total_occupancy).sum();
        queued + buffered as u64
    }

    /// Flits injected since construction (all cycles, not just the
    /// measurement window). O(shards).
    pub fn flits_injected_total(&self) -> u64 {
        self.scratch.iter().map(|s| s.flits_injected).sum()
    }

    /// Flits discarded by fault reaping since construction (all
    /// cycles, not just the measurement window). O(shards). With
    /// [`Simulation::flits_injected_total`] and
    /// [`Simulation::in_flight_flits`] this keeps flit conservation
    /// exact on faulted networks: measuring from cycle 0,
    /// `injected == delivered + in_flight + dropped_by_fault`.
    pub fn flits_dropped_by_fault_total(&self) -> u64 {
        self.scratch.iter().map(|s| s.flits_dropped).sum()
    }

    /// Cycles the event kernel leapt over since construction — whole
    /// simulated cycles that executed no per-cycle work at all. Always
    /// zero on the other kernels. Performance telemetry only: the
    /// counter lives outside [`NetworkStats`] so kernel choice can
    /// never perturb the bit-identity contract.
    pub fn cycles_leapt_total(&self) -> u64 {
        self.scratch.iter().map(|s| s.cycles_leapt).sum()
    }

    /// Injection-arrival events the event kernel fired since
    /// construction (one per accepted, dropped or unroutable offer).
    /// Always zero on the other kernels.
    pub fn events_processed_total(&self) -> u64 {
        self.scratch.iter().map(|s| s.events_processed).sum()
    }

    /// Leaps the event kernel took since construction (jump count;
    /// [`Simulation::cycles_leapt_total`] is the cycle total). Always
    /// zero on the other kernels.
    pub fn leaps_total(&self) -> u64 {
        self.scratch.iter().map(|s| s.leaps).sum()
    }

    /// Deferred measurement-boundary settlements paid since
    /// construction — on first touch, at close-out, or when an abort
    /// froze the run. Zero under eager settlement (the reference
    /// kernel, or [`MeshConfig::eager_settlement`]). Performance
    /// telemetry only, like [`Simulation::cycles_leapt_total`].
    pub fn routers_settled_total(&self) -> u64 {
        self.scratch.iter().map(|s| s.routers_settled).sum()
    }

    /// The subset of [`Simulation::routers_settled_total`] paid on
    /// *touch* (wheel-event fire or incoming flit) rather than in the
    /// close-out sweep — the per-leap settlement work.
    pub fn settle_ops_total(&self) -> u64 {
        self.scratch.iter().map(|s| s.settle_ops).sum()
    }

    /// Longest deferred span settled on touch since construction
    /// (cycles between the measurement watermark and the settlement).
    pub fn max_debt_span(&self) -> u64 {
        self.scratch
            .iter()
            .map(|s| s.max_debt_span)
            .max()
            .unwrap_or(0)
    }

    /// Asserts the credit-conservation invariant: for every link, the
    /// credits held by the upstream output lane plus the flits buffered
    /// in the downstream input VC equal the per-VC buffer depth.
    ///
    /// The incremental-credit kernels re-check this in debug builds at
    /// the end of every serial cycle and at the end of every run (so
    /// `cargo test` exercises it on every simulated configuration);
    /// this public entry point lets integration tests assert it at
    /// arbitrary observation points in release builds too. The
    /// reference kernel rebuilds credits from the live buffers each
    /// cycle, making the invariant true by construction — calling this
    /// is then a no-op.
    pub fn check_credit_conservation(&self) {
        if self.kernel == SimKernel::Reference {
            return;
        }
        let v = self.cfg.vcs;
        let lanes = self.lanes();
        let depth = self.cfg.buffer_depth as u32;
        for rid in 0..self.mesh.len() {
            for d in &Direction::ALL[..4] {
                match self.neighbors.get(rid, *d) {
                    Some(next) => {
                        for vc in 0..v {
                            let held = self.credits[rid * lanes + d.index() * v + vc];
                            let buffered = self.routers[next].occupancy(d.opposite(), vc) as u32;
                            assert_eq!(
                                held + buffered,
                                depth,
                                "credit conservation broken: router {rid} {d} vc {vc}: \
                                 {held} credits + {buffered} buffered != depth {depth}"
                            );
                        }
                    }
                    None => {
                        for vc in 0..v {
                            assert_eq!(
                                self.credits[rid * lanes + d.index() * v + vc],
                                0,
                                "edge lane must hold no credits"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Runs `warmup` cycles unmeasured, then `measure` cycles with
    /// statistics collection, and returns the stats.
    ///
    /// # Panics
    ///
    /// Panics if the run aborts — watchdog deadlock or cycle-budget
    /// overrun — with the [`SimAbort`] display text (for a deadlock,
    /// the full per-lane diagnostic). Supervised callers that want the
    /// abort as a value use [`Simulation::try_run`].
    pub fn run(&mut self, warmup: u64, measure: u64) -> NetworkStats {
        match self.try_run(warmup, measure) {
            Ok(stats) => stats,
            Err(abort) => panic!("{abort}"),
        }
    }

    /// Like [`Simulation::run`], but a watchdog deadlock or a
    /// [`MeshConfig::cycle_budget`] overrun comes back as
    /// `Err(`[`SimAbort`]`)` instead of a panic, so an orchestrator can
    /// record the failure and move on to the next configuration.
    /// (Exception: with [`MeshConfig::panic_on_deadlock`] set, the
    /// watchdog still panics at the fire site inside the worker.)
    ///
    /// After an `Err` the simulation holds the network frozen at the
    /// abort cycle — consistent (flit and credit conservation hold,
    /// the clock advances to the cycle the loop reached, and every
    /// outstanding settlement debt is paid through its partial span)
    /// but mid-traffic; a further run resumes from the abort cycle,
    /// and callers wanting a clean state build a fresh [`Simulation`].
    ///
    /// At the measurement boundary the idle runs *and* the sleep FSMs
    /// are reset, so the idle histograms and the in-loop gating
    /// counters describe exactly the same intervals.
    ///
    /// All three kernels run through the same two-phase engine: the
    /// per-router slabs are carved into per-shard [`ShardView`]s (one
    /// for the serial kernels) and each worker executes the cycle loop
    /// over its tiles, exchanging boundary traffic through the
    /// mailboxes at the phase barrier. Per-shard statistics are merged
    /// in ascending shard order.
    pub fn try_run(&mut self, warmup: u64, measure: u64) -> Result<NetworkStats, SimAbort> {
        let n = self.mesh.len();
        let vcs = self.cfg.vcs;
        let lanes = self.lanes();
        let shard_count = self.tiles.shards();
        // Workers: cap the thread budget so every worker owns at least
        // one tile, and count the *actual* participants for the
        // barrier.
        let per_worker = shard_count.div_ceil(self.threads.max(1));
        let workers = shard_count.div_ceil(per_worker);
        let mail = boundary_mailboxes(&self.tiles);
        let slots: Vec<ShardSlots> = (0..shard_count).map(|_| ShardSlots::default()).collect();
        let fault_slots: Vec<Mutex<FaultReap>> =
            (0..shard_count).map(|_| Mutex::default()).collect();
        let barrier = SpinBarrier::new(workers);
        let abort_slot: Mutex<Option<SimAbort>> = Mutex::new(None);

        let merged = {
            let Simulation {
                cfg,
                kernel,
                mesh,
                routers,
                source_queues,
                source_on,
                next_offer,
                rngs,
                gap,
                next_seq,
                cycle,
                visit_reversed,
                credits,
                eject,
                idle_run,
                fsm,
                counters,
                last_stepped,
                neighbors,
                routes,
                faults,
                xy,
                tiles,
                scratch,
                ..
            } = self;
            let ctx = RunCtx {
                cfg: &*cfg,
                kernel: *kernel,
                mesh: *mesh,
                vcs,
                lanes,
                neighbors: &*neighbors,
                routes: routes.as_ref(),
                xy: xy.as_slice(),
                tiles: &*tiles,
                mail: &mail,
                slots: &slots,
                barrier: &barrier,
                workers,
                visit_reversed: *visit_reversed,
                warmup,
                measure,
                start_cycle: *cycle,
                deferred: *kernel != SimKernel::Reference && !cfg.eager_settlement,
                on_rate: cfg.injection.on_rate(cfg.injection_rate),
                gap: &*gap,
                faults: faults.as_ref(),
                fault_slots: &fault_slots,
                abort: &abort_slot,
            };

            // Carve every per-router slab into disjoint per-tile
            // slices (tiles are contiguous id ranges by construction).
            let mut views: Vec<ShardView<'_>> = Vec::with_capacity(shard_count);
            {
                let mut routers = routers.as_mut_slice();
                let mut source_queues = source_queues.as_mut_slice();
                let mut source_on = source_on.as_mut_slice();
                let mut next_offer = next_offer.as_mut_slice();
                let mut rngs = rngs.as_mut_slice();
                let mut next_seq = next_seq.as_mut_slice();
                let mut credits = credits.as_mut_slice();
                let mut eject = eject.as_mut_slice();
                let mut idle_run = idle_run.as_mut_slice();
                let mut fsm = fsm.as_mut_slice();
                let mut counters = counters.as_mut_slice();
                let mut last_stepped = last_stepped.as_mut_slice();
                macro_rules! take {
                    ($rest:ident, $n:expr) => {{
                        let (head, tail) = $rest.split_at_mut($n);
                        $rest = tail;
                        head
                    }};
                }
                for sc in scratch.iter_mut() {
                    let len = sc.len;
                    views.push(ShardView {
                        base: sc.base,
                        len,
                        routers: take!(routers, len),
                        source_queues: take!(source_queues, len),
                        source_on: take!(source_on, len),
                        next_offer: take!(next_offer, len),
                        rngs: take!(rngs, len),
                        next_seq: take!(next_seq, len),
                        credits: take!(credits, len * lanes),
                        eject: take!(eject, len),
                        idle_run: take!(idle_run, len * lanes),
                        fsm: take!(fsm, len * lanes),
                        counters: take!(counters, len),
                        last_stepped: take!(last_stepped, len),
                        scratch: sc,
                    });
                }
            }

            if workers == 1 {
                run_worker(&mut views, &ctx);
            } else {
                std::thread::scope(|scope| {
                    for group in views.chunks_mut(per_worker) {
                        let ctx = &ctx;
                        scope.spawn(move || run_worker(group, ctx));
                    }
                });
            }
            drop(views);
            // An aborted run stops mid-cycle-loop: report it without
            // touching the per-shard stats (the network stays frozen
            // for post-mortem inspection) — but the cycle counter
            // advances to the cycle the loop actually reached, so a
            // later run resumes time monotonically (in-flight flits
            // keep injection stamps from the aborted window). The
            // remaining debtors' deferred boundary resets are paid
            // here, so the frozen slabs are bit-identical to an eager
            // run cut short at the same cycle. A debtor settles
            // exactly the *partial* span it owes: nothing since the
            // watermark ever touched it, so the boundary reset is its
            // entire settlement.
            if let Some(abort) = abort_slot.lock().expect("abort slot poisoned").take() {
                *cycle = match &abort {
                    // The watchdog names the cycle it fired on; the
                    // budget check stops every worker at the top of
                    // iteration `budget`, so exactly `budget` cycles
                    // completed.
                    SimAbort::Deadlock { cycle: at, .. } => *at,
                    SimAbort::CycleBudgetExceeded { budget, .. } => ctx.start_cycle + budget,
                };
                for sc in scratch.iter_mut() {
                    let Some(w) = sc.boundary.take() else {
                        continue;
                    };
                    for lr in 0..sc.len {
                        if sc.active_bits[lr / 64] & (1u64 << (lr % 64)) != 0 {
                            continue;
                        }
                        let rid = sc.base + lr;
                        if last_stepped[rid] > w {
                            continue;
                        }
                        idle_run[rid * lanes..(rid + 1) * lanes].fill(0);
                        for f in &mut fsm[rid * lanes..(rid + 1) * lanes] {
                            f.reset();
                        }
                        counters[rid] = GatingCounters::default();
                        last_stepped[rid] = w;
                        sc.routers_settled += 1;
                    }
                }
                return Err(abort);
            }
            *cycle += warmup + measure;

            // Deterministic reduction: ascending shard order. The
            // serial kernels' single tile covers the whole network, so
            // its record is the run's record, taken as-is — at a
            // million routers a copy-and-merge here would cost more
            // than the entire event-kernel cycle loop.
            let mut merged = if shard_count == 1 {
                scratch[0]
                    .stats
                    .take()
                    .unwrap_or_else(|| NetworkStats::new(n, vcs, NetworkStats::DEFAULT_IDLE_BINS))
            } else {
                let mut merged = NetworkStats::new(n, vcs, NetworkStats::DEFAULT_IDLE_BINS);
                for sc in scratch.iter_mut() {
                    if let Some(s) = sc.stats.take() {
                        merged.merge_shard(&s, sc.base);
                    }
                }
                merged
            };
            merged.measured_cycles = measure;
            // The per-tile stats cannot see the whole mesh, so the
            // network-wide degradation floor is stamped here, once.
            if let Some(f) = faults.as_ref() {
                merged.min_reachable_fraction =
                    merged.min_reachable_fraction.min(f.min_reachable_fraction);
            }
            merged
        };
        // Threaded runs check the credit invariant once here (the
        // serial path re-checks it every cycle in debug builds).
        #[cfg(debug_assertions)]
        self.check_credit_conservation();
        Ok(merged)
    }
}

/// One worker's whole run: the cycle loop over its tiles, with the
/// phase barrier between compute and exchange. The serial kernels call
/// this with a single group holding every tile and a 1-participant
/// (no-op) barrier — same code path, no synchronization cost.
fn run_worker(group: &mut [ShardView<'_>], ctx: &RunCtx<'_>) {
    let _guard = PoisonGuard(ctx.barrier);
    let total = ctx.warmup + ctx.measure;
    let budget = ctx.cfg.cycle_budget;
    if ctx.kernel == SimKernel::EventDriven {
        // Fresh prediction state per run: the frontier starts at the
        // run's first cycle; the first cycle's prologue arms every
        // router against the then-current fault epoch.
        group[0].reset_events(ctx);
    }
    let mut i = 0;
    while i < total {
        // In-engine deadline: the budget predicate is a pure function
        // of the loop index, so every worker evaluates it identically
        // at the top of the same iteration and all return together
        // without another barrier. The lowest shard records the abort.
        if budget != 0 && i >= budget {
            if group[0].scratch.shard == 0 {
                let mut slot = ctx.abort.lock().expect("abort slot poisoned");
                *slot = Some(SimAbort::CycleBudgetExceeded {
                    budget,
                    requested: total,
                });
            }
            return;
        }
        let cycle = ctx.start_cycle + i + 1;
        if i == ctx.warmup {
            // Measurement boundary: reset idle runs and gating state so
            // warmup does not pollute the measurement. Quiescent
            // routers only need their skip markers moved to the
            // boundary — materializing their pending idle cycles would
            // be discarded by the resets anyway. Tile-local state only,
            // so no barrier is needed.
            for v in group.iter_mut() {
                v.open_measurement(ctx, ctx.start_cycle + ctx.warmup);
            }
        }
        // Fault-epoch boundaries apply *between* cycles, in three
        // barrier-separated passes, so every kernel and every shard ×
        // thread count sees exactly the same network at the start of
        // the cycle. The pending test is a pure function of
        // (schedule, applied-epoch count, cycle) — identical in every
        // worker, so all workers take the same barriers.
        if let Some(sched) = ctx.faults {
            while sched.pending(group[0].scratch.epoch, cycle) {
                // Pass 1: each shard scans its own routers and source
                // queues and nominates doomed packets into its slot.
                for v in group.iter_mut() {
                    v.fault_collect(ctx, sched);
                }
                ctx.barrier.wait();
                // Pass 2: each shard purges the union of all
                // nominations from its own state and publishes the
                // credits freed for (possibly remote) upstream lanes.
                for v in group.iter_mut() {
                    v.fault_purge(ctx, sched);
                }
                ctx.barrier.wait();
                // Pass 3: each shard applies the returns for lanes it
                // owns and advances its epoch counter.
                for v in group.iter_mut() {
                    v.fault_apply_credits(ctx);
                }
                ctx.barrier.wait();
            }
        }
        if ctx.kernel == SimKernel::EventDriven {
            // Event prologue: (re)arm predictions if a fault epoch
            // just moved the horizon, then — when the network holds no
            // flits at all — leap the loop index straight to the next
            // scheduled arrival (or horizon boundary). The landing
            // iteration re-enters at the top, so budget deadlines,
            // the measurement boundary and fault epochs all fire on
            // their exact cycles.
            if let Some(target) = group[0].event_prologue(ctx, cycle, i) {
                group[0].scratch.cycles_leapt += target - i;
                group[0].scratch.leaps += 1;
                i = target;
                continue;
            }
        }
        let parity = (cycle % 2) as usize;
        for v in group.iter_mut() {
            v.phase_compute(ctx, cycle, parity);
        }
        ctx.barrier.wait();
        let mut abort = false;
        for v in group.iter_mut() {
            abort |= v.phase_exchange(ctx, cycle, parity);
        }
        if cfg!(debug_assertions) && ctx.workers == 1 && ctx.kernel != SimKernel::Reference {
            assert_credit_sync(group, ctx);
        }
        if abort {
            // The watchdog fired network-wide; the designated shard
            // panicked with the diagnostic. Leave without touching the
            // barrier again so no worker waits on a peer that is gone.
            return;
        }
        i += 1;
    }
    for v in group.iter_mut() {
        v.close_run(ctx, ctx.start_cycle + total);
    }
}

/// Debug oracle for the incremental credit counters, run after every
/// serial cycle: every lane's credits plus the downstream buffer
/// occupancy must equal the depth. Reads across tiles, so it only runs
/// when one worker owns every view.
fn assert_credit_sync(views: &[ShardView<'_>], ctx: &RunCtx<'_>) {
    let depth = ctx.cfg.buffer_depth as u32;
    let v = ctx.vcs;
    let lanes = ctx.lanes;
    for view in views {
        for lr in 0..view.len {
            let rid = view.base + lr;
            for d in &Direction::ALL[..4] {
                for vc in 0..v {
                    let held = view.credits[lr * lanes + d.index() * v + vc];
                    match ctx.neighbors.get(rid, *d) {
                        Some(next) => {
                            let owner = &views[ctx.tiles.shard_of(next)];
                            let buffered =
                                owner.routers[next - owner.base].occupancy(d.opposite(), vc) as u32;
                            assert_eq!(
                                held + buffered,
                                depth,
                                "credit conservation broken: router {rid} {d} vc {vc}"
                            );
                        }
                        None => assert_eq!(held, 0, "edge lane must hold no credits"),
                    }
                }
            }
        }
    }
}

/// The doom rule for a fault-epoch boundary: a packet with a flit at
/// router `at` bound for `dst` is doomed iff the new fault map changes
/// (or removes) any hop of its remaining path. Wormhole packets
/// cannot be rerouted mid-flight — the worm's flits are strung along
/// the old path, and bending the route at any hop would tear the worm
/// across two paths — so any divergence kills the whole packet and
/// its flits are purged network-wide.
///
/// `old = None` means healthy routing (the XY table), which every
/// kernel computes identically ([`RouteTable`] is XY by
/// construction), so the doomed set is kernel- and
/// shard-count-independent.
fn path_diverges(
    ctx: &RunCtx<'_>,
    old: Option<&FaultMap>,
    new: Option<&FaultMap>,
    at: usize,
    dst: usize,
) -> bool {
    // A dead or disconnected destination dooms even flits already
    // sitting at `dst` awaiting ejection (the walk below would accept
    // them without stepping).
    if let Some(fm) = new {
        if !fm.reachable(at, dst) {
            return true;
        }
    }
    let mesh = &ctx.mesh;
    let step = |fm: Option<&FaultMap>, here: usize| -> Option<Direction> {
        match fm {
            Some(fm) => fm.route(here, dst),
            None => Some(mesh.route_xy(here, dst)),
        }
    };
    let mut here = at;
    while here != dst {
        let Some(nd) = step(new, here) else {
            return true;
        };
        match step(old, here) {
            Some(od) if od == nd => {}
            _ => return true,
        }
        here = mesh
            .neighbor(here, nd)
            .expect("routes only use existing links");
    }
    false
}

impl ShardView<'_> {
    /// Whether global router `rid` belongs to this tile.
    fn contains(&self, rid: usize) -> bool {
        (self.base..self.base + self.len).contains(&rid)
    }

    /// Measurement-boundary reset (see [`Simulation::run`]).
    ///
    /// Under deferred settlement (`ctx.deferred`) this is O(active),
    /// not O(tile): the boundary cycle is recorded as the watermark in
    /// `scratch.boundary` and only routers currently on the worklist
    /// are reset eagerly (they are mid-step — their lanes are live this
    /// very cycle). Every quiescent router keeps its stale warmup state
    /// as *settlement debt* — a debtor is recognizable later by
    /// `last_stepped ≤ watermark` with its active bit clear — paid on
    /// first touch ([`ShardView::activate`]) or in the close-out sweep
    /// ([`ShardView::close_run`]). The eager branch resets the whole
    /// tile up front: the reference kernel needs it (it fills the
    /// worklist wholesale, never through `activate`), and the
    /// lazy-settlement property tests run it as the oracle.
    fn open_measurement(&mut self, ctx: &RunCtx<'_>, boundary_cycle: u64) {
        if ctx.deferred {
            self.scratch.boundary = Some(boundary_cycle);
            for wi in 0..self.scratch.active_bits.len() {
                let mut word = self.scratch.active_bits[wi];
                while word != 0 {
                    let lr = wi * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    self.reset_router_gating(ctx, lr);
                    self.last_stepped[lr] = boundary_cycle;
                }
            }
        } else {
            self.last_stepped.fill(boundary_cycle);
            self.idle_run.fill(0);
            for f in self.fsm.iter_mut() {
                f.reset();
            }
            self.counters.fill(GatingCounters::default());
        }
        // The reset re-arms threshold sleeping (`slept_this_interval`
        // clears); quiescent routers need no reactivation — their walk
        // back to sleep is replayed in closed form when they next
        // flush or reactivate ([`SleepFsm::settle_idle_bulk`]).
        // Tile-sized record (local router indices): per-shard memory
        // stays proportional to the tile, not the network, and the
        // run-end reduction places it at `base` via
        // [`NetworkStats::merge_shard`].
        self.scratch.stats = Some(NetworkStats::new(
            self.len,
            ctx.vcs,
            NetworkStats::DEFAULT_IDLE_BINS,
        ));
    }

    /// Phase 1 of a cycle: inject, step this tile's routers against
    /// the cycle-start credit snapshot, apply tile-local transfers and
    /// stage boundary effects, then publish the progress slots and
    /// hand the staged batches to the mailboxes.
    fn phase_compute(&mut self, ctx: &RunCtx<'_>, cycle: u64, parity: usize) {
        let mut stats = self.scratch.stats.take();
        let drained = self.inject(ctx, cycle, &mut stats);
        if ctx.kernel == SimKernel::Reference {
            // The dense oracle: rebuild the credit snapshot from the
            // live buffers and step *every* router — expressed as a
            // full worklist so both kernels share one stepping path.
            self.rebuild_credits(ctx);
            let len = self.len;
            for (wi, w) in self.scratch.active_bits.iter_mut().enumerate() {
                let bits = (len - (wi * 64).min(len)).min(64);
                *w = if bits == 64 { !0 } else { (1u64 << bits) - 1 };
            }
        }
        self.route_active(ctx, cycle, &mut stats);
        let transfers = self.scratch.transfers.len() as u64;
        self.apply_transfers(ctx, cycle, &mut stats);
        ctx.slots[self.scratch.shard].publish(
            parity,
            transfers + drained,
            self.scratch.buffered_flits,
        );
        if ctx.tiles.shards() > 1 {
            let me = self.scratch.shard;
            for (k, &(_, bx)) in ctx.mail.outboxes(me).iter().enumerate() {
                ctx.mail.send(bx, parity, &mut self.scratch.outgoing[k]);
            }
        }
        self.scratch.stats = stats;
    }

    /// Phase 2 of a cycle, after the barrier: drain the inboxes
    /// (senders ascending) and apply boundary arrivals and credit
    /// returns, then take the global watchdog decision. Returns `true`
    /// when the watchdog fired and the worker must abort (the
    /// designated shard panics with the diagnostic instead of
    /// returning).
    fn phase_exchange(&mut self, ctx: &RunCtx<'_>, cycle: u64, parity: usize) -> bool {
        let mut stats = self.scratch.stats.take();
        if ctx.tiles.shards() > 1 {
            let me = self.scratch.shard;
            for k in 0..ctx.mail.inboxes(me).len() {
                let (_, bx) = ctx.mail.inboxes(me)[k];
                let mut incoming = std::mem::take(&mut self.scratch.incoming[k]);
                ctx.mail.receive(bx, parity, &mut incoming);
                for msg in incoming.drain(..) {
                    match msg {
                        BoundaryMsg::Arrival { rid, port, flit } => {
                            let rid = rid as usize;
                            let lr = rid - self.base;
                            self.routers[lr].accept(Direction::from_index(port as usize), flit);
                            self.scratch.buffered_flits += 1;
                            if let Some(s) = stats.as_mut() {
                                s.router_activity[lr].buffer_writes += 1;
                            }
                            // The receiver was already accounted idle
                            // for this whole cycle; it steps from the
                            // next one.
                            self.activate(ctx, lr, cycle, &mut stats);
                        }
                        BoundaryMsg::Credit { lane } => {
                            self.credits[lane as usize - self.base * ctx.lanes] += 1;
                        }
                    }
                }
                self.scratch.incoming[k] = incoming;
            }
        }
        self.scratch.stats = stats;

        // Zero-progress watchdog: every transfer both moves a flit and
        // returns a credit, so "no transfers anywhere and nothing
        // drained from any source queue" is exactly the no-progress
        // condition. All shards read the same slots, so the decision
        // is global and deterministic.
        if ctx.cfg.watchdog_cycles == 0 {
            return false;
        }
        let progress: u64 = ctx.slots.iter().map(|s| s.read_progress(parity)).sum();
        let buffered: u64 = ctx.slots.iter().map(|s| s.read_buffered(parity)).sum();
        if progress > 0 || buffered == 0 {
            self.scratch.stagnant_cycles = 0;
            return false;
        }
        self.scratch.stagnant_cycles += 1;
        if self.scratch.stagnant_cycles < ctx.cfg.watchdog_cycles {
            return false;
        }
        // Fired. The lowest shard holding blocked flits carries the
        // diagnostic; every other worker backs out quietly.
        let who = ctx
            .slots
            .iter()
            .position(|s| s.read_buffered(parity) > 0)
            .expect("buffered > 0 in some shard");
        if who == self.scratch.shard {
            let diagnostic = self.watchdog_report(ctx, cycle, buffered);
            if ctx.cfg.panic_on_deadlock {
                // Escape hatch: fail at the fire site so the wedged
                // worker's stack survives into the panic.
                panic!("{diagnostic}");
            }
            let mut slot = ctx.abort.lock().expect("abort slot poisoned");
            *slot = Some(SimAbort::Deadlock {
                cycle,
                buffered,
                diagnostic,
            });
        }
        true
    }

    /// End of run: settle all quiescent routers up to the final cycle,
    /// close out open idle runs and collect gating counters. Under
    /// deferred settlement this is the once-per-run walk that pays
    /// every remaining debtor ([`ShardView::close_run_deferred`]).
    fn close_run(&mut self, ctx: &RunCtx<'_>, end_cycle: u64) {
        if let Some(w) = self.scratch.boundary.take() {
            self.close_run_deferred(ctx, end_cycle, w);
            return;
        }
        let mut stats = self.scratch.stats.take();
        if ctx.kernel != SimKernel::Reference {
            for lr in 0..self.len {
                if self.scratch.active_bits[lr / 64] & (1u64 << (lr % 64)) == 0 {
                    let skipped = end_cycle - self.last_stepped[lr];
                    self.account_skipped(ctx, lr, skipped, &mut stats);
                    self.last_stepped[lr] = end_cycle;
                }
            }
        }
        if let Some(s) = stats.as_mut() {
            s.measured_cycles = ctx.measure;
            let lanes = ctx.lanes;
            for lr in 0..self.len {
                for lane in 0..lanes {
                    let run = std::mem::take(&mut self.idle_run[lr * lanes + lane]);
                    s.idle_histograms.lane_mut(lr, lane).record_open(run);
                }
                s.gating[lr] = self.counters[lr];
            }
        }
        self.scratch.stats = stats;
    }

    /// Deferred close-out: the only place remaining debtors are walked,
    /// and even that walk is O(1) per debtor. Every router that was
    /// never touched after the measurement boundary slept through the
    /// *identical* `boundary → end` span, so what the eager path would
    /// compute per router — boundary reset, one `account_skipped` over
    /// the span, one open-run record per lane — is computed **once**
    /// into a template (FSM end state, gating counters, arbitration
    /// count) and copied into each debtor's slabs. Debtor histograms
    /// are not even materialized: one `record_open` per lane lands on
    /// the [`IdleBank`] shared default row after every touched router
    /// has claimed its own row (ordering matters — see
    /// [`IdleBank::record_open_untouched`]).
    fn close_run_deferred(&mut self, ctx: &RunCtx<'_>, end_cycle: u64, w: u64) {
        let mut stats = self.scratch.stats.take();
        let lanes = ctx.lanes;
        let span = end_cycle - w;
        // Template: the state a full-window debtor ends the run in.
        // Replays account_skipped's gated branch lane by lane so the
        // shared per-router counters accumulate exactly as the eager
        // path's would (lane order is immaterial — every lane is
        // identical — but the *count* of settles is not).
        let mut tmpl_fsm = SleepFsm::default();
        let mut tmpl_counters = GatingCounters::default();
        let mut tmpl_arbs = 0u64;
        if span > 0 {
            match &ctx.cfg.gating {
                None => tmpl_arbs = lanes as u64 * span,
                Some(cfg) => {
                    let th = cfg.threshold();
                    for _ in 0..lanes {
                        let mut f = SleepFsm::default();
                        tmpl_arbs += f.settle_idle_bulk(span, 0, th, &mut tmpl_counters);
                        tmpl_fsm = f;
                    }
                }
            }
        }
        let mut debtors = 0u64;
        for lr in 0..self.len {
            let active = self.scratch.active_bits[lr / 64] & (1u64 << (lr % 64)) != 0;
            if !active && self.last_stepped[lr] <= w {
                // Debtor: stale warmup slabs become the template.
                let base = lr * lanes;
                self.idle_run[base..base + lanes].fill(0);
                self.fsm[base..base + lanes].fill(tmpl_fsm);
                self.counters[lr] = tmpl_counters;
                self.last_stepped[lr] = end_cycle;
                debtors += 1;
                if let Some(s) = stats.as_mut() {
                    let a = &mut s.router_activity[lr];
                    a.cycles += span;
                    a.arbitrations += tmpl_arbs;
                    s.gating[lr] = tmpl_counters;
                }
                continue;
            }
            if !active {
                let skipped = end_cycle - self.last_stepped[lr];
                self.account_skipped(ctx, lr, skipped, &mut stats);
                self.last_stepped[lr] = end_cycle;
            }
            if let Some(s) = stats.as_mut() {
                // Touched router: materialize its histogram row even if
                // every lane run is zero, so the shared-default open
                // run below cannot reach it.
                for lane in 0..lanes {
                    let run = std::mem::take(&mut self.idle_run[lr * lanes + lane]);
                    s.idle_histograms.lane_mut(lr, lane).record_open(run);
                }
                s.gating[lr] = self.counters[lr];
            }
        }
        self.scratch.routers_settled += debtors;
        if debtors > 0 {
            self.scratch.max_debt_span = self.scratch.max_debt_span.max(span);
        }
        if let Some(s) = stats.as_mut() {
            s.measured_cycles = ctx.measure;
            if span > 0 && debtors > 0 {
                s.idle_histograms.record_open_untouched(span);
            }
        }
        self.scratch.stats = stats;
    }

    /// Fault boundary, pass 1 of 3: scan this tile's buffered flits
    /// and in-flight source-queue fronts against the epoch about to
    /// apply, and nominate doomed packets ([`path_diverges`]) into
    /// this shard's reap slot. Read-only over the network state, so
    /// every shard scans concurrently.
    fn fault_collect(&mut self, ctx: &RunCtx<'_>, sched: &FaultSchedule) {
        let applied = self.scratch.epoch;
        let old = sched.map_after(applied);
        let new = sched.epochs[applied].map.as_ref();
        let mut slot = ctx.fault_slots[self.scratch.shard].lock().unwrap();
        let slot = &mut *slot;
        slot.doomed.clear();
        slot.credit_returns.clear();
        for lr in 0..self.len {
            let rid = self.base + lr;
            let doomed = &mut slot.doomed;
            self.routers[lr].for_each_flit(|f| {
                if path_diverges(ctx, old, new, rid, f.dst) {
                    doomed.push(f.packet_id);
                }
            });
            // A partially sent source packet is a worm whose tail is
            // still being synthesized: same doom rule, from the
            // source.
            if let Some(front) = self.source_queues[lr].front() {
                if front.sent > 0 && path_diverges(ctx, old, new, rid, front.dst) {
                    doomed.push(front.packet_id);
                }
            }
        }
        slot.doomed.sort_unstable();
        slot.doomed.dedup();
    }

    /// Fault boundary, pass 2 of 3: purge the union of every shard's
    /// nominations from this tile — router buffers, output-lane
    /// ownership, source-queue fronts and ejection progress — plus
    /// fully unsent queued packets whose destination the new map
    /// disconnects. Every freed buffer slot publishes a credit return
    /// for its upstream lane (applied lane-owner-side in pass 3), so
    /// credit conservation holds exactly across the boundary.
    fn fault_purge(&mut self, ctx: &RunCtx<'_>, sched: &FaultSchedule) {
        let new = sched.epochs[self.scratch.epoch].map.as_ref();
        // The merged doomed set: each slot is sorted, and the sorted
        // dedup of the union is independent of shard geometry.
        let mut doomed: Vec<u64> = Vec::new();
        for slot in ctx.fault_slots {
            doomed.extend_from_slice(&slot.lock().unwrap().doomed);
        }
        doomed.sort_unstable();
        doomed.dedup();
        let mut stats = self.scratch.stats.take();
        let is_doomed = |pid: u64| doomed.binary_search(&pid).is_ok();
        let v = ctx.vcs;
        let lanes = ctx.lanes;
        let plen = ctx.cfg.packet_len_flits;
        let mut returns: Vec<(u64, u32)> = Vec::new();
        let mut dropped_flits = 0u64;
        let mut unroutable = 0u64;
        for lr in 0..self.len {
            let rid = self.base + lr;
            let removed = self.routers[lr].purge_packets(is_doomed, |lane, _flit| {
                let port = Direction::from_index(lane / v);
                if port != Direction::Local {
                    let up = ctx
                        .neighbors
                        .get(rid, port)
                        .expect("buffered flits arrived over an existing link");
                    let glane = up * lanes + port.opposite().index() * v + (lane % v);
                    returns.push((glane as u64, 1));
                }
            });
            dropped_flits += removed as u64;
            self.scratch.buffered_flits -= removed as u64;
            let q = &mut self.source_queues[lr];
            if let Some(front) = q.front() {
                if front.sent > 0 && is_doomed(front.packet_id) {
                    let pkt = q.pop_front().expect("front exists");
                    let rem = pkt.remaining_flits(plen);
                    dropped_flits += rem;
                    self.scratch.queued_flits -= rem;
                }
            }
            // Remaining queued packets are fully unsent; those the new
            // map strands are discarded whole. The packets count as
            // unroutable (no flit of theirs ever entered the network)
            // but their queued flits were counted at injection, so
            // they still join the dropped-flit total — conservation
            // stays exact. A partially sent survivor still at the
            // front is kept: its path did not diverge, so its
            // destination is reachable.
            if let Some(fm) = new {
                let before = q.len();
                q.retain(|p| p.sent > 0 || fm.reachable(rid, p.dst));
                let removed_pkts = (before - q.len()) as u64;
                unroutable += removed_pkts;
                dropped_flits += removed_pkts * plen as u64;
                self.scratch.queued_flits -= removed_pkts * plen as u64;
            }
            // A doomed packet mid-ejection never completes; forget its
            // progress so the validator expects a fresh head next.
            if let Some((pid, _)) = self.eject[lr].current {
                if is_doomed(pid) {
                    self.eject[lr].current = None;
                }
            }
        }
        // Packet-level accounting: each doomed packet is counted once,
        // by the shard owning its source (recoverable from the id).
        let mut dropped_pkts = 0u64;
        for &pid in &doomed {
            if self.contains((pid >> PACKET_SEQ_BITS) as usize) {
                dropped_pkts += 1;
            }
        }
        self.scratch.flits_dropped += dropped_flits;
        if let Some(s) = stats.as_mut() {
            s.flits_dropped_by_fault += dropped_flits;
            s.packets_dropped_by_fault += dropped_pkts;
            s.packets_unroutable += unroutable;
        }
        ctx.fault_slots[self.scratch.shard]
            .lock()
            .unwrap()
            .credit_returns = returns;
        self.scratch.stats = stats;
    }

    /// Fault boundary, pass 3 of 3: apply every shard's published
    /// credit returns to the lanes this tile owns, then advance the
    /// epoch counter. (The reference kernel rebuilds credits from live
    /// buffers each cycle, so the returns are redundant there —
    /// harmless, and it keeps one code path.)
    fn fault_apply_credits(&mut self, ctx: &RunCtx<'_>) {
        let lanes = ctx.lanes;
        let lo = (self.base * lanes) as u64;
        let hi = ((self.base + self.len) * lanes) as u64;
        for slot in ctx.fault_slots {
            for &(lane, k) in slot.lock().unwrap().credit_returns.iter() {
                if (lo..hi).contains(&lane) {
                    self.credits[(lane - lo) as usize] += k;
                }
            }
        }
        self.scratch.epoch += 1;
    }

    /// Injection: generate new packets into this tile's source queues
    /// and move waiting flits into local input buffers. Every RNG draw
    /// comes from the node's own stream, so tiles inject independently
    /// yet identically to the serial kernels. Returns the number of
    /// flits moved into local input buffers (progress, for the
    /// watchdog).
    fn inject(&mut self, ctx: &RunCtx<'_>, cycle: u64, stats: &mut Option<NetworkStats>) -> u64 {
        if ctx.kernel == SimKernel::EventDriven {
            return self.inject_events(ctx, cycle, stats);
        }
        let len = ctx.cfg.packet_len_flits;
        let vcs = ctx.vcs;
        let activating = ctx.kernel != SimKernel::Reference;
        let fmap = ctx.faults.and_then(|s| s.map_after(self.scratch.epoch));
        let mut drained = 0u64;
        for l in 0..self.len {
            let src = self.base + l;
            // A dead router's source is silent: no bursty flip, no
            // offer. Skipping it entirely (rather than drawing and
            // discarding) keeps the node's stream a pure function of
            // its own alive-history — identical in every kernel.
            if fmap.is_some_and(|fm| !fm.router_alive(src)) {
                continue;
            }
            // One-cycle window: a bursty source replays its flip and
            // offer draws, a Bernoulli source compares the cycle
            // against its pre-drawn renewal slot (catching up offers
            // missed while dead) — no per-cycle RNG work at all.
            let due = ctx
                .cfg
                .injection
                .next_arrival(
                    ctx.on_rate,
                    &mut self.source_on[l],
                    &mut self.next_offer[l],
                    ctx.gap,
                    &mut self.rngs[l],
                    cycle - 1,
                    cycle,
                )
                .is_some();
            if due {
                if let Some(dst) = ctx
                    .cfg
                    .pattern
                    .destination(src, &ctx.mesh, &mut self.rngs[l])
                {
                    if fmap.is_some_and(|fm| !fm.reachable(src, dst)) {
                        // No surviving route: the offer is abandoned
                        // before any flit exists, like a source drop.
                        if let Some(s) = stats.as_mut() {
                            s.packets_unroutable += 1;
                        }
                    } else if self.source_queues[l].len() >= ctx.cfg.source_queue_cap {
                        // Queue at cap: reject the offer. The packet
                        // never existed, so conservation stays exact.
                        if let Some(s) = stats.as_mut() {
                            s.packets_dropped_at_source += 1;
                        }
                    } else {
                        let id = packet_id(src, self.next_seq[l]);
                        self.next_seq[l] += 1;
                        self.source_queues[l].push_back(SourcePacket {
                            packet_id: id,
                            dst,
                            injected_at: cycle,
                            sent: 0,
                            vc: ctx.mesh.injection_vc(id, vcs),
                        });
                        self.scratch.flits_injected += len as u64;
                        self.scratch.queued_flits += len as u64;
                        if let Some(s) = stats.as_mut() {
                            s.packets_injected += 1;
                        }
                        if activating {
                            // The router must be stepped *this* cycle
                            // (skipped cycles end at cycle − 1).
                            self.activate(ctx, l, cycle - 1, stats);
                        }
                    }
                }
                // After the destination draw: a Bernoulli source rolls
                // its renewal slot forward one gap (bursty draws
                // nothing here).
                ctx.cfg.injection.rearm_after_offer(
                    &mut self.next_offer[l],
                    ctx.gap,
                    &mut self.rngs[l],
                    cycle,
                );
            }
            drained += self.drain_source(l, src, len, stats);
        }
        drained
    }

    /// Moves waiting flits from router `l`'s source queue into its
    /// local input VC buffer (queue checked first so idle nodes never
    /// touch router memory). The source is FIFO: the front packet
    /// waits for its own VC even if a sibling VC has room. Returns the
    /// flits moved (progress, for the watchdog).
    fn drain_source(
        &mut self,
        l: usize,
        src: usize,
        len: usize,
        stats: &mut Option<NetworkStats>,
    ) -> u64 {
        let mut drained = 0u64;
        while let Some(pkt) = self.source_queues[l].front_mut() {
            if !self.routers[l].can_accept(Direction::Local, pkt.vc as usize) {
                break;
            }
            let flit = pkt
                .next_flit(src, len)
                .expect("queued descriptors have flits left");
            let done = pkt.remaining_flits(len) == 0;
            if done {
                self.source_queues[l].pop_front();
            }
            self.routers[l].accept(Direction::Local, flit);
            self.scratch.buffered_flits += 1;
            self.scratch.queued_flits -= 1;
            drained += 1;
            if let Some(s) = stats.as_mut() {
                s.router_activity[l].buffer_writes += 1;
            }
        }
        drained
    }

    /// Event-driven injection: the per-cycle scan (and its per-router
    /// RNG draws) is replaced by firing the offers the wheel says are
    /// due *now* — their draws were consumed in bulk by
    /// [`ShardView::predict_router`] — then draining source queues.
    /// Only routers on the worklist can hold queued packets (a packet
    /// enqueue activates its router, and retirement requires an empty
    /// queue), so the drain walks the active bitset instead of the
    /// whole tile: the cost per cycle is O(due events + active
    /// routers), independent of mesh size.
    fn inject_events(
        &mut self,
        ctx: &RunCtx<'_>,
        cycle: u64,
        stats: &mut Option<NetworkStats>,
    ) -> u64 {
        let len = ctx.cfg.packet_len_flits;
        let vcs = ctx.vcs;
        let fmap = ctx.faults.and_then(|s| s.map_after(self.scratch.epoch));
        let mut ev = self
            .scratch
            .events
            .take()
            .expect("event state armed at run start");
        let mut due = std::mem::take(&mut ev.due);
        due.clear();
        ev.wheel.drain_due(cycle, &mut due);
        for &l32 in &due {
            let l = l32 as usize;
            let src = self.base + l;
            self.scratch.events_processed += 1;
            // Resolve the offer destination the way the cycle loop
            // would at this exact cycle. A Bernoulli arrival draws its
            // destination *now* (fire time — a dead router's arrival
            // is a miss that consumes only its catch-up gap, exactly
            // like the per-cycle kernels' lazy catch-up at revival); a
            // bursty arrival pre-drew it at prediction time, which is
            // sound because bursty predictions never cross a fault
            // epoch.
            let offer = match ctx.cfg.injection {
                InjectionProcess::Bernoulli => {
                    debug_assert_eq!(self.next_offer[l], cycle, "stale wheel entry");
                    if fmap.is_some_and(|fm| !fm.router_alive(src)) {
                        None
                    } else {
                        ctx.cfg
                            .pattern
                            .destination(src, &ctx.mesh, &mut self.rngs[l])
                    }
                }
                InjectionProcess::BurstyOnOff { .. } => {
                    debug_assert_eq!(ev.drawn_through[l], cycle, "stale pending arrival");
                    Some(ev.pending_dst[l] as usize)
                }
            };
            // Replicate the cycle loop's offer outcome exactly —
            // including the fire-time reachability check against the
            // *current* epoch's map.
            if let Some(dst) = offer {
                if fmap.is_some_and(|fm| !fm.reachable(src, dst)) {
                    if let Some(s) = stats.as_mut() {
                        s.packets_unroutable += 1;
                    }
                } else if self.source_queues[l].len() >= ctx.cfg.source_queue_cap {
                    if let Some(s) = stats.as_mut() {
                        s.packets_dropped_at_source += 1;
                    }
                } else {
                    let id = packet_id(src, self.next_seq[l]);
                    self.next_seq[l] += 1;
                    self.source_queues[l].push_back(SourcePacket {
                        packet_id: id,
                        dst,
                        injected_at: cycle,
                        sent: 0,
                        vc: ctx.mesh.injection_vc(id, vcs),
                    });
                    self.scratch.flits_injected += len as u64;
                    self.scratch.queued_flits += len as u64;
                    if let Some(s) = stats.as_mut() {
                        s.packets_injected += 1;
                    }
                    // The router must be stepped *this* cycle (skipped
                    // cycles end at cycle − 1).
                    self.activate(ctx, l, cycle - 1, stats);
                }
            }
            // This offer consumed the stream through `cycle`; roll the
            // router forward to its next arrival.
            match ctx.cfg.injection {
                InjectionProcess::Bernoulli => {
                    ctx.cfg.injection.rearm_after_offer(
                        &mut self.next_offer[l],
                        ctx.gap,
                        &mut self.rngs[l],
                        cycle,
                    );
                    if self.next_offer[l] != u64::MAX {
                        ev.wheel.schedule(self.next_offer[l], l32);
                    }
                }
                InjectionProcess::BurstyOnOff { .. } => self.predict_router(ctx, &mut ev, l),
            }
        }
        due.clear();
        ev.due = due;
        self.scratch.events = Some(ev);
        // Drain waiting flits for every router on the worklist (the
        // only routers that can hold queued packets — see above).
        let mut drained = 0u64;
        for w in 0..self.scratch.active_bits.len() {
            let mut word = self.scratch.active_bits[w];
            while word != 0 {
                let l = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                drained += self.drain_source(l, self.base + l, len, stats);
            }
        }
        drained
    }

    /// Run-start (re)initialization of the event kernel's prediction
    /// state: the RNG frontier starts at the run's first cycle and the
    /// `armed_epoch` sentinel forces the first cycle's
    /// [`ShardView::event_prologue`] to arm every router against the
    /// then-current fault epoch.
    fn reset_events(&mut self, ctx: &RunCtx<'_>) {
        let start = ctx.start_cycle;
        self.scratch.events = Some(Box::new(EventState {
            wheel: TimeWheel::new(start + 1),
            drawn_through: vec![start; self.len],
            pending_dst: vec![0; self.len],
            armed_epoch: usize::MAX,
            horizon: start,
            due: Vec::new(),
        }));
    }

    /// Event-kernel per-cycle prologue: re-arms predictions when the
    /// applied fault epoch moved the horizon, then decides whether the
    /// clock may leap. Returns the loop index to jump to when the
    /// whole tile (= the whole network — the event kernel is
    /// single-shard) holds no flits anywhere: nothing can happen until
    /// the next scheduled arrival, so every skipped cycle is provably
    /// dead and its idle time is settled later by the same deferred
    /// bulk accounting the worklist kernel uses.
    fn event_prologue(&mut self, ctx: &RunCtx<'_>, cycle: u64, i: u64) -> Option<u64> {
        let mut ev = self
            .scratch
            .events
            .take()
            .expect("event state armed at run start");
        if ev.armed_epoch != self.scratch.epoch {
            self.rearm_events(ctx, &mut ev);
        }
        let mut leap = None;
        if self.scratch.buffered_flits == 0 && self.scratch.queued_flits == 0 {
            // Quiescent: leap to the next arrival, capped one past the
            // horizon (the next fault-epoch boundary, or the end of
            // the run — Bernoulli renewal entries stay parked on the
            // wheel across epochs, so the next arrival may lie beyond
            // the boundary and the reap must still run on its exact
            // cycle).
            let target_cycle = ev
                .wheel
                .next_event(cycle)
                .unwrap_or(u64::MAX)
                .min(ev.horizon + 1);
            let mut target = target_cycle - ctx.start_cycle - 1;
            if i < ctx.warmup {
                // Never leap past the measurement boundary: iteration
                // `warmup` must execute `open_measurement`.
                target = target.min(ctx.warmup);
            }
            if ctx.cfg.cycle_budget != 0 {
                // Land exactly on the budget index so the in-engine
                // deadline aborts on the same cycle as every kernel.
                target = target.min(ctx.cfg.cycle_budget);
            }
            target = target.min(ctx.warmup + ctx.measure);
            if target > i {
                leap = Some(target);
            }
        }
        self.scratch.events = Some(ev);
        leap
    }

    /// Re-arms arrival predictions for the current fault epoch: the
    /// horizon is the run's last cycle clamped by the cycle budget and
    /// the next epoch boundary.
    ///
    /// Only the bursty process predicts per epoch — each alive
    /// router's stream is rolled forward to its first offer in the
    /// window, while dead routers draw nothing (their streams stay
    /// frozen, exactly like the cycle loop's skip), so revival at a
    /// later epoch resumes from the same stream position in every
    /// kernel. Bernoulli renewal entries are scheduled once per run
    /// and stay parked across epochs: the arrival *times* are
    /// independent of the alive-map (a dead router's due arrival is a
    /// miss, handled at fire time), so epoch boundaries only move the
    /// horizon.
    fn rearm_events(&mut self, ctx: &RunCtx<'_>, ev: &mut EventState) {
        let run_start = ev.armed_epoch == usize::MAX;
        let mut horizon = ctx.start_cycle + ctx.warmup + ctx.measure;
        if ctx.cfg.cycle_budget != 0 {
            horizon = horizon.min(ctx.start_cycle.saturating_add(ctx.cfg.cycle_budget));
        }
        if let Some(sched) = ctx.faults {
            if let Some(e) = sched.epochs.get(self.scratch.epoch) {
                horizon = horizon.min(e.start.saturating_sub(1));
            }
        }
        ev.horizon = horizon;
        ev.armed_epoch = self.scratch.epoch;
        match ctx.cfg.injection {
            InjectionProcess::Bernoulli => {
                if run_start {
                    for l in 0..self.len {
                        let offer = self.next_offer[l];
                        if offer != u64::MAX {
                            debug_assert!(
                                offer > ctx.start_cycle,
                                "renewal slots never lapse in the event kernel"
                            );
                            ev.wheel.schedule(offer, l as u32);
                        }
                    }
                }
            }
            InjectionProcess::BurstyOnOff { .. } => {
                debug_assert_eq!(
                    ev.wheel.len(),
                    0,
                    "pending bursty arrivals must fire before their epoch ends"
                );
                let fmap = ctx.faults.and_then(|s| s.map_after(self.scratch.epoch));
                for l in 0..self.len {
                    if fmap.is_some_and(|fm| !fm.router_alive(self.base + l)) {
                        // Silent source: consumed-through jumps the
                        // epoch with no draws. (`max` guards the
                        // degenerate first-epoch case where the
                        // horizon sits below the frontier.)
                        ev.drawn_through[l] = ev.drawn_through[l].max(horizon);
                    } else {
                        self.predict_router(ctx, ev, l);
                    }
                }
            }
        }
    }

    /// Rolls a *bursty* router `l`'s private stream forward from its
    /// frontier to the next offer that names a real destination and
    /// schedules it on the wheel; a window with no such offer parks
    /// the frontier at the horizon. Draw order per predicted cycle is
    /// exactly the cycle loop's: ON/OFF flip, offer coin, then the
    /// destination draw immediately after a hit — so the stream state
    /// is reproduced bit-for-bit, just ahead of wall-time. (Bernoulli
    /// routers never come here: their renewal slot already names the
    /// next arrival, no draws needed.)
    fn predict_router(&mut self, ctx: &RunCtx<'_>, ev: &mut EventState, l: usize) {
        debug_assert!(
            matches!(ctx.cfg.injection, InjectionProcess::BurstyOnOff { .. }),
            "Bernoulli arrivals are renewal-scheduled, not predicted"
        );
        let src = self.base + l;
        loop {
            match ctx.cfg.injection.next_arrival(
                ctx.on_rate,
                &mut self.source_on[l],
                &mut self.next_offer[l],
                ctx.gap,
                &mut self.rngs[l],
                ev.drawn_through[l],
                ev.horizon,
            ) {
                Some(c) => {
                    ev.drawn_through[l] = c;
                    if let Some(dst) =
                        ctx.cfg
                            .pattern
                            .destination(src, &ctx.mesh, &mut self.rngs[l])
                    {
                        ev.pending_dst[l] = dst as u32;
                        ev.wheel.schedule(c, l as u32);
                        return;
                    }
                    // Self-mapped destination: the cycle loop injects
                    // nothing and keeps drawing — so keep predicting.
                }
                None => {
                    ev.drawn_through[l] = ev.drawn_through[l].max(ev.horizon);
                    return;
                }
            }
        }
    }

    /// Reference-kernel credit snapshot: rebuilt from the live buffers
    /// (the reference kernel always runs as a single tile, so every
    /// downstream router is local).
    fn rebuild_credits(&mut self, ctx: &RunCtx<'_>) {
        let depth = ctx.cfg.buffer_depth as u32;
        let v = ctx.vcs;
        let lanes = ctx.lanes;
        for lr in 0..self.len {
            let rid = self.base + lr;
            for d in &Direction::ALL[..4] {
                for vc in 0..v {
                    self.credits[lr * lanes + d.index() * v + vc] = match ctx.neighbors.get(rid, *d)
                    {
                        Some(next) => {
                            debug_assert!(self.contains(next), "reference runs one tile");
                            depth
                                - self.routers[next - self.base].occupancy(d.opposite(), vc) as u32
                        }
                        None => 0,
                    };
                }
            }
        }
    }

    /// Steps this tile's worklist — in router-index order straight off
    /// the bitset, with lazy credit reads and table-driven routing
    /// ([`Router::step_fast`]). The credit state is the cycle-start
    /// snapshot (maintained incrementally, or just rebuilt by the
    /// reference kernel), so results are visit-order independent.
    fn route_active(&mut self, ctx: &RunCtx<'_>, cycle: u64, stats: &mut Option<NetworkStats>) {
        let visit_reversed = ctx.visit_reversed;
        let mesh = ctx.mesh;
        let routes = ctx.routes;
        let xy = ctx.xy;
        let v = ctx.vcs;
        let lanes = ctx.lanes;
        let base_rid = self.base;
        let retire = ctx.kernel != SimKernel::Reference;
        let fmap = ctx.faults.and_then(|s| s.map_after(self.scratch.epoch));
        // Split borrows once: the per-router loop needs disjoint
        // mutable access to routers / SoA lanes / transfers while the
        // readiness closure reads the credit counters.
        let ShardView {
            scratch,
            routers,
            source_queues,
            credits,
            idle_run,
            fsm,
            counters,
            last_stepped,
            ..
        } = self;
        let ShardScratch {
            active_bits,
            transfers,
            idle_ended,
            routers_stepped,
            ..
        } = &mut **scratch;
        let at = |rid: usize| {
            let (x, y) = xy[rid];
            (x as usize, y as usize)
        };
        transfers.clear();

        let words = active_bits.len();
        for wi in 0..words {
            let w = if visit_reversed { words - 1 - wi } else { wi };
            let mut bits = active_bits[w];
            while bits != 0 {
                let b = if visit_reversed {
                    63 - bits.leading_zeros() as usize
                } else {
                    bits.trailing_zeros() as usize
                };
                bits &= !(1u64 << b);
                let lr = w * 64 + b;
                let rid = base_rid + lr;

                let route = |flit: &Flit| {
                    // Faulted epochs route on the fault map's BFS
                    // tables, which never target a dead channel — so
                    // the readiness check below stays untouched and
                    // credit conservation needs no fault cases. Every
                    // buffered flit has a route: unroutable packets
                    // are reaped at the epoch boundary, and BFS next
                    // hops strictly descend the distance-to-dst, so a
                    // route exists at every hop within a component.
                    let out = match fmap {
                        Some(fm) => fm
                            .route(rid, flit.dst)
                            .expect("unroutable packets are reaped at fault boundaries"),
                        None => match routes {
                            Some(t) => t.route(rid, flit.dst),
                            None => mesh.route_xy_at(at(rid), at(flit.dst)),
                        },
                    };
                    RouteTarget {
                        out,
                        vc: mesh.hop_vc_at(at(rid), at(flit.src), flit.packet_id, out, v),
                    }
                };
                // Lazy credit reads: only evaluated for lanes a flit
                // actually wants (ejection always sinks; edge lanes
                // hold zero credits, so no-link and no-room collapse
                // into one check).
                let lane_base = lr * lanes;
                let ready = |d: Direction, vc: usize| match d {
                    Direction::Local => true,
                    d => credits[lane_base + d.index() * v + vc] > 0,
                };
                let lane = PortLane {
                    idle_run: &mut idle_run[lane_base..lane_base + lanes],
                    fsm: &mut fsm[lane_base..lane_base + lanes],
                    counters: &mut counters[lr],
                    idle_ended,
                };
                let mut departed = 0u64;
                let mut link_departed = 0u64;
                let outcome = routers[lr].step_fast(route, ready, lane, |dep| {
                    departed += 1;
                    if dep.output != Direction::Local {
                        link_departed += 1;
                    }
                    transfers.push(Transfer {
                        from: rid as u32,
                        input: dep.input,
                        input_vc: dep.input_vc,
                        output: dep.output,
                        flit: dep.flit,
                    });
                });
                *routers_stepped += 1;

                if let Some(s) = stats.as_mut() {
                    let a = &mut s.router_activity[lr];
                    a.cycles += 1;
                    a.arbitrations += outcome.arbitrations;
                    a.crossbar_traversals += departed;
                    a.buffer_reads += departed;
                    a.link_traversals += link_departed;
                    for (l, &run) in idle_ended[..lanes].iter().enumerate() {
                        // Guarded: most stepped lanes end no idle run,
                        // and even `record(0)`'s early return costs a
                        // call per lane per cycle on the hot path.
                        if run > 0 {
                            s.idle_histograms.lane_mut(lr, l).record(run);
                        }
                    }
                }

                // Retire the router if it just went quiescent (nothing
                // this cycle's remaining steps can change that — only
                // later arrivals can, and they re-activate it). An
                // empty router's sleep FSMs are always bulk-replayable
                // — even mid-threshold-walk — so buffers, owners and
                // the source queue are the whole predicate. (The
                // reference kernel refills its worklist every cycle,
                // so retiring is moot there.)
                if retire && routers[lr].is_quiet() && source_queues[lr].is_empty() {
                    active_bits[w] &= !(1u64 << b);
                    last_stepped[lr] = cycle;
                }
            }
        }
    }

    /// Applies the collected transfers (ejections and link crossings):
    /// moves the credits, activates local receivers, and stages every
    /// cross-tile effect for the exchange phase.
    fn apply_transfers(&mut self, ctx: &RunCtx<'_>, cycle: u64, stats: &mut Option<NetworkStats>) {
        let maintain = ctx.kernel != SimKernel::Reference;
        let v = ctx.vcs;
        let lanes = ctx.lanes;
        for ti in 0..self.scratch.transfers.len() {
            let t = self.scratch.transfers[ti];
            let from = t.from as usize;
            // The pop freed a slot in `from`'s input VC: return the
            // credit to the upstream router that fills it (injection
            // from the local source checks the buffer directly, so the
            // Local input has no credit counter).
            if maintain && t.input != Direction::Local {
                let up = ctx
                    .neighbors
                    .get(from, t.input)
                    .expect("buffered flits arrived over an existing link");
                let lane = up * lanes + t.input.opposite().index() * v + t.input_vc as usize;
                if self.contains(up) {
                    self.credits[lane - self.base * lanes] += 1;
                } else {
                    self.stage(ctx, up, BoundaryMsg::Credit { lane: lane as u64 });
                }
            }
            match t.output {
                Direction::Local => {
                    self.scratch.buffered_flits -= 1;
                    if cfg!(debug_assertions) || ctx.cfg.validate_ejection {
                        self.validate_ejection(ctx, from, &t.flit);
                    }
                    if let Some(s) = stats.as_mut() {
                        s.flits_delivered += 1;
                        if t.flit.is_tail {
                            s.packets_delivered += 1;
                            let latency = cycle - t.flit.injected_at;
                            s.latency_sum += latency;
                            s.latency_max = s.latency_max.max(latency);
                            // Degradation view: deliveries after the
                            // first fault fires, so post-fault latency
                            // and throughput are separable from the
                            // healthy prefix.
                            if ctx.faults.is_some_and(|f| cycle >= f.first_fault_cycle) {
                                s.packets_delivered_post_fault += 1;
                                s.latency_sum_post_fault += latency;
                            }
                        }
                    }
                }
                d => {
                    let next = ctx
                        .neighbors
                        .get(from, d)
                        .expect("departures only target existing neighbours");
                    if maintain {
                        // Consume the credit for the slot just filled.
                        self.credits
                            [(from - self.base) * lanes + d.index() * v + t.flit.vc as usize] -= 1;
                    }
                    if self.contains(next) {
                        self.routers[next - self.base].accept(d.opposite(), t.flit);
                        if maintain {
                            // The receiver was already accounted idle
                            // for this whole cycle; it steps from the
                            // next one.
                            self.activate(ctx, next - self.base, cycle, stats);
                        }
                        if let Some(s) = stats.as_mut() {
                            s.router_activity[next - self.base].buffer_writes += 1;
                        }
                    } else {
                        // The flit leaves this tile; its arrival (and
                        // the receiver's bookkeeping) is the owning
                        // shard's exchange-phase work.
                        self.scratch.buffered_flits -= 1;
                        self.stage(
                            ctx,
                            next,
                            BoundaryMsg::Arrival {
                                rid: next as u32,
                                port: d.opposite().index() as u8,
                                flit: t.flit,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Stages a boundary message for the shard owning `target_rid`.
    fn stage(&mut self, ctx: &RunCtx<'_>, target_rid: usize, msg: BoundaryMsg) {
        let me = self.scratch.shard;
        let dst = ctx.tiles.shard_of(target_rid);
        let k = ctx
            .mail
            .outboxes(me)
            .iter()
            .position(|&(d, _)| d == dst)
            .expect("cross-tile effects only reach halo-adjacent shards");
        self.scratch.outgoing[k].push(msg);
    }

    /// Resets one router's gating slabs to their measurement-boundary
    /// state: idle runs cleared, every lane FSM re-armed
    /// ([`SleepFsm::reset`]), gating counters zeroed. The shared tail
    /// of both the eager boundary fill and lazy debt payment.
    fn reset_router_gating(&mut self, ctx: &RunCtx<'_>, lr: usize) {
        let lanes = ctx.lanes;
        let base = lr * lanes;
        self.idle_run[base..base + lanes].fill(0);
        for f in &mut self.fsm[base..base + lanes] {
            f.reset();
        }
        self.counters[lr] = GatingCounters::default();
    }

    /// Pays one router's settlement debt: replays the measurement
    /// boundary it slept through (reset to the watermark `w`), so the
    /// caller's normal pre-boundary→now accounting becomes the correct
    /// `w`→now span. `now` is only used for the `max_debt_span`
    /// telemetry.
    fn settle_debt(&mut self, ctx: &RunCtx<'_>, lr: usize, w: u64, now: u64) {
        self.reset_router_gating(ctx, lr);
        self.last_stepped[lr] = w;
        self.scratch.routers_settled += 1;
        self.scratch.settle_ops += 1;
        self.scratch.max_debt_span = self.scratch.max_debt_span.max(now - w);
    }

    /// Puts a quiescent router back in the worklist, first settling the
    /// cycles it skipped (`through` is the last cycle it should be
    /// accounted as idle; injection activations pass `cycle − 1`
    /// because the router still steps this cycle, arrival activations
    /// pass `cycle` because it only steps from the next one). `lr` is
    /// tile-local.
    fn activate(
        &mut self,
        ctx: &RunCtx<'_>,
        lr: usize,
        through: u64,
        stats: &mut Option<NetworkStats>,
    ) {
        if self.scratch.active_bits[lr / 64] & (1u64 << (lr % 64)) != 0 {
            return;
        }
        // First touch since the measurement boundary: pay the deferred
        // boundary reset before accounting the post-boundary idle span.
        if let Some(w) = self.scratch.boundary {
            if self.last_stepped[lr] <= w {
                self.settle_debt(ctx, lr, w, through);
            }
        }
        let skipped = through - self.last_stepped[lr];
        self.account_skipped(ctx, lr, skipped, stats);
        self.last_stepped[lr] = through;
        self.scratch.active_bits[lr / 64] |= 1u64 << (lr % 64);
    }

    /// Bulk-settles `skipped` consecutive idle cycles for a quiescent
    /// router in O(1): exactly what the dense loop would have done —
    /// idle runs grow, awake lanes arbitrate, and sleep FSMs replay
    /// their (closed-form) future, including a threshold walk that
    /// asserts sleep partway through the gap — without touching the
    /// router.
    fn account_skipped(
        &mut self,
        ctx: &RunCtx<'_>,
        lr: usize,
        skipped: u64,
        stats: &mut Option<NetworkStats>,
    ) {
        if skipped == 0 {
            return;
        }
        let lanes = ctx.lanes;
        let base = lr * lanes;
        let arbitrations = match &ctx.cfg.gating {
            // Ungated: every free lane arbitrates every cycle.
            None => {
                for run in &mut self.idle_run[base..base + lanes] {
                    *run += skipped;
                }
                lanes as u64 * skipped
            }
            Some(cfg) => {
                let th = cfg.threshold();
                let counters = &mut self.counters[lr];
                let mut arbitrations = 0;
                for (run, fsm) in self.idle_run[base..base + lanes]
                    .iter_mut()
                    .zip(&mut self.fsm[base..base + lanes])
                {
                    let before = *run;
                    *run += skipped;
                    arbitrations += fsm.settle_idle_bulk(skipped, before, th, counters);
                }
                arbitrations
            }
        };
        if let Some(s) = stats.as_mut() {
            let a = &mut s.router_activity[lr];
            a.cycles += skipped;
            a.arbitrations += arbitrations;
        }
    }

    /// The watchdog fired: build the per-lane diagnostic of every
    /// blocked flit in this tile so a deadlock regression names the
    /// cycle's participants instead of hanging CI. On a faulted
    /// network the diagnostic also classifies each stuck flit by
    /// whether the active fault map still offers it a route — "true
    /// routing deadlock" and "stranded by a fault the reap should
    /// have caught" are different bugs — and prints the fault-map
    /// summary. The caller either panics with the text
    /// ([`MeshConfig::panic_on_deadlock`]) or wraps it in
    /// [`SimAbort::Deadlock`].
    fn watchdog_report(&self, ctx: &RunCtx<'_>, cycle: u64, buffered: u64) -> String {
        let v = ctx.vcs;
        let lanes = ctx.lanes;
        let fmap = ctx.faults.and_then(|s| s.map_after(self.scratch.epoch));
        let mut report = String::new();
        let mut shown = 0usize;
        let mut blocked = 0usize;
        for (lr, r) in self.routers.iter().enumerate() {
            let rid = self.base + lr;
            for d in Direction::ALL {
                for vc in 0..v {
                    let occ = r.occupancy(d, vc);
                    if occ == 0 {
                        continue;
                    }
                    blocked += 1;
                    if shown < 8 {
                        let credit = self.credits[lr * lanes + d.index() * v + vc];
                        report.push_str(&format!(
                            "\n  router {rid} input {d} vc {vc}: {occ} flit(s) waiting \
                             (upstream-side credit counter: {credit})"
                        ));
                        shown += 1;
                    }
                }
            }
        }
        let fault_note = match fmap {
            Some(fm) => {
                let mut routable = 0u64;
                let mut stranded = 0u64;
                for (lr, r) in self.routers.iter().enumerate() {
                    let rid = self.base + lr;
                    r.for_each_flit(|f| {
                        if fm.reachable(rid, f.dst) {
                            routable += 1;
                        } else {
                            stranded += 1;
                        }
                    });
                }
                format!(
                    "\n  active fault map (epoch {}): {}\n  of this tile's buffered flits, \
                     {routable} still hold a live route (true deadlock suspects) and \
                     {stranded} are fault-disconnected (reap bug suspects)",
                    self.scratch.epoch,
                    fm.summary()
                )
            }
            None if ctx.faults.is_some() => "\n  fault schedule armed; no faults active".into(),
            None => String::new(),
        };
        let tile_note = if ctx.tiles.shards() > 1 {
            format!(
                " [diagnosing tile {} of {}; other tiles may hold more]",
                self.scratch.shard,
                ctx.tiles.shards()
            )
        } else {
            String::new()
        };
        format!(
            "watchdog: no flit moved and no credit returned for {} cycles at cycle {} \
             with {} flits buffered{tile_note} ({} occupied input VCs, first {} shown):{}{}\n\
             (torus DOR with vcs = 1 has no dateline escape — run with vcs >= 2)",
            ctx.cfg.watchdog_cycles, cycle, buffered, blocked, shown, report, fault_note
        )
    }

    /// Asserts in-order, contiguous, complete per-packet delivery.
    fn validate_ejection(&mut self, ctx: &RunCtx<'_>, rid: usize, flit: &Flit) {
        assert_eq!(flit.dst, rid, "flit ejected at the wrong router");
        let progress = &mut self.eject[rid - self.base];
        match progress.current {
            None => {
                assert!(
                    flit.is_head,
                    "packet {} ejected body flit before its head at router {rid}",
                    flit.packet_id
                );
                if flit.is_tail {
                    assert_eq!(ctx.cfg.packet_len_flits, 1);
                } else {
                    progress.current = Some((flit.packet_id, 1));
                }
            }
            Some((pkt, seen)) => {
                assert_eq!(
                    flit.packet_id, pkt,
                    "packet interleaving at router {rid} ejection port"
                );
                assert!(!flit.is_head, "duplicate head flit in packet {pkt}");
                let seen = seen + 1;
                if flit.is_tail {
                    assert_eq!(
                        seen, ctx.cfg.packet_len_flits,
                        "packet {pkt} delivered with the wrong flit count"
                    );
                    progress.current = None;
                } else {
                    progress.current = Some((pkt, seen));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sleep::SleepConfig;
    use lnoc_power::gating::{energy_from_counters, evaluate_policy, GatingParams, GatingPolicy};
    use lnoc_tech::units::{Hertz, Joules, Watts};

    fn base_cfg() -> MeshConfig {
        MeshConfig {
            width: 4,
            height: 4,
            injection_rate: 0.05,
            pattern: TrafficPattern::UniformRandom,
            packet_len_flits: 4,
            buffer_depth: 4,
            seed: 42,
            ..MeshConfig::default()
        }
    }

    #[test]
    fn packets_flow_and_are_conserved() {
        // Measure from cycle 0: packets straddling a warmup/measure
        // boundary would otherwise split their flit counts across the
        // unmeasured and measured windows and break exact conservation.
        let mut sim = Simulation::new(base_cfg());
        let stats = sim.run(0, 3500);
        assert!(stats.packets_delivered > 100, "{}", stats.packets_delivered);
        // Flits delivered = packets × packet length (within in-flight
        // slack of injected − delivered).
        assert!(
            stats.flits_delivered >= stats.packets_delivered * 4,
            "every delivered packet contributed all its flits"
        );
        assert!(stats.packets_injected >= stats.packets_delivered);
        // Exact conservation: injected = delivered + still in flight.
        assert_eq!(
            sim.flits_injected_total(),
            stats.flits_delivered + sim.in_flight_flits()
        );
    }

    #[test]
    fn packets_flow_with_virtual_channels() {
        for vcs in [2usize, 4] {
            let mut sim = Simulation::new(MeshConfig { vcs, ..base_cfg() });
            let stats = sim.run(0, 3000);
            assert!(
                stats.packets_delivered > 100,
                "vcs {vcs}: {}",
                stats.packets_delivered
            );
            assert_eq!(
                sim.flits_injected_total(),
                stats.flits_delivered + sim.in_flight_flits()
            );
            sim.check_credit_conservation();
        }
    }

    #[test]
    fn latency_at_least_hop_count() {
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: 0.01,
            ..base_cfg()
        });
        let stats = sim.run(200, 3000);
        // Minimum latency: ≥ packet length (serialization) at zero load.
        assert!(stats.avg_latency() >= 4.0, "{}", stats.avg_latency());
        assert!(stats.avg_latency() < 60.0, "{}", stats.avg_latency());
    }

    #[test]
    fn higher_load_means_higher_latency_and_throughput() {
        let run = |rate: f64| {
            let mut sim = Simulation::new(MeshConfig {
                injection_rate: rate,
                seed: 9,
                ..base_cfg()
            });
            sim.run(500, 4000)
        };
        let light = run(0.01);
        let heavy = run(0.08);
        assert!(heavy.throughput() > light.throughput());
        assert!(heavy.avg_latency() > light.avg_latency());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = Simulation::new(base_cfg());
            let s = sim.run(100, 1000);
            (s.packets_delivered, s.flits_delivered, s.latency_sum)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn router_visit_order_is_irrelevant() {
        // With the cycle-start credit snapshot, stepping routers in
        // reverse (or any) order must produce bit-identical statistics
        // — in both kernels and at any VC count. Before the snapshot
        // fix, downstream readiness read live buffers that earlier
        // routers had already popped, so behaviour depended on
        // iteration order.
        for kernel in [SimKernel::ActiveSet, SimKernel::Reference] {
            for cfg in [
                base_cfg(),
                MeshConfig {
                    injection_rate: 0.12,
                    pattern: TrafficPattern::Transpose,
                    seed: 3,
                    vcs: 2,
                    ..base_cfg()
                },
                MeshConfig {
                    wrap: true,
                    pattern: TrafficPattern::Tornado,
                    injection_rate: 0.03,
                    vcs: 2,
                    ..base_cfg()
                },
                MeshConfig {
                    gating: Some(SleepConfig {
                        policy: GatingPolicy::IdleThreshold(3),
                        wake_latency: 2,
                    }),
                    injection_rate: 0.06,
                    seed: 7,
                    vcs: 4,
                    ..base_cfg()
                },
            ] {
                let cfg = MeshConfig { kernel, ..cfg };
                let mut fwd = Simulation::new(cfg.clone());
                let mut rev = Simulation::new(cfg);
                rev.set_visit_reversed(true);
                let s_fwd = fwd.run(100, 1500);
                let s_rev = rev.run(100, 1500);
                assert_eq!(s_fwd, s_rev);
            }
        }
    }

    #[test]
    fn idle_histograms_fill_under_light_load() {
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: 0.02,
            ..base_cfg()
        });
        let stats = sim.run(200, 2000);
        let merged = stats.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS);
        assert!(merged.interval_count() > 0);
        // Under 2 % load, most output-cycles are idle.
        let idle_frac = merged.total_idle_cycles() as f64 / (2000.0 * 16.0 * 5.0);
        assert!(idle_frac > 0.5, "idle fraction {idle_frac}");
    }

    #[test]
    fn utilization_tracks_load() {
        let mut light_sim = Simulation::new(MeshConfig {
            injection_rate: 0.01,
            ..base_cfg()
        });
        let mut heavy_sim = Simulation::new(MeshConfig {
            injection_rate: 0.10,
            ..base_cfg()
        });
        let light = light_sim.run(300, 2000).crossbar_utilization();
        let heavy = heavy_sim.run(300, 2000).crossbar_utilization();
        assert!(heavy > 2.0 * light, "light {light}, heavy {heavy}");
    }

    #[test]
    #[should_panic(expected = "at least 2×2")]
    fn tiny_mesh_rejected() {
        let _ = Simulation::new(MeshConfig {
            width: 1,
            ..base_cfg()
        });
    }

    #[test]
    #[should_panic(expected = "Oracle")]
    fn oracle_rejected_in_loop() {
        let _ = Simulation::new(MeshConfig {
            gating: Some(SleepConfig {
                policy: GatingPolicy::Oracle,
                wake_latency: 1,
            }),
            ..base_cfg()
        });
    }

    #[test]
    #[should_panic(expected = "source queues")]
    fn zero_source_queue_cap_rejected() {
        let _ = Simulation::new(MeshConfig {
            source_queue_cap: 0,
            ..base_cfg()
        });
    }

    #[test]
    #[should_panic(expected = "vcs must be in")]
    fn zero_vcs_rejected() {
        let _ = Simulation::new(MeshConfig {
            vcs: 0,
            ..base_cfg()
        });
    }

    #[test]
    #[should_panic(expected = "vcs must be in")]
    fn oversized_vcs_rejected() {
        let _ = Simulation::new(MeshConfig {
            vcs: MAX_VCS + 1,
            ..base_cfg()
        });
    }

    #[test]
    fn all_patterns_deliver() {
        for pattern in TrafficPattern::ALL {
            let mut sim = Simulation::new(MeshConfig {
                pattern,
                injection_rate: 0.03,
                ..base_cfg()
            });
            let stats = sim.run(300, 2000);
            assert!(
                stats.packets_delivered > 10,
                "{pattern:?} delivered {}",
                stats.packets_delivered
            );
        }
    }

    #[test]
    fn torus_delivers_and_shortens_paths() {
        let run = |wrap: bool| {
            let mut sim = Simulation::new(MeshConfig {
                wrap,
                injection_rate: 0.02,
                pattern: TrafficPattern::Tornado,
                seed: 17,
                ..base_cfg()
            });
            sim.run(300, 3000)
        };
        let mesh = run(false);
        let torus = run(true);
        assert!(mesh.packets_delivered > 50);
        assert!(torus.packets_delivered > 50);
        // Tornado on a 4-wide torus is a single wraparound-assisted hop
        // pattern; the mesh must walk the long way.
        assert!(
            torus.avg_latency() < mesh.avg_latency(),
            "torus {:.1} vs mesh {:.1}",
            torus.avg_latency(),
            mesh.avg_latency()
        );
    }

    #[test]
    fn torus_tornado_saturation_drains_with_dateline_vcs() {
        // The acceptance scenario: Tornado at saturation on a wrapped
        // 16×16 with 2 VCs (dateline switching) must make sustained
        // progress without tripping the watchdog. At vcs = 1 the same
        // load wedges wormhole DOR on the rings.
        let mut sim = Simulation::new(MeshConfig {
            width: 16,
            height: 16,
            wrap: true,
            vcs: 2,
            pattern: TrafficPattern::Tornado,
            injection_rate: 1.0,
            source_queue_cap: 4,
            watchdog_cycles: 2_000,
            seed: 9,
            ..base_cfg()
        });
        let stats = sim.run(0, 6000);
        assert!(
            stats.packets_delivered > 2_000,
            "saturated torus must stream packets, got {}",
            stats.packets_delivered
        );
        sim.check_credit_conservation();
    }

    #[test]
    fn watchdog_names_the_blocked_lanes_on_deadlock() {
        // vcs = 1 torus DOR has no dateline escape: Tornado at
        // saturation wedges the rings and the watchdog must abort with
        // the diagnostic instead of spinning.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut sim = Simulation::new(MeshConfig {
                width: 8,
                height: 8,
                wrap: true,
                vcs: 1,
                pattern: TrafficPattern::Tornado,
                injection_rate: 1.0,
                packet_len_flits: 8,
                source_queue_cap: 8,
                watchdog_cycles: 500,
                seed: 5,
                ..base_cfg()
            });
            sim.run(0, 50_000)
        }));
        let msg = *result
            .expect_err("saturated vcs=1 torus tornado must deadlock")
            .downcast::<String>()
            .expect("panic carries the diagnostic string");
        assert!(msg.contains("watchdog"), "{msg}");
        assert!(msg.contains("router"), "diagnostic names a router: {msg}");
        assert!(msg.contains("vc"), "diagnostic names a VC: {msg}");
    }

    #[test]
    fn bursty_injection_conserves_and_matches_load() {
        let mut sim = Simulation::new(MeshConfig {
            injection: InjectionProcess::BurstyOnOff {
                mean_burst: 20,
                mean_idle: 60,
            },
            injection_rate: 0.04,
            seed: 23,
            ..base_cfg()
        });
        let stats = sim.run(0, 8000);
        assert_eq!(
            sim.flits_injected_total(),
            stats.flits_delivered + sim.in_flight_flits()
        );
        // Offered load stays near the configured average rate.
        let offered = stats.packets_injected as f64 / (8000.0 * 16.0);
        assert!(
            (offered - 0.04).abs() < 0.01,
            "offered load {offered} vs configured 0.04"
        );
    }

    #[test]
    fn capped_source_queue_drops_and_stays_exact() {
        // A tiny cap under a saturating hotspot load must reject offers
        // without breaking flit conservation.
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: 0.5,
            pattern: TrafficPattern::Hotspot,
            source_queue_cap: 2,
            seed: 3,
            ..base_cfg()
        });
        let stats = sim.run(0, 2000);
        assert!(
            stats.packets_dropped_at_source > 0,
            "saturating load must hit the cap"
        );
        assert_eq!(
            sim.flits_injected_total(),
            stats.flits_delivered + sim.in_flight_flits()
        );
        assert_eq!(
            stats.packets_injected * 4,
            sim.flits_injected_total(),
            "dropped packets contribute no flits"
        );
        // The source queues themselves respect the cap.
        assert!(sim.source_queues.iter().all(|q| q.len() <= 2));
    }

    #[test]
    fn gating_stalls_traffic_and_matches_offline_energy() {
        let params = GatingParams {
            p_idle_awake: Watts(10.0e-6),
            p_standby: Watts(1.0e-6),
            e_transition: Joules(9.0e-15),
            wake_latency_cycles: 2,
        };
        let clock = Hertz(3.0e9);
        let policy = GatingPolicy::IdleThreshold(params.min_idle_cycles(clock));

        let gated_cfg = MeshConfig {
            gating: Some(SleepConfig {
                policy,
                wake_latency: params.wake_latency_cycles,
            }),
            injection_rate: 0.03,
            ..base_cfg()
        };
        let mut gated = Simulation::new(gated_cfg.clone());
        let g = gated.run(500, 6000);
        let mut ungated = Simulation::new(MeshConfig {
            gating: None,
            ..gated_cfg
        });
        let u = ungated.run(500, 6000);

        // Wake latency back-pressures real traffic.
        let counters = g.total_gating_counters();
        assert!(counters.sleep_entries > 100, "{counters:?}");
        assert!(counters.wake_stall_cycles > 0, "{counters:?}");
        assert!(
            g.avg_latency() > u.avg_latency(),
            "gated {:.2} must exceed ungated {:.2}",
            g.avg_latency(),
            u.avg_latency()
        );

        // In-loop energy agrees with the offline model evaluated on the
        // same run's histograms.
        let in_loop = energy_from_counters(&counters, &params, clock);
        let offline = evaluate_policy(
            &g.merged_idle_histogram(NetworkStats::DEFAULT_IDLE_BINS),
            &params,
            policy,
            clock,
        );
        let rel =
            (in_loop.energy_policy.0 - offline.energy_policy.0).abs() / offline.energy_policy.0;
        assert!(rel < 0.05, "in-loop vs offline disagreement {rel:.4}");
        let rel_never =
            (in_loop.energy_never.0 - offline.energy_never.0).abs() / offline.energy_never.0;
        assert!(rel_never < 1e-9, "idle-cycle totals must match exactly");
    }

    #[test]
    fn per_vc_gating_sleeps_finer_than_per_port() {
        // Same traffic, same policy: with 2 VCs the sleep controllers
        // see twice the lanes, and an empty VC bank can park while its
        // sibling carries a worm — so the asleep fraction of all
        // lane-cycles must not drop when granularity rises.
        let run = |vcs: usize| {
            let mut sim = Simulation::new(MeshConfig {
                vcs,
                injection_rate: 0.04,
                gating: Some(SleepConfig {
                    policy: GatingPolicy::IdleThreshold(4),
                    wake_latency: 1,
                }),
                seed: 31,
                ..base_cfg()
            });
            let stats = sim.run(300, 5000);
            let k = stats.total_gating_counters();
            let lane_cycles = (5 * vcs) as f64 * 16.0 * 5000.0;
            (k.cycles_asleep as f64 / lane_cycles, k.sleep_entries)
        };
        let (frac1, _) = run(1);
        let (frac2, entries2) = run(2);
        assert!(entries2 > 0);
        assert!(
            frac2 >= frac1 * 0.95,
            "finer gating granularity lost sleep coverage: {frac1:.3} -> {frac2:.3}"
        );
    }

    #[test]
    fn auto_kernel_picks_by_size_and_load() {
        // The decision table: low load leaps (any size), big loaded
        // runs shard, small loaded runs stay on the serial worklist.
        assert_eq!(SimKernel::Auto.resolve_for(16, 0.05), SimKernel::ActiveSet);
        assert_eq!(
            SimKernel::Auto.resolve_for(16, SimKernel::AUTO_EVENT_MAX_RATE),
            SimKernel::EventDriven
        );
        assert_eq!(SimKernel::Auto.resolve_for(16, 0.0), SimKernel::EventDriven);
        assert_eq!(
            SimKernel::Auto.resolve_for(SimKernel::AUTO_SHARD_MIN_ROUTERS, 0.0),
            SimKernel::EventDriven
        );
        assert_eq!(
            SimKernel::Auto.resolve_for(SimKernel::AUTO_SHARD_MIN_ROUTERS, 0.01),
            SimKernel::EventDriven
        );
        assert_eq!(
            SimKernel::Auto.resolve_for(SimKernel::AUTO_SHARD_MIN_ROUTERS, 0.05),
            SimKernel::Sharded
        );
        assert_eq!(
            SimKernel::Auto.resolve_for(SimKernel::AUTO_SHARD_MIN_ROUTERS - 1, 0.05),
            SimKernel::ActiveSet
        );
        // Million-router meshes leap regardless of load: with lazy
        // settlement every event-kernel cost is O(touched), while the
        // per-cycle kernels pay O(n) per cycle.
        assert_eq!(
            SimKernel::Auto.resolve_for(SimKernel::AUTO_EVENT_MIN_ROUTERS, 0.5),
            SimKernel::EventDriven
        );
        assert_eq!(
            SimKernel::Auto.resolve_for(SimKernel::AUTO_EVENT_MIN_ROUTERS - 1, 0.5),
            SimKernel::Sharded
        );
        // No-context resolution is the zero-load answer.
        assert_eq!(SimKernel::Auto.resolve(), SimKernel::EventDriven);
        // Explicit choices pass through untouched.
        assert_eq!(
            SimKernel::Reference.resolve_for(1 << 20, 1.0),
            SimKernel::Reference
        );
        assert_eq!(
            SimKernel::EventDriven.resolve_for(16, 1.0),
            SimKernel::EventDriven
        );
        let sim = Simulation::new(base_cfg());
        assert_eq!(sim.kernel(), SimKernel::ActiveSet);
        let low = MeshConfig {
            injection_rate: 0.01,
            ..base_cfg()
        };
        assert_eq!(Simulation::new(low).kernel(), SimKernel::EventDriven);
    }

    fn faulted_cfg() -> MeshConfig {
        MeshConfig {
            width: 6,
            height: 6,
            vcs: 2,
            injection_rate: 0.06,
            seed: 77,
            faults: Some(FaultPlan {
                seed: 11,
                link_faults: 2,
                router_faults: 1,
                transient_link_faults: 1,
                transient_duration: 150,
                start_cycle: 100,
                window: 400,
                ..FaultPlan::default()
            }),
            ..base_cfg()
        }
    }

    #[test]
    fn faulted_stats_are_identical_across_kernels() {
        // The fault schedule is a pure function of (plan, mesh) and
        // every epoch applies at a cycle boundary, so the three
        // kernels — and every shard count — must agree bit for bit.
        let run = |kernel: SimKernel, shards: usize, threads: usize| {
            let mut sim = Simulation::new(MeshConfig {
                kernel,
                shards,
                threads,
                ..faulted_cfg()
            });
            sim.run(0, 1500)
        };
        let reference = run(SimKernel::Reference, 0, 0);
        assert!(
            reference.flits_dropped_by_fault > 0,
            "the plan must actually bite for this test to mean anything"
        );
        assert_eq!(reference, run(SimKernel::ActiveSet, 0, 0));
        assert_eq!(
            reference,
            run(SimKernel::EventDriven, 0, 0),
            "event kernel diverged under faults"
        );
        for shards in [1, 2, 3, 6] {
            for threads in [1, 2] {
                assert_eq!(
                    reference,
                    run(SimKernel::Sharded, shards, threads),
                    "sharded {shards}x{threads} diverged under faults"
                );
            }
        }
    }

    #[test]
    fn faulted_run_conserves_flits_and_credits() {
        // Measuring from cycle 0, every injected flit is delivered,
        // in flight, or was reaped by a fault — exactly.
        let mut sim = Simulation::new(faulted_cfg());
        let stats = sim.run(0, 2500);
        assert!(stats.packets_delivered > 100);
        assert_eq!(
            sim.flits_injected_total(),
            stats.flits_delivered + sim.in_flight_flits() + sim.flits_dropped_by_fault_total()
        );
        sim.check_credit_conservation();
        assert!(stats.min_reachable_fraction < 1.0);
        assert!(stats.min_reachable_fraction > 0.0);
    }

    #[test]
    fn transient_fault_heals_and_traffic_resumes() {
        // One transient link fault: the map goes back to pristine, so
        // post-heal routing is the healthy XY table again and traffic
        // keeps flowing to the end of the run.
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: 0.05,
            faults: Some(FaultPlan {
                seed: 3,
                link_faults: 0,
                transient_link_faults: 1,
                transient_duration: 200,
                start_cycle: 100,
                window: 1,
                ..FaultPlan::default()
            }),
            ..base_cfg()
        });
        let stats = sim.run(0, 4000);
        assert!(stats.packets_delivered > 200);
        assert!(stats.packets_delivered_post_fault > 100);
        assert_eq!(
            sim.flits_injected_total(),
            stats.flits_delivered + sim.in_flight_flits() + sim.flits_dropped_by_fault_total()
        );
        sim.check_credit_conservation();
    }

    #[test]
    fn dead_router_isolates_its_sources_and_sinks() {
        // A permanent router death: its source goes silent, packets
        // already bound for it are reaped, and later offers to it are
        // refused as unroutable.
        let mut sim = Simulation::new(MeshConfig {
            injection_rate: 0.08,
            faults: Some(FaultPlan {
                seed: 5,
                link_faults: 0,
                router_faults: 1,
                start_cycle: 300,
                window: 1,
                ..FaultPlan::default()
            }),
            ..base_cfg()
        });
        let stats = sim.run(0, 4000);
        assert!(stats.packets_unroutable > 0, "offers to the dead router");
        assert!(stats.packets_dropped_by_fault > 0, "in-flight victims");
        assert_eq!(
            sim.flits_injected_total(),
            stats.flits_delivered + sim.in_flight_flits() + sim.flits_dropped_by_fault_total()
        );
        sim.check_credit_conservation();
    }

    #[test]
    fn saturated_dateline_torus_with_dead_link_drains() {
        // The acceptance scenario: Tornado at saturation on a wrapped
        // 16×16 with 2 VCs loses one link mid-run and must keep
        // streaming packets around the detour without tripping the
        // watchdog.
        let mut sim = Simulation::new(MeshConfig {
            width: 16,
            height: 16,
            wrap: true,
            vcs: 2,
            pattern: TrafficPattern::Tornado,
            injection_rate: 1.0,
            source_queue_cap: 4,
            watchdog_cycles: 2_000,
            seed: 9,
            faults: Some(FaultPlan {
                seed: 13,
                link_faults: 1,
                start_cycle: 500,
                window: 1,
                ..FaultPlan::default()
            }),
            ..base_cfg()
        });
        let stats = sim.run(0, 6000);
        assert!(
            stats.packets_delivered > 2_000,
            "faulted saturated torus must stream packets, got {}",
            stats.packets_delivered
        );
        assert!(stats.packets_delivered_post_fault > 1_000);
        sim.check_credit_conservation();
    }

    #[test]
    fn watchdog_diagnostic_reports_the_fault_map() {
        // Satellite of the fault work: when the watchdog fires on a
        // faulted network, the diagnostic must carry the fault-map
        // summary so true deadlock and reap bugs are distinguishable
        // at a glance. vcs = 1 torus tornado wedges regardless of the
        // (mesh-side, healthy-by-then) fault plan.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut sim = Simulation::new(MeshConfig {
                width: 8,
                height: 8,
                wrap: true,
                vcs: 1,
                pattern: TrafficPattern::Tornado,
                injection_rate: 1.0,
                packet_len_flits: 8,
                source_queue_cap: 8,
                watchdog_cycles: 500,
                seed: 5,
                faults: Some(FaultPlan {
                    seed: 21,
                    link_faults: 1,
                    start_cycle: 50,
                    window: 1,
                    ..FaultPlan::default()
                }),
                ..base_cfg()
            });
            sim.run(0, 50_000)
        }));
        let msg = *result
            .expect_err("saturated vcs=1 torus tornado must deadlock")
            .downcast::<String>()
            .expect("panic carries the diagnostic string");
        assert!(msg.contains("watchdog"), "{msg}");
        assert!(msg.contains("active fault map"), "{msg}");
        assert!(msg.contains("pairs reachable"), "{msg}");
        assert!(msg.contains("live route"), "{msg}");
    }

    /// The vcs = 1 saturated torus Tornado configuration every
    /// watchdog test wedges on.
    fn deadlocking_cfg() -> MeshConfig {
        MeshConfig {
            width: 8,
            height: 8,
            wrap: true,
            vcs: 1,
            pattern: TrafficPattern::Tornado,
            injection_rate: 1.0,
            packet_len_flits: 8,
            source_queue_cap: 8,
            watchdog_cycles: 500,
            seed: 5,
            ..base_cfg()
        }
    }

    #[test]
    fn try_run_returns_deadlock_as_value() {
        // The supervised path: the same wedge that makes `run` panic
        // comes back from `try_run` as a typed abort carrying the
        // byte-identical diagnostic, and the simulation's state stays
        // consistent for post-mortem checks.
        let mut sim = Simulation::new(deadlocking_cfg());
        let abort = sim
            .try_run(0, 50_000)
            .expect_err("saturated vcs=1 torus tornado must deadlock");
        let SimAbort::Deadlock {
            cycle,
            buffered,
            ref diagnostic,
        } = abort
        else {
            panic!("expected a deadlock abort, got {abort:?}");
        };
        assert!(cycle >= 500, "fires only after the watchdog window");
        assert!(buffered > 0);
        assert!(diagnostic.contains("watchdog"), "{diagnostic}");
        assert!(diagnostic.contains("router"), "{diagnostic}");
        assert!(diagnostic.contains("vc"), "{diagnostic}");
        assert_eq!(abort.to_string(), *diagnostic, "Display is the diagnostic");
        sim.check_credit_conservation();

        // And the panicking path renders the exact same text.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Simulation::new(deadlocking_cfg()).run(0, 50_000)
        }));
        let msg = *panicked
            .expect_err("run() still panics")
            .downcast::<String>()
            .expect("panic carries the diagnostic string");
        assert_eq!(msg, *diagnostic, "run and try_run agree byte-for-byte");
    }

    #[test]
    fn panic_on_deadlock_hatch_fires_inside_try_run() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut sim = Simulation::new(MeshConfig {
                panic_on_deadlock: true,
                ..deadlocking_cfg()
            });
            sim.try_run(0, 50_000)
        }));
        let msg = *result
            .expect_err("the hatch panics at the fire site")
            .downcast::<String>()
            .expect("panic carries the diagnostic string");
        assert!(msg.contains("watchdog"), "{msg}");
    }

    #[test]
    fn cycle_budget_aborts_identically_across_kernels() {
        for kernel in [
            SimKernel::ActiveSet,
            SimKernel::Reference,
            SimKernel::Sharded,
            SimKernel::EventDriven,
        ] {
            let cfg = MeshConfig {
                kernel,
                shards: 4,
                threads: 2,
                cycle_budget: 200,
                ..base_cfg()
            };
            let abort = Simulation::new(cfg)
                .try_run(100, 900)
                .expect_err("budget below warmup+measure must abort");
            assert_eq!(
                abort,
                SimAbort::CycleBudgetExceeded {
                    budget: 200,
                    requested: 1000
                },
                "kernel {kernel:?}"
            );
        }
    }

    #[test]
    fn sufficient_cycle_budget_changes_nothing() {
        let baseline = Simulation::new(base_cfg()).run(100, 900);
        let budgeted = Simulation::new(MeshConfig {
            cycle_budget: 1000,
            ..base_cfg()
        })
        .try_run(100, 900)
        .expect("budget == warmup+measure completes");
        assert_eq!(baseline, budgeted, "an adequate budget is invisible");
    }

    #[test]
    fn event_kernel_leaps_and_stays_identical_across_runs() {
        // Two back-to-back runs at a rate low enough that most cycles
        // are dead: the event kernel must (a) actually leap, (b) match
        // the worklist kernel bit for bit in BOTH windows — the second
        // run only agrees if the first left every RNG frontier, ON/OFF
        // state and sequence counter exactly where the cycle loop
        // would have.
        let low = |kernel| MeshConfig {
            injection_rate: 0.004,
            gating: Some(SleepConfig {
                policy: GatingPolicy::IdleThreshold(4),
                wake_latency: 1,
            }),
            kernel,
            ..base_cfg()
        };
        let mut active = Simulation::new(low(SimKernel::ActiveSet));
        let mut event = Simulation::new(low(SimKernel::EventDriven));
        assert_eq!(event.kernel(), SimKernel::EventDriven);
        for window in 0..2 {
            let a = active.run(50, 2000);
            let e = event.run(50, 2000);
            assert_eq!(a, e, "window {window} diverged");
        }
        assert_eq!(active.flits_injected_total(), event.flits_injected_total());
        assert_eq!(active.cycles_leapt_total(), 0);
        assert!(
            event.cycles_leapt_total() > 1000,
            "a 0.4% load must leave most of {} cycles leapable, leapt {}",
            2 * 2050,
            event.cycles_leapt_total()
        );
        assert!(event.events_processed_total() > 0);
        assert!(
            event.routers_stepped_total() < active.routers_stepped_total() + 1,
            "leaping must never step more routers than the worklist kernel"
        );
    }

    #[test]
    fn event_kernel_matches_under_bursty_and_saturation() {
        // The two regimes that stress the prediction machinery: bursty
        // ON/OFF (every skipped cycle still consumes a flip draw) and
        // tornado saturation (the wheel never empties and the kernel
        // degrades to per-cycle stepping — correctly).
        let bursty = MeshConfig {
            injection_rate: 0.01,
            injection: InjectionProcess::BurstyOnOff {
                mean_burst: 12,
                mean_idle: 60,
            },
            ..base_cfg()
        };
        let a = Simulation::new(MeshConfig {
            kernel: SimKernel::ActiveSet,
            ..bursty.clone()
        })
        .run(100, 3000);
        let e = Simulation::new(MeshConfig {
            kernel: SimKernel::EventDriven,
            ..bursty
        })
        .run(100, 3000);
        assert_eq!(a, e, "bursty low rate diverged");

        let saturated = MeshConfig {
            width: 8,
            height: 8,
            wrap: true,
            vcs: 2,
            pattern: TrafficPattern::Tornado,
            injection_rate: 0.5,
            packet_len_flits: 3,
            seed: 9,
            ..MeshConfig::default()
        };
        let mut event = Simulation::new(MeshConfig {
            kernel: SimKernel::EventDriven,
            ..saturated.clone()
        });
        let e = event.run(100, 1500);
        let a = Simulation::new(MeshConfig {
            kernel: SimKernel::ActiveSet,
            ..saturated
        })
        .run(100, 1500);
        assert_eq!(a, e, "saturation diverged");
        assert!(
            event.cycles_leapt_total() < 120,
            "saturation leaves almost nothing to leap, leapt {}",
            event.cycles_leapt_total()
        );
    }
}
