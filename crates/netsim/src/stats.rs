//! Network statistics: latency, throughput, activity and idle-interval
//! histograms.

use lnoc_power::gating::IdleHistogram;
use lnoc_power::router::RouterActivity;
use serde::{Deserialize, Serialize};

/// Aggregate results of one simulation run (measurement phase only).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Cycles in the measurement phase.
    pub measured_cycles: u64,
    /// Packets injected during measurement.
    pub packets_injected: u64,
    /// Packets fully delivered during measurement.
    pub packets_delivered: u64,
    /// Flits delivered during measurement.
    pub flits_delivered: u64,
    /// Sum of packet latencies (injection → tail ejection), cycles.
    pub latency_sum: u64,
    /// Max packet latency seen.
    pub latency_max: u64,
    /// Per-router activity counters.
    pub router_activity: Vec<RouterActivity>,
    /// Idle-interval histogram per router per output port (5 per
    /// router, [`crate::topology::Direction`] order).
    #[serde(skip)]
    pub idle_histograms: Vec<[IdleHistogram; 5]>,
}

impl NetworkStats {
    /// Creates zeroed stats for `routers` routers.
    pub fn new(routers: usize, histogram_cap: usize) -> Self {
        NetworkStats {
            measured_cycles: 0,
            packets_injected: 0,
            packets_delivered: 0,
            flits_delivered: 0,
            latency_sum: 0,
            latency_max: 0,
            router_activity: vec![RouterActivity::default(); routers],
            idle_histograms: (0..routers)
                .map(|_| std::array::from_fn(|_| IdleHistogram::new(histogram_cap)))
                .collect(),
        }
    }

    /// Mean packet latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.packets_delivered == 0 {
            return 0.0;
        }
        self.latency_sum as f64 / self.packets_delivered as f64
    }

    /// Delivered flits per router per cycle — the standard accepted
    /// throughput metric.
    pub fn throughput(&self) -> f64 {
        if self.measured_cycles == 0 || self.router_activity.is_empty() {
            return 0.0;
        }
        self.flits_delivered as f64
            / (self.measured_cycles as f64 * self.router_activity.len() as f64)
    }

    /// Merges all routers' per-port histograms into one network-wide
    /// distribution.
    pub fn merged_idle_histogram(&self, cap: usize) -> IdleHistogram {
        let mut merged = IdleHistogram::new(cap);
        for per_router in &self.idle_histograms {
            for h in per_router {
                // Re-record through the public API so differing caps are
                // tolerated.
                for (len, count) in h.iter_lengths() {
                    for _ in 0..count {
                        merged.record(len);
                    }
                }
            }
        }
        merged
    }

    /// Network-wide crossbar-output utilization: fraction of
    /// router-output-cycles that carried a flit.
    pub fn crossbar_utilization(&self) -> f64 {
        if self.measured_cycles == 0 {
            return 0.0;
        }
        let traversals: u64 = self
            .router_activity
            .iter()
            .map(|a| a.crossbar_traversals)
            .sum();
        traversals as f64 / (self.measured_cycles as f64 * self.router_activity.len() as f64 * 5.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_stats_are_safe() {
        let s = NetworkStats::new(4, 64);
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.crossbar_utilization(), 0.0);
    }

    #[test]
    fn merged_histogram_accumulates() {
        let mut s = NetworkStats::new(2, 64);
        s.idle_histograms[0][0].record(5);
        s.idle_histograms[1][3].record(5);
        s.idle_histograms[1][3].record(7);
        let merged = s.merged_idle_histogram(64);
        assert_eq!(merged.interval_count(), 3);
        assert_eq!(merged.total_idle_cycles(), 17);
    }

    #[test]
    fn latency_math() {
        let mut s = NetworkStats::new(1, 8);
        s.packets_delivered = 4;
        s.latency_sum = 40;
        assert!((s.avg_latency() - 10.0).abs() < 1e-12);
    }
}
