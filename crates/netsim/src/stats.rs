//! Network statistics: latency, throughput, activity, idle-interval
//! histograms and in-loop gating counters.

use lnoc_power::gating::{GatingCounters, IdleHistogram};
use lnoc_power::router::RouterActivity;
use serde::{Deserialize, Serialize};

/// Aggregate results of one simulation run (measurement phase only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Cycles in the measurement phase.
    pub measured_cycles: u64,
    /// Packets injected during measurement.
    pub packets_injected: u64,
    /// Packets the traffic pattern offered during measurement that were
    /// rejected because the node's source queue was at
    /// [`crate::sim::MeshConfig::source_queue_cap`]. Dropped packets
    /// never enter the network, so flit conservation stays exact.
    pub packets_dropped_at_source: u64,
    /// Packets fully delivered during measurement.
    pub packets_delivered: u64,
    /// Flits delivered during measurement.
    pub flits_delivered: u64,
    /// Sum of packet latencies (injection → tail ejection), cycles.
    pub latency_sum: u64,
    /// Max packet latency seen.
    pub latency_max: u64,
    /// Flits discarded at fault boundaries during measurement: every
    /// buffered or still-queued flit of a packet killed by a fault
    /// (dead router, torn worm, or a path change that would tear the
    /// worm). Each removal returns its buffer credit upstream, so flit
    /// conservation stays exact:
    /// `injected == delivered + in_flight + dropped_by_fault`.
    pub flits_dropped_by_fault: u64,
    /// Packets killed mid-flight by a fault during measurement
    /// (counted once, at the packet's source tile).
    pub packets_dropped_by_fault: u64,
    /// Packets abandoned because no surviving route to their
    /// destination existed — offered traffic whose destination was
    /// unreachable at injection time, plus queued-but-unsent packets
    /// discarded when a fault disconnected their destination.
    pub packets_unroutable: u64,
    /// Packets delivered at or after the first fault onset — with
    /// `latency_sum_post_fault`, the degraded-mode latency the sweep
    /// reports.
    pub packets_delivered_post_fault: u64,
    /// Sum of latencies of post-fault deliveries, cycles.
    pub latency_sum_post_fault: u64,
    /// Worst reachable-pair fraction over the run's fault epochs
    /// (`1.0` when no fault plan is active). Set by the runner after
    /// the shard merge; a pure function of the fault schedule.
    pub min_reachable_fraction: f64,
    /// Per-router activity counters.
    pub router_activity: Vec<RouterActivity>,
    /// Virtual channels per port the run was simulated with (the
    /// histograms below have `5 * vcs` entries per router).
    pub vcs: usize,
    /// Idle-interval histogram per router per output VC lane
    /// (`5 * vcs` per router, indexed `port * vcs + vc` with ports in
    /// [`crate::topology::Direction`] order), stored sparsely: rows
    /// materialize on first write and untouched routers share one
    /// default row ([`IdleBank`]).
    #[serde(skip)]
    pub idle_histograms: IdleBank,
    /// Per-router in-loop gating counters (all output VC lanes
    /// summed); all-zero when the run was ungated.
    pub gating: Vec<GatingCounters>,
}

impl NetworkStats {
    /// Default idle-interval histogram bin count: intervals *shorter*
    /// than this many cycles are binned exactly; intervals of this
    /// length and longer land in the overflow bin (which still tracks
    /// their exact total cycle count). Every simulation, test and
    /// sweep in the workspace uses this cap unless it has a reason not
    /// to, so their histograms merge on the exact bin-wise fast path.
    pub const DEFAULT_IDLE_BINS: usize = 4096;

    /// Creates zeroed stats for `routers` routers with `vcs` virtual
    /// channels per port.
    pub fn new(routers: usize, vcs: usize, histogram_cap: usize) -> Self {
        NetworkStats {
            measured_cycles: 0,
            packets_injected: 0,
            packets_dropped_at_source: 0,
            packets_delivered: 0,
            flits_delivered: 0,
            latency_sum: 0,
            latency_max: 0,
            flits_dropped_by_fault: 0,
            packets_dropped_by_fault: 0,
            packets_unroutable: 0,
            packets_delivered_post_fault: 0,
            latency_sum_post_fault: 0,
            min_reachable_fraction: 1.0,
            router_activity: vec![RouterActivity::default(); routers],
            vcs,
            idle_histograms: IdleBank::new(routers, 5 * vcs, histogram_cap),
            gating: vec![GatingCounters::default(); routers],
        }
    }

    /// Merges another stats record of the **same network dimensions**
    /// into this one. Equivalent to [`NetworkStats::merge_shard`] with
    /// a zero router offset and a full-network record.
    ///
    /// # Panics
    ///
    /// Panics when the two records describe different network shapes
    /// (router count or VC count).
    pub fn merge(&mut self, other: &NetworkStats) {
        assert_eq!(
            self.router_activity.len(),
            other.router_activity.len(),
            "merging stats of different networks"
        );
        self.merge_shard(other, 0);
    }

    /// Merges a tile's stats record — covering the contiguous router
    /// range `base_router ..` — into this network-wide record: the
    /// reduction the sharded kernel uses to combine per-shard
    /// statistics (each shard records only its own routers, so its
    /// record stays proportional to the tile, not the network).
    ///
    /// Merge semantics per field:
    ///
    /// * scalar counters (packets, flits, drops, latency sum) — added;
    /// * `latency_max` / `measured_cycles` — maximum;
    /// * per-router activity, gating counters — element-wise addition
    ///   at the offset;
    /// * idle histograms — bin-wise [`IdleHistogram::merge`] (open runs
    ///   appended in the other record's order).
    ///
    /// **Deterministic merge order.** The sharded runner merges shard
    /// records in ascending shard id. Every field is an integer sum or
    /// maximum — and each router's histograms and counters are touched
    /// by exactly one shard — so the result is in fact independent of
    /// merge order; the fixed order pins the byte layout (notably
    /// open-run vectors) without relying on that argument.
    ///
    /// # Panics
    ///
    /// Panics when the VC counts differ or the offset record does not
    /// fit inside this one.
    pub fn merge_shard(&mut self, other: &NetworkStats, base_router: usize) {
        assert!(
            base_router + other.router_activity.len() <= self.router_activity.len(),
            "merged tile exceeds the network"
        );
        assert_eq!(self.vcs, other.vcs, "merging stats of different VC counts");
        self.measured_cycles = self.measured_cycles.max(other.measured_cycles);
        self.packets_injected += other.packets_injected;
        self.packets_dropped_at_source += other.packets_dropped_at_source;
        self.packets_delivered += other.packets_delivered;
        self.flits_delivered += other.flits_delivered;
        self.latency_sum += other.latency_sum;
        self.latency_max = self.latency_max.max(other.latency_max);
        self.flits_dropped_by_fault += other.flits_dropped_by_fault;
        self.packets_dropped_by_fault += other.packets_dropped_by_fault;
        self.packets_unroutable += other.packets_unroutable;
        self.packets_delivered_post_fault += other.packets_delivered_post_fault;
        self.latency_sum_post_fault += other.latency_sum_post_fault;
        self.min_reachable_fraction = self
            .min_reachable_fraction
            .min(other.min_reachable_fraction);
        for (mine, theirs) in self.router_activity[base_router..]
            .iter_mut()
            .zip(&other.router_activity)
        {
            mine.add(theirs);
        }
        self.idle_histograms
            .merge_from(&other.idle_histograms, base_router);
        for (mine, theirs) in self.gating[base_router..].iter_mut().zip(&other.gating) {
            mine.add(theirs);
        }
    }

    /// Mean packet latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.packets_delivered == 0 {
            return 0.0;
        }
        self.latency_sum as f64 / self.packets_delivered as f64
    }

    /// Mean latency (cycles) of packets delivered at or after the
    /// first fault onset — the degraded-mode latency.
    pub fn avg_latency_post_fault(&self) -> f64 {
        if self.packets_delivered_post_fault == 0 {
            return 0.0;
        }
        self.latency_sum_post_fault as f64 / self.packets_delivered_post_fault as f64
    }

    /// Delivered flits per router per cycle — the standard accepted
    /// throughput metric.
    pub fn throughput(&self) -> f64 {
        if self.measured_cycles == 0 || self.router_activity.is_empty() {
            return 0.0;
        }
        self.flits_delivered as f64
            / (self.measured_cycles as f64 * self.router_activity.len() as f64)
    }

    /// Merges all routers' per-port histograms into one network-wide
    /// distribution.
    ///
    /// When `cap` matches the per-port histogram cap this is a direct
    /// bin-wise merge; otherwise bins are re-recorded in O(bins) via
    /// [`IdleHistogram::merge_rebinned`] (never O(idle cycles)), which
    /// preserves interval counts and total idle cycles exactly either
    /// way.
    pub fn merged_idle_histogram(&self, cap: usize) -> IdleHistogram {
        let mut merged = IdleHistogram::new(cap);
        for r in 0..self.idle_histograms.routers() {
            for l in 0..self.idle_histograms.lanes() {
                merged.merge_rebinned(self.idle_histograms.lane(r, l));
            }
        }
        merged
    }

    /// Network-wide in-loop gating counters (all routers summed).
    pub fn total_gating_counters(&self) -> GatingCounters {
        let mut total = GatingCounters::default();
        for c in &self.gating {
            total.add(c);
        }
        total
    }

    /// Total cycles flits stalled behind sleeping ports — the measured
    /// latency cost of in-loop power gating.
    pub fn wake_stall_cycles(&self) -> u64 {
        self.gating.iter().map(|c| c.wake_stall_cycles).sum()
    }

    /// Network-wide crossbar-output utilization: fraction of
    /// router-output-cycles that carried a flit.
    pub fn crossbar_utilization(&self) -> f64 {
        if self.measured_cycles == 0 {
            return 0.0;
        }
        let traversals: u64 = self
            .router_activity
            .iter()
            .map(|a| a.crossbar_traversals)
            .sum();
        traversals as f64 / (self.measured_cycles as f64 * self.router_activity.len() as f64 * 5.0)
    }
}

/// Sparse `routers × lanes` bank of [`IdleHistogram`]s.
///
/// At the injection rates the leakage study sweeps, almost every
/// router's histograms stay empty for the whole run except for the one
/// trailing open interval the close-out records — yet the old
/// `Vec<Vec<IdleHistogram>>` paid a nested allocation per router up
/// front, which at a million routers dominated run setup. The bank
/// keeps one `default_row` shared by every router that was never
/// written and materializes a router's private row on its first
/// `lane_mut`, so construction is O(routers) words and the run's
/// histogram memory is proportional to routers actually touched.
///
/// [`IdleBank::record_open_untouched`] is the close-out's bulk path:
/// it appends one open interval to the shared default row, which every
/// still-unmaterialized router then reports — O(lanes) for the whole
/// untouched population. Equality, merging and iteration are all
/// content-based: an unmaterialized router behaves exactly as if its
/// row held the default row's contents.
#[derive(Debug, Clone, Default)]
pub struct IdleBank {
    lanes: usize,
    cap: usize,
    /// Per-router index into `rows` (in units of rows); `u32::MAX`
    /// marks an unmaterialized router whose content is `default_row`.
    idx: Vec<u32>,
    /// Materialized rows, `lanes` histograms each, in first-write
    /// order.
    rows: Vec<IdleHistogram>,
    /// Shared content of every unmaterialized router. Pristine until
    /// [`IdleBank::record_open_untouched`].
    default_row: Vec<IdleHistogram>,
}

impl IdleBank {
    /// Creates a bank for `routers` routers with `lanes` histograms
    /// each, every histogram capped at `cap` exact bins.
    pub fn new(routers: usize, lanes: usize, cap: usize) -> Self {
        assert!(u32::try_from(routers).is_ok(), "router count fits u32");
        IdleBank {
            lanes,
            cap,
            idx: vec![u32::MAX; routers],
            rows: Vec::new(),
            default_row: (0..lanes).map(|_| IdleHistogram::new(cap)).collect(),
        }
    }

    /// Number of routers in the bank.
    pub fn routers(&self) -> usize {
        self.idx.len()
    }

    /// Histograms per router (`5 × vcs` in a simulation record).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// A router's materialized row, if it has one.
    fn row(&self, router: usize) -> Option<&[IdleHistogram]> {
        let i = self.idx[router];
        (i != u32::MAX).then(|| {
            let base = i as usize * self.lanes;
            &self.rows[base..base + self.lanes]
        })
    }

    /// Read access to one lane's histogram — the router's own row when
    /// materialized, the shared default row otherwise.
    pub fn lane(&self, router: usize, lane: usize) -> &IdleHistogram {
        assert!(lane < self.lanes, "lane out of range");
        match self.row(router) {
            Some(row) => &row[lane],
            None => &self.default_row[lane],
        }
    }

    /// Write access to one lane's histogram, materializing the
    /// router's row (as a copy of the current default row, so the
    /// router's observable content is unchanged by materialization).
    pub fn lane_mut(&mut self, router: usize, lane: usize) -> &mut IdleHistogram {
        assert!(lane < self.lanes, "lane out of range");
        let base = match self.idx[router] {
            u32::MAX => {
                let next = self.rows.len() / self.lanes;
                self.idx[router] = u32::try_from(next).expect("row index fits u32");
                self.rows.extend(self.default_row.iter().cloned());
                next * self.lanes
            }
            i => i as usize * self.lanes,
        };
        &mut self.rows[base + lane]
    }

    /// Records one still-open idle interval of `len` cycles into
    /// **every lane of every router not materialized yet** (0-length
    /// ignored) — the O(lanes) close-out for the untouched population.
    /// Callers must materialize every touched router first: a
    /// `lane_mut` after this call clones the default row *including*
    /// this interval.
    pub fn record_open_untouched(&mut self, len: u64) {
        for h in &mut self.default_row {
            h.record_open(len);
        }
    }

    /// Whether the shared default row carries any recorded content
    /// (i.e. [`IdleBank::record_open_untouched`] recorded something).
    fn default_dirty(&self) -> bool {
        self.default_row.iter().any(|h| h.interval_count() > 0)
    }

    /// Merges another bank — covering routers `base ..` of this one —
    /// lane-wise into this bank, exactly like the old per-histogram
    /// [`IdleHistogram::merge`] loop. Routers that are unmaterialized
    /// in `other` merge their default-row content (skipped entirely
    /// when that row is pristine, so merging an untouched tile stays
    /// O(1) per router).
    ///
    /// # Panics
    ///
    /// Panics when lane counts or caps differ, or `other` overhangs.
    pub fn merge_from(&mut self, other: &IdleBank, base: usize) {
        assert_eq!(
            self.lanes, other.lanes,
            "merging banks of different lane counts"
        );
        assert_eq!(self.cap, other.cap, "merging banks of different caps");
        assert!(
            base + other.routers() <= self.routers(),
            "merged tile exceeds the network"
        );
        let dirty = other.default_dirty();
        for r in 0..other.routers() {
            match other.row(r) {
                Some(row) => {
                    for (l, h) in row.iter().enumerate() {
                        self.lane_mut(base + r, l).merge(h);
                    }
                }
                None if dirty => {
                    for (l, h) in other.default_row.iter().enumerate() {
                        self.lane_mut(base + r, l).merge(h);
                    }
                }
                None => {}
            }
        }
    }
}

impl PartialEq for IdleBank {
    fn eq(&self, other: &Self) -> bool {
        if self.routers() != other.routers() || self.lanes != other.lanes || self.cap != other.cap {
            return false;
        }
        // Content equality, router by router: materialization state is
        // an implementation detail, so a materialized row equals an
        // unmaterialized router with the same effective content.
        let defaults_eq = self.default_row == other.default_row;
        (0..self.routers()).all(|r| match (self.row(r), other.row(r)) {
            (None, None) => defaults_eq,
            (a, b) => a.unwrap_or(&self.default_row) == b.unwrap_or(&other.default_row),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_stats_are_safe() {
        let s = NetworkStats::new(4, 1, 64);
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.crossbar_utilization(), 0.0);
        assert_eq!(s.total_gating_counters(), GatingCounters::default());
    }

    #[test]
    fn merged_histogram_accumulates() {
        let mut s = NetworkStats::new(2, 1, 64);
        s.idle_histograms.lane_mut(0, 0).record(5);
        s.idle_histograms.lane_mut(1, 3).record(5);
        s.idle_histograms.lane_mut(1, 3).record(7);
        let merged = s.merged_idle_histogram(64);
        assert_eq!(merged.interval_count(), 3);
        assert_eq!(merged.total_idle_cycles(), 17);
    }

    #[test]
    fn merged_histogram_same_for_either_cap_path() {
        // The fast bin-wise merge (matching caps) and the re-binning
        // path (differing caps) must agree on every total — including
        // overflow bins whose average length is not an integer (100 and
        // 101 average to 100.5; naive truncation would drop a cycle).
        let mut s = NetworkStats::new(2, 2, 64);
        s.idle_histograms.lane_mut(0, 0).record_n(5, 400);
        s.idle_histograms.lane_mut(0, 7).record_n(9, 2); // a VC-1 lane of port 3
        s.idle_histograms.lane_mut(0, 2).record_n(63, 10);
        s.idle_histograms.lane_mut(1, 1).record_n(1000, 3); // overflow bin
        s.idle_histograms.lane_mut(1, 3).record(100); // overflow, inexact average
        s.idle_histograms.lane_mut(1, 3).record(101);
        s.idle_histograms.lane_mut(1, 4).record_open(77);
        let fast = s.merged_idle_histogram(64);
        let slow = s.merged_idle_histogram(128);
        assert_eq!(fast.interval_count(), slow.interval_count());
        assert_eq!(fast.interval_count(), 418);
        assert_eq!(fast.total_idle_cycles(), slow.total_idle_cycles());
        assert_eq!(fast.total_idle_cycles(), 2000 + 18 + 630 + 3000 + 201 + 77);
        assert_eq!(fast.open_runs(), &[77]);
    }

    #[test]
    fn merge_shard_places_tiles_and_merge_matches_whole_network() {
        // Two tile records (routers 0..2 and 2..4 of a 4-router
        // network) reduced at their offsets must equal the same events
        // recorded into one full-size record — and `merge` must be
        // exactly `merge_shard` at offset 0 with a full-size record.
        let mut tile0 = NetworkStats::new(2, 1, 64);
        tile0.packets_injected = 3;
        tile0.packets_delivered = 2;
        tile0.flits_delivered = 8;
        tile0.latency_sum = 40;
        tile0.latency_max = 25;
        tile0.measured_cycles = 100;
        tile0.router_activity[1].cycles = 100;
        tile0.idle_histograms.lane_mut(0, 2).record(5);
        tile0.gating[1].sleep_entries = 7;
        let mut tile1 = NetworkStats::new(2, 1, 64);
        tile1.packets_injected = 1;
        tile1.packets_delivered = 1;
        tile1.flits_delivered = 4;
        tile1.latency_sum = 10;
        tile1.latency_max = 10;
        tile1.measured_cycles = 100;
        tile1.router_activity[0].cycles = 50;
        tile1.idle_histograms.lane_mut(1, 0).record_open(9);

        let mut reduced = NetworkStats::new(4, 1, 64);
        reduced.merge_shard(&tile0, 0);
        reduced.merge_shard(&tile1, 2);

        let mut whole = NetworkStats::new(4, 1, 64);
        whole.packets_injected = 4;
        whole.packets_delivered = 3;
        whole.flits_delivered = 12;
        whole.latency_sum = 50;
        whole.latency_max = 25;
        whole.measured_cycles = 100;
        whole.router_activity[1].cycles = 100;
        whole.router_activity[2].cycles = 50;
        whole.idle_histograms.lane_mut(0, 2).record(5);
        whole.idle_histograms.lane_mut(3, 0).record_open(9);
        whole.gating[1].sleep_entries = 7;
        assert_eq!(reduced, whole);

        // Same-size merge is the offset-0 special case.
        let mut via_merge = NetworkStats::new(4, 1, 64);
        via_merge.merge(&whole);
        assert_eq!(via_merge, whole);
    }

    #[test]
    #[should_panic(expected = "exceeds the network")]
    fn merge_shard_rejects_overhanging_tiles() {
        let mut net = NetworkStats::new(4, 1, 64);
        let tile = NetworkStats::new(2, 1, 64);
        net.merge_shard(&tile, 3);
    }

    #[test]
    fn latency_math() {
        let mut s = NetworkStats::new(1, 1, 8);
        s.packets_delivered = 4;
        s.latency_sum = 40;
        assert!((s.avg_latency() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn bank_equality_is_content_based() {
        // A router materialized with default content equals an
        // unmaterialized one; actual content differences still show.
        let mut a = IdleBank::new(3, 2, 16);
        let b = IdleBank::new(3, 2, 16);
        let _ = a.lane_mut(1, 0); // materialize, write nothing
        assert_eq!(a, b);
        a.lane_mut(1, 0).record(4);
        assert_ne!(a, b);
    }

    #[test]
    fn bank_untouched_open_run_reaches_only_unmaterialized_rows() {
        let mut bank = IdleBank::new(3, 2, 16);
        bank.lane_mut(0, 1).record(7); // router 0 touched
        bank.record_open_untouched(40);
        assert_eq!(bank.lane(0, 0).open_runs(), &[] as &[u64]);
        assert_eq!(bank.lane(0, 1).open_runs(), &[] as &[u64]);
        for r in 1..3 {
            for l in 0..2 {
                assert_eq!(bank.lane(r, l).open_runs(), &[40]);
            }
        }
        // Materializing after the bulk record preserves content.
        let _ = bank.lane_mut(2, 0);
        assert_eq!(bank.lane(2, 0).open_runs(), &[40]);
        assert_eq!(bank.lane(2, 1).open_runs(), &[40]);
    }

    #[test]
    fn bank_merge_carries_default_content() {
        // A tile whose routers are all untouched except one, with a
        // bulk open run applied: merging it at an offset must land the
        // private row and the shared default content alike.
        let mut tile = IdleBank::new(2, 1, 16);
        tile.lane_mut(0, 0).record(3);
        tile.record_open_untouched(9);
        let mut net = IdleBank::new(4, 1, 16);
        net.merge_from(&tile, 2);
        assert_eq!(net.lane(2, 0).interval_count(), 1);
        assert_eq!(net.lane(2, 0).total_idle_cycles(), 3);
        assert_eq!(net.lane(3, 0).open_runs(), &[9]);
        assert_eq!(net.lane(0, 0).interval_count(), 0);
    }
}
