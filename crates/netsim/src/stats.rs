//! Network statistics: latency, throughput, activity, idle-interval
//! histograms and in-loop gating counters.

use lnoc_power::gating::{GatingCounters, IdleHistogram};
use lnoc_power::router::RouterActivity;
use serde::{Deserialize, Serialize};

/// Aggregate results of one simulation run (measurement phase only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Cycles in the measurement phase.
    pub measured_cycles: u64,
    /// Packets injected during measurement.
    pub packets_injected: u64,
    /// Packets the traffic pattern offered during measurement that were
    /// rejected because the node's source queue was at
    /// [`crate::sim::MeshConfig::source_queue_cap`]. Dropped packets
    /// never enter the network, so flit conservation stays exact.
    pub packets_dropped_at_source: u64,
    /// Packets fully delivered during measurement.
    pub packets_delivered: u64,
    /// Flits delivered during measurement.
    pub flits_delivered: u64,
    /// Sum of packet latencies (injection → tail ejection), cycles.
    pub latency_sum: u64,
    /// Max packet latency seen.
    pub latency_max: u64,
    /// Per-router activity counters.
    pub router_activity: Vec<RouterActivity>,
    /// Virtual channels per port the run was simulated with (the
    /// histograms below have `5 * vcs` entries per router).
    pub vcs: usize,
    /// Idle-interval histogram per router per output VC lane
    /// (`5 * vcs` per router, indexed `port * vcs + vc` with ports in
    /// [`crate::topology::Direction`] order).
    #[serde(skip)]
    pub idle_histograms: Vec<Vec<IdleHistogram>>,
    /// Per-router in-loop gating counters (all output VC lanes
    /// summed); all-zero when the run was ungated.
    pub gating: Vec<GatingCounters>,
}

impl NetworkStats {
    /// Default idle-interval histogram bin count: intervals *shorter*
    /// than this many cycles are binned exactly; intervals of this
    /// length and longer land in the overflow bin (which still tracks
    /// their exact total cycle count). Every simulation, test and
    /// sweep in the workspace uses this cap unless it has a reason not
    /// to, so their histograms merge on the exact bin-wise fast path.
    pub const DEFAULT_IDLE_BINS: usize = 4096;

    /// Creates zeroed stats for `routers` routers with `vcs` virtual
    /// channels per port.
    pub fn new(routers: usize, vcs: usize, histogram_cap: usize) -> Self {
        NetworkStats {
            measured_cycles: 0,
            packets_injected: 0,
            packets_dropped_at_source: 0,
            packets_delivered: 0,
            flits_delivered: 0,
            latency_sum: 0,
            latency_max: 0,
            router_activity: vec![RouterActivity::default(); routers],
            vcs,
            idle_histograms: (0..routers)
                .map(|_| {
                    (0..5 * vcs)
                        .map(|_| IdleHistogram::new(histogram_cap))
                        .collect()
                })
                .collect(),
            gating: vec![GatingCounters::default(); routers],
        }
    }

    /// Mean packet latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.packets_delivered == 0 {
            return 0.0;
        }
        self.latency_sum as f64 / self.packets_delivered as f64
    }

    /// Delivered flits per router per cycle — the standard accepted
    /// throughput metric.
    pub fn throughput(&self) -> f64 {
        if self.measured_cycles == 0 || self.router_activity.is_empty() {
            return 0.0;
        }
        self.flits_delivered as f64
            / (self.measured_cycles as f64 * self.router_activity.len() as f64)
    }

    /// Merges all routers' per-port histograms into one network-wide
    /// distribution.
    ///
    /// When `cap` matches the per-port histogram cap this is a direct
    /// bin-wise merge; otherwise bins are re-recorded in O(bins) via
    /// [`IdleHistogram::merge_rebinned`] (never O(idle cycles)), which
    /// preserves interval counts and total idle cycles exactly either
    /// way.
    pub fn merged_idle_histogram(&self, cap: usize) -> IdleHistogram {
        let mut merged = IdleHistogram::new(cap);
        for per_router in &self.idle_histograms {
            for h in per_router {
                merged.merge_rebinned(h);
            }
        }
        merged
    }

    /// Network-wide in-loop gating counters (all routers summed).
    pub fn total_gating_counters(&self) -> GatingCounters {
        let mut total = GatingCounters::default();
        for c in &self.gating {
            total.add(c);
        }
        total
    }

    /// Total cycles flits stalled behind sleeping ports — the measured
    /// latency cost of in-loop power gating.
    pub fn wake_stall_cycles(&self) -> u64 {
        self.gating.iter().map(|c| c.wake_stall_cycles).sum()
    }

    /// Network-wide crossbar-output utilization: fraction of
    /// router-output-cycles that carried a flit.
    pub fn crossbar_utilization(&self) -> f64 {
        if self.measured_cycles == 0 {
            return 0.0;
        }
        let traversals: u64 = self
            .router_activity
            .iter()
            .map(|a| a.crossbar_traversals)
            .sum();
        traversals as f64 / (self.measured_cycles as f64 * self.router_activity.len() as f64 * 5.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_stats_are_safe() {
        let s = NetworkStats::new(4, 1, 64);
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.crossbar_utilization(), 0.0);
        assert_eq!(s.total_gating_counters(), GatingCounters::default());
    }

    #[test]
    fn merged_histogram_accumulates() {
        let mut s = NetworkStats::new(2, 1, 64);
        s.idle_histograms[0][0].record(5);
        s.idle_histograms[1][3].record(5);
        s.idle_histograms[1][3].record(7);
        let merged = s.merged_idle_histogram(64);
        assert_eq!(merged.interval_count(), 3);
        assert_eq!(merged.total_idle_cycles(), 17);
    }

    #[test]
    fn merged_histogram_same_for_either_cap_path() {
        // The fast bin-wise merge (matching caps) and the re-binning
        // path (differing caps) must agree on every total — including
        // overflow bins whose average length is not an integer (100 and
        // 101 average to 100.5; naive truncation would drop a cycle).
        let mut s = NetworkStats::new(2, 2, 64);
        s.idle_histograms[0][0].record_n(5, 400);
        s.idle_histograms[0][7].record_n(9, 2); // a VC-1 lane of port 3
        s.idle_histograms[0][2].record_n(63, 10);
        s.idle_histograms[1][1].record_n(1000, 3); // overflow bin
        s.idle_histograms[1][3].record(100); // overflow, inexact average
        s.idle_histograms[1][3].record(101);
        s.idle_histograms[1][4].record_open(77);
        let fast = s.merged_idle_histogram(64);
        let slow = s.merged_idle_histogram(128);
        assert_eq!(fast.interval_count(), slow.interval_count());
        assert_eq!(fast.interval_count(), 418);
        assert_eq!(fast.total_idle_cycles(), slow.total_idle_cycles());
        assert_eq!(fast.total_idle_cycles(), 2000 + 18 + 630 + 3000 + 201 + 77);
        assert_eq!(fast.open_runs(), &[77]);
    }

    #[test]
    fn latency_math() {
        let mut s = NetworkStats::new(1, 1, 8);
        s.packets_delivered = 4;
        s.latency_sum = 40;
        assert!((s.avg_latency() - 10.0).abs() < 1e-12);
    }
}
