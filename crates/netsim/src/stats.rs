//! Network statistics: latency, throughput, activity, idle-interval
//! histograms and in-loop gating counters.

use lnoc_power::gating::{GatingCounters, IdleHistogram};
use lnoc_power::router::RouterActivity;
use serde::{Deserialize, Serialize};

/// Aggregate results of one simulation run (measurement phase only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Cycles in the measurement phase.
    pub measured_cycles: u64,
    /// Packets injected during measurement.
    pub packets_injected: u64,
    /// Packets the traffic pattern offered during measurement that were
    /// rejected because the node's source queue was at
    /// [`crate::sim::MeshConfig::source_queue_cap`]. Dropped packets
    /// never enter the network, so flit conservation stays exact.
    pub packets_dropped_at_source: u64,
    /// Packets fully delivered during measurement.
    pub packets_delivered: u64,
    /// Flits delivered during measurement.
    pub flits_delivered: u64,
    /// Sum of packet latencies (injection → tail ejection), cycles.
    pub latency_sum: u64,
    /// Max packet latency seen.
    pub latency_max: u64,
    /// Flits discarded at fault boundaries during measurement: every
    /// buffered or still-queued flit of a packet killed by a fault
    /// (dead router, torn worm, or a path change that would tear the
    /// worm). Each removal returns its buffer credit upstream, so flit
    /// conservation stays exact:
    /// `injected == delivered + in_flight + dropped_by_fault`.
    pub flits_dropped_by_fault: u64,
    /// Packets killed mid-flight by a fault during measurement
    /// (counted once, at the packet's source tile).
    pub packets_dropped_by_fault: u64,
    /// Packets abandoned because no surviving route to their
    /// destination existed — offered traffic whose destination was
    /// unreachable at injection time, plus queued-but-unsent packets
    /// discarded when a fault disconnected their destination.
    pub packets_unroutable: u64,
    /// Packets delivered at or after the first fault onset — with
    /// `latency_sum_post_fault`, the degraded-mode latency the sweep
    /// reports.
    pub packets_delivered_post_fault: u64,
    /// Sum of latencies of post-fault deliveries, cycles.
    pub latency_sum_post_fault: u64,
    /// Worst reachable-pair fraction over the run's fault epochs
    /// (`1.0` when no fault plan is active). Set by the runner after
    /// the shard merge; a pure function of the fault schedule.
    pub min_reachable_fraction: f64,
    /// Per-router activity counters.
    pub router_activity: Vec<RouterActivity>,
    /// Virtual channels per port the run was simulated with (the
    /// histograms below have `5 * vcs` entries per router).
    pub vcs: usize,
    /// Idle-interval histogram per router per output VC lane
    /// (`5 * vcs` per router, indexed `port * vcs + vc` with ports in
    /// [`crate::topology::Direction`] order).
    #[serde(skip)]
    pub idle_histograms: Vec<Vec<IdleHistogram>>,
    /// Per-router in-loop gating counters (all output VC lanes
    /// summed); all-zero when the run was ungated.
    pub gating: Vec<GatingCounters>,
}

impl NetworkStats {
    /// Default idle-interval histogram bin count: intervals *shorter*
    /// than this many cycles are binned exactly; intervals of this
    /// length and longer land in the overflow bin (which still tracks
    /// their exact total cycle count). Every simulation, test and
    /// sweep in the workspace uses this cap unless it has a reason not
    /// to, so their histograms merge on the exact bin-wise fast path.
    pub const DEFAULT_IDLE_BINS: usize = 4096;

    /// Creates zeroed stats for `routers` routers with `vcs` virtual
    /// channels per port.
    pub fn new(routers: usize, vcs: usize, histogram_cap: usize) -> Self {
        NetworkStats {
            measured_cycles: 0,
            packets_injected: 0,
            packets_dropped_at_source: 0,
            packets_delivered: 0,
            flits_delivered: 0,
            latency_sum: 0,
            latency_max: 0,
            flits_dropped_by_fault: 0,
            packets_dropped_by_fault: 0,
            packets_unroutable: 0,
            packets_delivered_post_fault: 0,
            latency_sum_post_fault: 0,
            min_reachable_fraction: 1.0,
            router_activity: vec![RouterActivity::default(); routers],
            vcs,
            idle_histograms: (0..routers)
                .map(|_| {
                    (0..5 * vcs)
                        .map(|_| IdleHistogram::new(histogram_cap))
                        .collect()
                })
                .collect(),
            gating: vec![GatingCounters::default(); routers],
        }
    }

    /// Merges another stats record of the **same network dimensions**
    /// into this one. Equivalent to [`NetworkStats::merge_shard`] with
    /// a zero router offset and a full-network record.
    ///
    /// # Panics
    ///
    /// Panics when the two records describe different network shapes
    /// (router count or VC count).
    pub fn merge(&mut self, other: &NetworkStats) {
        assert_eq!(
            self.router_activity.len(),
            other.router_activity.len(),
            "merging stats of different networks"
        );
        self.merge_shard(other, 0);
    }

    /// Merges a tile's stats record — covering the contiguous router
    /// range `base_router ..` — into this network-wide record: the
    /// reduction the sharded kernel uses to combine per-shard
    /// statistics (each shard records only its own routers, so its
    /// record stays proportional to the tile, not the network).
    ///
    /// Merge semantics per field:
    ///
    /// * scalar counters (packets, flits, drops, latency sum) — added;
    /// * `latency_max` / `measured_cycles` — maximum;
    /// * per-router activity, gating counters — element-wise addition
    ///   at the offset;
    /// * idle histograms — bin-wise [`IdleHistogram::merge`] (open runs
    ///   appended in the other record's order).
    ///
    /// **Deterministic merge order.** The sharded runner merges shard
    /// records in ascending shard id. Every field is an integer sum or
    /// maximum — and each router's histograms and counters are touched
    /// by exactly one shard — so the result is in fact independent of
    /// merge order; the fixed order pins the byte layout (notably
    /// open-run vectors) without relying on that argument.
    ///
    /// # Panics
    ///
    /// Panics when the VC counts differ or the offset record does not
    /// fit inside this one.
    pub fn merge_shard(&mut self, other: &NetworkStats, base_router: usize) {
        assert!(
            base_router + other.router_activity.len() <= self.router_activity.len(),
            "merged tile exceeds the network"
        );
        assert_eq!(self.vcs, other.vcs, "merging stats of different VC counts");
        self.measured_cycles = self.measured_cycles.max(other.measured_cycles);
        self.packets_injected += other.packets_injected;
        self.packets_dropped_at_source += other.packets_dropped_at_source;
        self.packets_delivered += other.packets_delivered;
        self.flits_delivered += other.flits_delivered;
        self.latency_sum += other.latency_sum;
        self.latency_max = self.latency_max.max(other.latency_max);
        self.flits_dropped_by_fault += other.flits_dropped_by_fault;
        self.packets_dropped_by_fault += other.packets_dropped_by_fault;
        self.packets_unroutable += other.packets_unroutable;
        self.packets_delivered_post_fault += other.packets_delivered_post_fault;
        self.latency_sum_post_fault += other.latency_sum_post_fault;
        self.min_reachable_fraction = self
            .min_reachable_fraction
            .min(other.min_reachable_fraction);
        for (mine, theirs) in self.router_activity[base_router..]
            .iter_mut()
            .zip(&other.router_activity)
        {
            mine.add(theirs);
        }
        for (mine, theirs) in self.idle_histograms[base_router..]
            .iter_mut()
            .zip(&other.idle_histograms)
        {
            for (h, o) in mine.iter_mut().zip(theirs) {
                h.merge(o);
            }
        }
        for (mine, theirs) in self.gating[base_router..].iter_mut().zip(&other.gating) {
            mine.add(theirs);
        }
    }

    /// Mean packet latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.packets_delivered == 0 {
            return 0.0;
        }
        self.latency_sum as f64 / self.packets_delivered as f64
    }

    /// Mean latency (cycles) of packets delivered at or after the
    /// first fault onset — the degraded-mode latency.
    pub fn avg_latency_post_fault(&self) -> f64 {
        if self.packets_delivered_post_fault == 0 {
            return 0.0;
        }
        self.latency_sum_post_fault as f64 / self.packets_delivered_post_fault as f64
    }

    /// Delivered flits per router per cycle — the standard accepted
    /// throughput metric.
    pub fn throughput(&self) -> f64 {
        if self.measured_cycles == 0 || self.router_activity.is_empty() {
            return 0.0;
        }
        self.flits_delivered as f64
            / (self.measured_cycles as f64 * self.router_activity.len() as f64)
    }

    /// Merges all routers' per-port histograms into one network-wide
    /// distribution.
    ///
    /// When `cap` matches the per-port histogram cap this is a direct
    /// bin-wise merge; otherwise bins are re-recorded in O(bins) via
    /// [`IdleHistogram::merge_rebinned`] (never O(idle cycles)), which
    /// preserves interval counts and total idle cycles exactly either
    /// way.
    pub fn merged_idle_histogram(&self, cap: usize) -> IdleHistogram {
        let mut merged = IdleHistogram::new(cap);
        for per_router in &self.idle_histograms {
            for h in per_router {
                merged.merge_rebinned(h);
            }
        }
        merged
    }

    /// Network-wide in-loop gating counters (all routers summed).
    pub fn total_gating_counters(&self) -> GatingCounters {
        let mut total = GatingCounters::default();
        for c in &self.gating {
            total.add(c);
        }
        total
    }

    /// Total cycles flits stalled behind sleeping ports — the measured
    /// latency cost of in-loop power gating.
    pub fn wake_stall_cycles(&self) -> u64 {
        self.gating.iter().map(|c| c.wake_stall_cycles).sum()
    }

    /// Network-wide crossbar-output utilization: fraction of
    /// router-output-cycles that carried a flit.
    pub fn crossbar_utilization(&self) -> f64 {
        if self.measured_cycles == 0 {
            return 0.0;
        }
        let traversals: u64 = self
            .router_activity
            .iter()
            .map(|a| a.crossbar_traversals)
            .sum();
        traversals as f64 / (self.measured_cycles as f64 * self.router_activity.len() as f64 * 5.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_stats_are_safe() {
        let s = NetworkStats::new(4, 1, 64);
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.crossbar_utilization(), 0.0);
        assert_eq!(s.total_gating_counters(), GatingCounters::default());
    }

    #[test]
    fn merged_histogram_accumulates() {
        let mut s = NetworkStats::new(2, 1, 64);
        s.idle_histograms[0][0].record(5);
        s.idle_histograms[1][3].record(5);
        s.idle_histograms[1][3].record(7);
        let merged = s.merged_idle_histogram(64);
        assert_eq!(merged.interval_count(), 3);
        assert_eq!(merged.total_idle_cycles(), 17);
    }

    #[test]
    fn merged_histogram_same_for_either_cap_path() {
        // The fast bin-wise merge (matching caps) and the re-binning
        // path (differing caps) must agree on every total — including
        // overflow bins whose average length is not an integer (100 and
        // 101 average to 100.5; naive truncation would drop a cycle).
        let mut s = NetworkStats::new(2, 2, 64);
        s.idle_histograms[0][0].record_n(5, 400);
        s.idle_histograms[0][7].record_n(9, 2); // a VC-1 lane of port 3
        s.idle_histograms[0][2].record_n(63, 10);
        s.idle_histograms[1][1].record_n(1000, 3); // overflow bin
        s.idle_histograms[1][3].record(100); // overflow, inexact average
        s.idle_histograms[1][3].record(101);
        s.idle_histograms[1][4].record_open(77);
        let fast = s.merged_idle_histogram(64);
        let slow = s.merged_idle_histogram(128);
        assert_eq!(fast.interval_count(), slow.interval_count());
        assert_eq!(fast.interval_count(), 418);
        assert_eq!(fast.total_idle_cycles(), slow.total_idle_cycles());
        assert_eq!(fast.total_idle_cycles(), 2000 + 18 + 630 + 3000 + 201 + 77);
        assert_eq!(fast.open_runs(), &[77]);
    }

    #[test]
    fn merge_shard_places_tiles_and_merge_matches_whole_network() {
        // Two tile records (routers 0..2 and 2..4 of a 4-router
        // network) reduced at their offsets must equal the same events
        // recorded into one full-size record — and `merge` must be
        // exactly `merge_shard` at offset 0 with a full-size record.
        let mut tile0 = NetworkStats::new(2, 1, 64);
        tile0.packets_injected = 3;
        tile0.packets_delivered = 2;
        tile0.flits_delivered = 8;
        tile0.latency_sum = 40;
        tile0.latency_max = 25;
        tile0.measured_cycles = 100;
        tile0.router_activity[1].cycles = 100;
        tile0.idle_histograms[0][2].record(5);
        tile0.gating[1].sleep_entries = 7;
        let mut tile1 = NetworkStats::new(2, 1, 64);
        tile1.packets_injected = 1;
        tile1.packets_delivered = 1;
        tile1.flits_delivered = 4;
        tile1.latency_sum = 10;
        tile1.latency_max = 10;
        tile1.measured_cycles = 100;
        tile1.router_activity[0].cycles = 50;
        tile1.idle_histograms[1][0].record_open(9);

        let mut reduced = NetworkStats::new(4, 1, 64);
        reduced.merge_shard(&tile0, 0);
        reduced.merge_shard(&tile1, 2);

        let mut whole = NetworkStats::new(4, 1, 64);
        whole.packets_injected = 4;
        whole.packets_delivered = 3;
        whole.flits_delivered = 12;
        whole.latency_sum = 50;
        whole.latency_max = 25;
        whole.measured_cycles = 100;
        whole.router_activity[1].cycles = 100;
        whole.router_activity[2].cycles = 50;
        whole.idle_histograms[0][2].record(5);
        whole.idle_histograms[3][0].record_open(9);
        whole.gating[1].sleep_entries = 7;
        assert_eq!(reduced, whole);

        // Same-size merge is the offset-0 special case.
        let mut via_merge = NetworkStats::new(4, 1, 64);
        via_merge.merge(&whole);
        assert_eq!(via_merge, whole);
    }

    #[test]
    #[should_panic(expected = "exceeds the network")]
    fn merge_shard_rejects_overhanging_tiles() {
        let mut net = NetworkStats::new(4, 1, 64);
        let tile = NetworkStats::new(2, 1, 64);
        net.merge_shard(&tile, 3);
    }

    #[test]
    fn latency_math() {
        let mut s = NetworkStats::new(1, 1, 8);
        s.packets_delivered = 4;
        s.latency_sum = 40;
        assert!((s.avg_latency() - 10.0).abs() < 1e-12);
    }
}
