//! Parallel-execution plumbing for the tile-sharded kernel: the
//! double-buffered boundary mailboxes and the phase barrier.
//!
//! A sharded cycle has exactly two phases per shard (see the module
//! docs of [`crate::sim`] for the full determinism argument):
//!
//! 1. **compute** — inject, step the tile's active set, apply every
//!    tile-local transfer, and *stage* each cross-tile effect (a flit
//!    arrival at a boundary router, or a credit returning to an
//!    upstream lane) into the outbox for the owning shard;
//! 2. **exchange** — after the barrier, drain the inboxes (senders in
//!    ascending shard order) and apply their effects to tile-local
//!    state.
//!
//! Mailboxes are **double-buffered by cycle parity**, which is what
//! makes a *single* barrier per cycle sufficient: while shard `B` is
//! still draining parity-0 boxes for cycle `c`, shard `A` may already
//! be filling parity-1 boxes for cycle `c + 1` — the barrier between
//! compute and exchange guarantees `B`'s previous drain of the
//! parity-1 box (in cycle `c − 1`) happened before `A`'s refill.
//!
//! Each box is `Mutex`-wrapped, but the lock is taken once per shard
//! per cycle to *swap* a whole staged batch in (or out), never per
//! message — and batches are exchanged by `mem::swap`, so the Vec
//! capacities warm up once and the steady-state loop performs no
//! allocation. Capacities are fixed by construction: a directed tile
//! edge can carry at most one flit per boundary link and one credit
//! per reverse boundary link per cycle ([`TileMap::boundary_links`]).

use crate::topology::TileMap;
use crate::traffic::Flit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// One cross-tile effect, applied by the owning shard in the exchange
/// phase.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BoundaryMsg {
    /// A flit crossing a tile boundary: accept it at router `rid`'s
    /// input `port` (a [`crate::topology::Direction`] index).
    Arrival {
        /// Destination router (global id, owned by the receiving shard).
        rid: u32,
        /// Input port direction index at the destination router.
        port: u8,
        /// The flit itself (`flit.vc` names the input VC buffer).
        flit: Flit,
    },
    /// A credit returning to an upstream output lane owned by the
    /// receiving shard (global lane index `router * 5V + port * V +
    /// vc`).
    Credit {
        /// Global output-lane index of the lane regaining a credit.
        lane: u64,
    },
}

/// All boundary mailboxes of a tiled run: one double-buffered box per
/// directed tile adjacency.
#[derive(Debug)]
pub(crate) struct Mailboxes {
    /// `boxes[i][parity]` — the two parity buffers of directed edge `i`.
    boxes: Vec<[Mutex<Vec<BoundaryMsg>>; 2]>,
    /// Per receiving shard: `(sender shard, box index)`, ascending by
    /// sender — the documented deterministic drain order.
    inboxes: Vec<Vec<(usize, usize)>>,
    /// Per sending shard: `(destination shard, box index)`, ascending
    /// by destination.
    outboxes: Vec<Vec<(usize, usize)>>,
}

impl Mailboxes {
    /// Builds the mailbox set for a tile partition, pre-sizing each box
    /// to its fixed per-cycle message budget.
    pub fn new(tiles: &TileMap) -> Mailboxes {
        let shards = tiles.shards();
        let mut boxes = Vec::new();
        let mut inboxes = vec![Vec::new(); shards];
        let mut outboxes = vec![Vec::new(); shards];
        for (sender, outbox) in outboxes.iter_mut().enumerate() {
            for dst in tiles.neighbors(sender) {
                // One flit per boundary link plus one credit per
                // reverse boundary link, per cycle.
                let cap = tiles.boundary_links(sender, dst) + tiles.boundary_links(dst, sender);
                let idx = boxes.len();
                boxes.push([
                    Mutex::new(Vec::with_capacity(cap)),
                    Mutex::new(Vec::with_capacity(cap)),
                ]);
                outbox.push((dst, idx));
                inboxes[dst].push((sender, idx));
            }
        }
        for inbox in &mut inboxes {
            inbox.sort_unstable();
        }
        Mailboxes {
            boxes,
            inboxes,
            outboxes,
        }
    }

    /// The outboxes of shard `s`: `(destination, box index)` pairs.
    pub fn outboxes(&self, s: usize) -> &[(usize, usize)] {
        &self.outboxes[s]
    }

    /// The inboxes of shard `s`: `(sender, box index)` pairs, ascending
    /// by sender — drain in this order.
    pub fn inboxes(&self, s: usize) -> &[(usize, usize)] {
        &self.inboxes[s]
    }

    /// Sender side: swaps the staged batch into the parity box (which
    /// must be empty — its receiver drained it two cycles ago) and
    /// hands the drained-empty Vec back as the next staging buffer.
    pub fn send(&self, box_idx: usize, parity: usize, staged: &mut Vec<BoundaryMsg>) {
        let mut slot = self.boxes[box_idx][parity]
            .lock()
            .expect("mailbox poisoned");
        debug_assert!(slot.is_empty(), "mailbox parity buffer not yet drained");
        std::mem::swap(&mut *slot, staged);
    }

    /// Receiver side: swaps the parity box's contents out into `into`
    /// (which must be empty), leaving the box empty for its sender.
    pub fn receive(&self, box_idx: usize, parity: usize, into: &mut Vec<BoundaryMsg>) {
        debug_assert!(into.is_empty());
        let mut slot = self.boxes[box_idx][parity]
            .lock()
            .expect("mailbox poisoned");
        std::mem::swap(&mut *slot, into);
    }
}

/// Per-shard, parity-indexed progress slots: written by each shard at
/// the end of its compute phase, read by every shard after the barrier
/// to take the *same* global watchdog decision. Parity indexing keeps
/// a shard's cycle-`c + 1` store from racing a peer's cycle-`c` read.
#[derive(Debug, Default)]
pub(crate) struct ShardSlots {
    /// Transfers applied plus source-queue flits drained this cycle.
    pub progress: [AtomicU64; 2],
    /// Flits buffered in this shard's routers at the end of compute.
    pub buffered: [AtomicU64; 2],
}

impl ShardSlots {
    /// Publishes this shard's compute-phase outcome for `parity`.
    pub fn publish(&self, parity: usize, progress: u64, buffered: u64) {
        // Relaxed is enough: the phase barrier orders these stores
        // before every peer's reads.
        self.progress[parity].store(progress, Ordering::Relaxed);
        self.buffered[parity].store(buffered, Ordering::Relaxed);
    }

    /// Reads a shard's published progress for `parity`.
    pub fn read_progress(&self, parity: usize) -> u64 {
        self.progress[parity].load(Ordering::Relaxed)
    }

    /// Reads a shard's published buffered-flit count for `parity`.
    pub fn read_buffered(&self, parity: usize) -> u64 {
        self.buffered[parity].load(Ordering::Relaxed)
    }
}

/// A sense-reversing spin barrier for the per-cycle phase handoff.
///
/// `std::sync::Barrier` parks threads through a mutex/condvar pair —
/// microseconds per crossing, paid once per cycle. This barrier spins
/// briefly and then yields, which keeps the crossing in the
/// sub-microsecond range when every worker has its own core and
/// degrades gracefully (to yields) when workers share cores.
///
/// A worker that panics poisons the barrier from its unwind guard, so
/// peers spin-waiting on it panic too instead of hanging the run.
#[derive(Debug)]
pub(crate) struct PhaseBarrier {
    n: u64,
    count: AtomicU64,
    generation: AtomicU64,
    poisoned: AtomicBool,
}

impl PhaseBarrier {
    /// A barrier for `n` participating workers.
    pub fn new(n: usize) -> PhaseBarrier {
        PhaseBarrier {
            n: n as u64,
            count: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Marks the barrier poisoned (a peer is unwinding).
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
    }

    /// Blocks until all `n` workers have arrived.
    ///
    /// # Panics
    ///
    /// Panics if a peer poisons the barrier while this worker waits.
    pub fn wait(&self) {
        if self.n == 1 {
            return;
        }
        let gen = self.generation.load(Ordering::SeqCst);
        if self.count.fetch_add(1, Ordering::SeqCst) + 1 == self.n {
            // Last arriver: reset the count *before* releasing the
            // generation, so early re-arrivers of the next phase start
            // from zero.
            self.count.store(0, Ordering::SeqCst);
            self.generation.fetch_add(1, Ordering::SeqCst);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::SeqCst) == gen {
                if self.poisoned.load(Ordering::Relaxed) {
                    panic!("a peer shard worker panicked; aborting this worker");
                }
                spins = spins.saturating_add(1);
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Poisons the barrier if the owning worker unwinds, so peers abort
/// instead of spinning forever on a barrier that will never fill.
#[derive(Debug)]
pub(crate) struct PoisonGuard<'a>(pub &'a PhaseBarrier);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Mesh;

    #[test]
    fn mailbox_roundtrip_preserves_order_and_capacity() {
        let tiles = TileMap::new(&Mesh::new(4, 4), 2);
        let mail = Mailboxes::new(&tiles);
        assert_eq!(mail.outboxes(0), &[(1, 0)]);
        assert_eq!(mail.inboxes(1), &[(0, 0)]);
        // One flit per boundary link + one credit per reverse link:
        // a 4-wide two-band mesh pre-sizes each box to 8 messages.
        let box_cap = tiles.boundary_links(0, 1) + tiles.boundary_links(1, 0);
        assert_eq!(box_cap, 8);
        let mut staged = vec![
            BoundaryMsg::Credit { lane: 7 },
            BoundaryMsg::Credit { lane: 9 },
        ];
        mail.send(0, 0, &mut staged);
        // The sender gets the box's pre-sized empty buffer back as its
        // next staging buffer — swap, not clone/realloc.
        assert!(staged.is_empty());
        assert!(
            staged.capacity() >= box_cap,
            "send must swap in the pre-sized buffer, got capacity {}",
            staged.capacity()
        );
        let mut drained = Vec::new();
        mail.receive(0, 0, &mut drained);
        assert_eq!(drained.len(), 2);
        assert!(matches!(drained[0], BoundaryMsg::Credit { lane: 7 }));
        assert!(matches!(drained[1], BoundaryMsg::Credit { lane: 9 }));
        // Steady state: the receiver's drained buffer is cleared and
        // reused; a second round trip must preserve its allocation
        // (the box is empty again, so the debug assert in send holds).
        let warmed_ptr = drained.as_ptr();
        let warmed_cap = drained.capacity();
        drained.clear();
        mail.send(0, 0, &mut drained);
        mail.receive(0, 0, &mut drained);
        assert!(drained.is_empty());
        assert_eq!(
            (drained.as_ptr(), drained.capacity()),
            (warmed_ptr, warmed_cap),
            "round trips must recycle the same buffer, not reallocate"
        );
    }

    #[test]
    fn torus_bands_get_wraparound_mailboxes() {
        let tiles = TileMap::new(&Mesh::torus(4, 8), 4);
        let mail = Mailboxes::new(&tiles);
        // Shard 0 talks to 1 (south edge) and 3 (wrap edge).
        let dsts: Vec<usize> = mail.outboxes(0).iter().map(|&(d, _)| d).collect();
        assert_eq!(dsts, vec![1, 3]);
        let senders: Vec<usize> = mail.inboxes(0).iter().map(|&(s, _)| s).collect();
        assert_eq!(senders, vec![1, 3]);
    }

    #[test]
    fn barrier_synchronizes_workers() {
        use std::sync::atomic::AtomicUsize;
        let barrier = PhaseBarrier::new(4);
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for round in 1..=50usize {
                        hits.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        // After the barrier every worker of this round
                        // has contributed.
                        assert!(hits.load(Ordering::SeqCst) >= round * 4);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn poisoned_barrier_panics_waiters() {
        let barrier = PhaseBarrier::new(2);
        barrier.poison();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            barrier.wait();
        }));
        assert!(caught.is_err(), "waiting on a poisoned barrier must abort");
    }
}
