//! Boundary-message plumbing for the tile-sharded kernel: what crosses
//! a tile edge, and how the per-edge mailboxes are wired up.
//!
//! A sharded cycle has exactly two phases per shard (see the module
//! docs of [`crate::sim`] for the full determinism argument):
//!
//! 1. **compute** — inject, step the tile's active set, apply every
//!    tile-local transfer, and *stage* each cross-tile effect (a flit
//!    arrival at a boundary router, or a credit returning to an
//!    upstream lane) into the outbox for the owning shard;
//! 2. **exchange** — after the barrier, drain the inboxes (senders in
//!    ascending shard order) and apply their effects to tile-local
//!    state.
//!
//! The synchronization primitives themselves — the double-buffered
//! [`Mailboxes`], the parity-indexed [`crate::sync::ShardSlots`], and
//! the sense-reversing [`crate::sync::SpinBarrier`] — live behind the
//! [`crate::sync`] facade, where every memory ordering carries its
//! invariant and the `model` feature's schedule explorer proves the
//! protocol correct (see the "Correctness tooling" section of the
//! README). This module only owns what is specific to the NoC: the
//! [`BoundaryMsg`] payload and the tile-adjacency wiring.

use crate::sync::Mailboxes;
use crate::topology::TileMap;
use crate::traffic::Flit;

/// One cross-tile effect, applied by the owning shard in the exchange
/// phase.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BoundaryMsg {
    /// A flit crossing a tile boundary: accept it at router `rid`'s
    /// input `port` (a [`crate::topology::Direction`] index).
    Arrival {
        /// Destination router (global id, owned by the receiving shard).
        rid: u32,
        /// Input port direction index at the destination router.
        port: u8,
        /// The flit itself (`flit.vc` names the input VC buffer).
        flit: Flit,
    },
    /// A credit returning to an upstream output lane owned by the
    /// receiving shard (global lane index `router * 5V + port * V +
    /// vc`).
    Credit {
        /// Global output-lane index of the lane regaining a credit.
        lane: u64,
    },
}

/// Builds the boundary mailbox set for a tile partition: one
/// double-buffered box per directed tile adjacency, pre-sized to its
/// fixed per-cycle message budget.
///
/// Capacities are fixed by construction: a directed tile edge can
/// carry at most one flit per boundary link and one credit per reverse
/// boundary link per cycle ([`TileMap::boundary_links`]). Edges are
/// emitted in ascending `(sender, destination)` order — the documented
/// deterministic drain order ([`Mailboxes::inboxes`]).
pub(crate) fn boundary_mailboxes(tiles: &TileMap) -> Mailboxes<BoundaryMsg> {
    let shards = tiles.shards();
    let mut edges = Vec::new();
    for sender in 0..shards {
        for dst in tiles.neighbors(sender) {
            // One flit per boundary link plus one credit per reverse
            // boundary link, per cycle.
            let cap = tiles.boundary_links(sender, dst) + tiles.boundary_links(dst, sender);
            edges.push((sender, dst, cap));
        }
    }
    Mailboxes::from_edges(shards, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Mesh;

    #[test]
    fn mailbox_roundtrip_preserves_order_and_capacity() {
        let tiles = TileMap::new(&Mesh::new(4, 4), 2);
        let mail = boundary_mailboxes(&tiles);
        assert_eq!(mail.outboxes(0), &[(1, 0)]);
        assert_eq!(mail.inboxes(1), &[(0, 0)]);
        // One flit per boundary link + one credit per reverse link:
        // a 4-wide two-band mesh pre-sizes each box to 8 messages.
        let box_cap = tiles.boundary_links(0, 1) + tiles.boundary_links(1, 0);
        assert_eq!(box_cap, 8);
        let mut staged = vec![
            BoundaryMsg::Credit { lane: 7 },
            BoundaryMsg::Credit { lane: 9 },
        ];
        mail.send(0, 0, &mut staged);
        // The sender gets the box's pre-sized empty buffer back as its
        // next staging buffer — swap, not clone/realloc.
        assert!(staged.is_empty());
        assert!(
            staged.capacity() >= box_cap,
            "send must swap in the pre-sized buffer, got capacity {}",
            staged.capacity()
        );
        let mut drained = Vec::new();
        mail.receive(0, 0, &mut drained);
        assert_eq!(drained.len(), 2);
        assert!(matches!(drained[0], BoundaryMsg::Credit { lane: 7 }));
        assert!(matches!(drained[1], BoundaryMsg::Credit { lane: 9 }));
        // Steady state: the receiver's drained buffer is cleared and
        // reused; a second round trip must preserve its allocation
        // (the box is empty again, so the debug assert in send holds).
        let warmed_ptr = drained.as_ptr();
        let warmed_cap = drained.capacity();
        drained.clear();
        mail.send(0, 0, &mut drained);
        mail.receive(0, 0, &mut drained);
        assert!(drained.is_empty());
        assert_eq!(
            (drained.as_ptr(), drained.capacity()),
            (warmed_ptr, warmed_cap),
            "round trips must recycle the same buffer, not reallocate"
        );
    }

    #[test]
    fn torus_bands_get_wraparound_mailboxes() {
        let tiles = TileMap::new(&Mesh::torus(4, 8), 4);
        let mail = boundary_mailboxes(&tiles);
        // Shard 0 talks to 1 (south edge) and 3 (wrap edge).
        let dsts: Vec<usize> = mail.outboxes(0).iter().map(|&(d, _)| d).collect();
        assert_eq!(dsts, vec![1, 3]);
        let senders: Vec<usize> = mail.inboxes(0).iter().map(|&(s, _)| s).collect();
        assert_eq!(senders, vec![1, 3]);
    }
}
