//! Calendar-queue time wheel for the event-driven kernel.
//!
//! [`TimeWheel`] holds at most one pending wake per router — the next
//! predicted injection arrival — keyed by absolute cycle. The hot
//! operations are O(1): scheduling into the slot ring, draining the
//! events due at the current cycle, and (via an occupancy bitmap)
//! finding the next scheduled cycle so the kernel knows how far it may
//! leap. Events beyond the ring's window park in an overflow list and
//! are folded back in when the window advances — the classic calendar
//! queue, sized so overflow is the rare case at simulation rates.
//!
//! Everything here is deterministic: slot order is canonicalized by
//! sorting drained ids, there is no hashing and no wall clock, so the
//! wheel never perturbs the bit-identical-stats contract.

use std::fmt;

/// Slot-ring length (cycles representable without overflow). A power
/// of two so slot arithmetic is a mask. At the low injection rates the
/// event kernel targets, mean arrival gaps are `1/rate` cycles —
/// 4096 covers rates down to ~2.5e-4 without touching overflow.
const SLOTS: usize = 4096;

/// A calendar queue over absolute cycles, holding `u32` event ids
/// (local router indices for the event kernel).
pub(crate) struct TimeWheel {
    /// Cycle of slot 0. Advances monotonically on rebase.
    base: u64,
    /// Lower bound on schedulable cycles: everything below has been
    /// drained. Draining cycle `c` raises the floor to `c + 1`.
    floor: u64,
    /// Event lists, slot `i` holding cycle `base + i`.
    slots: Vec<Vec<u32>>,
    /// Occupancy bitmap over slots (bit set ⇔ slot non-empty), so
    /// next-event queries scan 64 slots per word instead of one Vec
    /// emptiness check per slot.
    occ: Vec<u64>,
    /// Events at cycles `≥ base + SLOTS`, folded in on rebase.
    overflow: Vec<(u64, u32)>,
    /// Earliest overflow cycle (`u64::MAX` when empty), so the
    /// next-event query never scans the overflow list.
    overflow_min: u64,
    /// Total events currently scheduled.
    scheduled: usize,
}

impl fmt::Debug for TimeWheel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimeWheel")
            .field("base", &self.base)
            .field("floor", &self.floor)
            .field("scheduled", &self.scheduled)
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

impl TimeWheel {
    /// An empty wheel whose window starts at `now` (the first
    /// schedulable cycle).
    pub(crate) fn new(now: u64) -> Self {
        TimeWheel {
            base: now,
            floor: now,
            slots: vec![Vec::new(); SLOTS],
            occ: vec![0; SLOTS / 64],
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            scheduled: 0,
        }
    }

    /// Events currently scheduled.
    pub(crate) fn len(&self) -> usize {
        self.scheduled
    }

    /// Schedules event `id` at absolute `cycle`.
    ///
    /// `cycle` must be at or above the floor (nothing may be scheduled
    /// into the drained past).
    pub(crate) fn schedule(&mut self, cycle: u64, id: u32) {
        debug_assert!(
            cycle >= self.floor,
            "scheduling into the drained past: cycle {cycle} < floor {}",
            self.floor
        );
        self.scheduled += 1;
        match usize::try_from(cycle - self.base) {
            Ok(i) if i < SLOTS => {
                self.slots[i].push(id);
                self.occ[i / 64] |= 1u64 << (i % 64);
            }
            _ => {
                self.overflow.push((cycle, id));
                self.overflow_min = self.overflow_min.min(cycle);
            }
        }
    }

    /// Removes every event due at exactly `cycle`, appending the ids to
    /// `out` in ascending order, and raises the floor past `cycle`.
    /// Cycles must be drained in nondecreasing order.
    pub(crate) fn drain_due(&mut self, cycle: u64, out: &mut Vec<u32>) {
        debug_assert!(cycle >= self.floor, "draining cycles out of order");
        if self.overflow_min <= cycle || cycle - self.base >= SLOTS as u64 {
            // The clock reached (or leapt past) the window's edge; pull
            // the window forward so due and future events are
            // slot-resident. Rebasing to the drained cycle keeps
            // `base ≤ floor`, so later schedules never land below the
            // window. (The floor rises only afterwards: rebasing
            // re-schedules events due at `cycle` itself.)
            self.rebase(cycle);
        }
        self.floor = cycle + 1;
        if let Ok(i) = usize::try_from(cycle - self.base) {
            if i < SLOTS && self.occ[i / 64] & (1u64 << (i % 64)) != 0 {
                self.occ[i / 64] &= !(1u64 << (i % 64));
                let start = out.len();
                out.append(&mut self.slots[i]);
                self.scheduled -= out.len() - start;
                // Canonical firing order regardless of insertion order.
                out[start..].sort_unstable();
            }
        }
    }

    /// The earliest scheduled cycle at or after `from`, if any.
    pub(crate) fn next_event(&self, from: u64) -> Option<u64> {
        if self.scheduled == 0 {
            return None;
        }
        let lo = from.max(self.base);
        if let Ok(i0) = usize::try_from(lo - self.base) {
            if i0 < SLOTS {
                if let Some(i) = self.scan_occupied(i0) {
                    let hit = self.base + i as u64;
                    // An occupied slot below `from` would mean undrained
                    // past events — the drain order contract forbids it.
                    debug_assert!(hit >= from);
                    return Some(hit);
                }
            }
        }
        if self.overflow_min == u64::MAX {
            return None;
        }
        // Every slot-resident event has been ruled out, so the answer
        // is the overflow minimum (always past the window, hence past
        // any slot hit; `drain_due` keeps it out of the drained past).
        debug_assert!(self.overflow_min >= from, "undrained overflow events");
        Some(self.overflow_min)
    }

    /// First occupied slot index `≥ i0`, via the occupancy bitmap.
    fn scan_occupied(&self, i0: usize) -> Option<usize> {
        let mut w = i0 / 64;
        let mut word = self.occ[w] & (!0u64 << (i0 % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= self.occ.len() {
                return None;
            }
            word = self.occ[w];
        }
    }

    /// Moves the window so slot 0 is `new_base`, re-slotting every live
    /// event. O(live events + SLOTS); called only when the schedule
    /// outruns the window, which the event kernel's horizon caps make
    /// rare.
    fn rebase(&mut self, new_base: u64) {
        debug_assert!(new_base >= self.base, "the window only moves forward");
        let mut live: Vec<(u64, u32)> = std::mem::take(&mut self.overflow);
        for w in 0..self.occ.len() {
            let mut word = std::mem::take(&mut self.occ[w]);
            while word != 0 {
                let i = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let cy = self.base + i as u64;
                debug_assert!(cy >= new_base, "rebasing past a live event");
                live.extend(self.slots[i].drain(..).map(|id| (cy, id)));
            }
        }
        self.base = new_base;
        self.overflow_min = u64::MAX;
        self.scheduled -= live.len();
        for (cy, id) in live {
            self.schedule(cy, id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Model oracle: a plain sorted list of (cycle, id) pairs.
    #[derive(Default)]
    struct Model {
        events: Vec<(u64, u32)>,
    }

    impl Model {
        fn schedule(&mut self, cycle: u64, id: u32) {
            self.events.push((cycle, id));
        }
        fn drain_due(&mut self, cycle: u64) -> Vec<u32> {
            let mut due: Vec<u32> = self
                .events
                .iter()
                .filter(|&&(c, _)| c == cycle)
                .map(|&(_, id)| id)
                .collect();
            due.sort_unstable();
            self.events.retain(|&(c, _)| c != cycle);
            due
        }
        fn next_event(&self, from: u64) -> Option<u64> {
            self.events
                .iter()
                .map(|&(c, _)| c)
                .filter(|&c| c >= from)
                .min()
        }
    }

    #[test]
    fn drains_in_ascending_id_order() {
        let mut w = TimeWheel::new(0);
        w.schedule(5, 9);
        w.schedule(5, 2);
        w.schedule(5, 7);
        let mut out = Vec::new();
        w.drain_due(5, &mut out);
        assert_eq!(out, vec![2, 7, 9]);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn next_event_scans_past_empty_slots() {
        let mut w = TimeWheel::new(100);
        w.schedule(100, 1);
        w.schedule(103, 2);
        w.schedule(4000, 3);
        assert_eq!(w.next_event(100), Some(100));
        let mut out = Vec::new();
        w.drain_due(100, &mut out);
        assert_eq!(w.next_event(101), Some(103));
        out.clear();
        w.drain_due(103, &mut out);
        assert_eq!(out, vec![2]);
        assert_eq!(w.next_event(104), Some(4000));
    }

    #[test]
    fn overflow_events_come_back_on_rebase() {
        let mut w = TimeWheel::new(0);
        // Far beyond the slot window: must park in overflow…
        w.schedule(3 * SLOTS as u64, 7);
        w.schedule(10 * SLOTS as u64 + 5, 8);
        assert_eq!(w.len(), 2);
        // …and surface exactly through the next-event query.
        assert_eq!(w.next_event(0), Some(3 * SLOTS as u64));
        let mut out = Vec::new();
        w.drain_due(3 * SLOTS as u64, &mut out);
        assert_eq!(out, vec![7]);
        assert_eq!(
            w.next_event(3 * SLOTS as u64 + 1),
            Some(10 * SLOTS as u64 + 5)
        );
        out.clear();
        w.drain_due(10 * SLOTS as u64 + 5, &mut out);
        assert_eq!(out, vec![8]);
        assert_eq!(w.len(), 0);
        assert_eq!(w.next_event(0), None);
    }

    #[test]
    fn drain_through_overflow_without_query() {
        // A drain may land directly on an overflow cycle (the kernel
        // steps cycle by cycle through a congested span).
        let mut w = TimeWheel::new(0);
        let far = SLOTS as u64 + 17;
        w.schedule(far, 4);
        let mut out = Vec::new();
        w.drain_due(far, &mut out);
        assert_eq!(out, vec![4]);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn matches_model_on_mixed_schedule() {
        // Deterministic pseudo-random workload (LCG — no wall clocks,
        // no external entropy) interleaving schedules, drains and
        // queries, checked against the sorted-list oracle.
        let mut w = TimeWheel::new(0);
        let mut m = Model::default();
        let mut state = 0x2545f4914f6cdd1du64;
        let mut lcg = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut now = 0u64;
        let mut out = Vec::new();
        for step in 0..20_000u32 {
            if lcg() % 3 > 0 {
                let cycle = now + lcg() % (SLOTS as u64 * 3);
                w.schedule(cycle, step);
                m.schedule(cycle, step);
            }
            assert_eq!(w.next_event(now), m.next_event(now), "query at {now}");
            out.clear();
            w.drain_due(now, &mut out);
            assert_eq!(out, m.drain_due(now), "drain at {now}");
            assert_eq!(w.len(), m.events.len());
            // Advance one cycle, or leap — like the kernel, never past
            // a scheduled event (cycles must be drained in order).
            let gap = match lcg() % 13 {
                0 => 1 + lcg() % (SLOTS as u64 * 2),
                _ => 1 + lcg() % 3,
            };
            let mut target = now + gap;
            if let Some(e) = w.next_event(now + 1) {
                target = target.min(e);
            }
            now = target;
        }
    }
}
