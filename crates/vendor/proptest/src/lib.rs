//! Offline mini-proptest.
//!
//! Supports the `proptest!` surface this workspace uses: range strategies
//! over the numeric primitives, `collection::vec`, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, and `ProptestConfig::with_cases`.
//! Cases are generated deterministically from a seed derived from the test
//! name, so failures are reproducible run-to-run. There is no shrinking —
//! the failure message reports the case number and the assertion text
//! instead.

/// Strategies: how to draw a random value of some type.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of random values for one macro parameter.
    pub trait Strategy {
        /// The value type drawn.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty strategy range");
                        let span = (self.end - self.start) as u128;
                        let r = (rng.next_u64() as u128 * span) >> 64;
                        self.start + r as $t
                    }
                }
            )*
        };
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            let span = (self.end - self.start) as u128;
            self.start + ((rng.next_u64() as u128 * span) >> 64) as usize
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Builds a [`VecStrategy`] with a fixed or ranged length.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner plumbing used by the generated test bodies.
pub mod test_runner {
    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// An assertion failed; the property is falsified.
        Fail(String),
    }

    /// Deterministic generator (SplitMix64) for case inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name and case index (stable across runs).
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15)),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// The upstream-compatible prelude.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares deterministic property tests, proptest-style.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rejected: u32 = 0;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected <= 16 * config.cases,
                                "too many prop_assume! rejections in {}",
                                stringify!($name)
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} falsified at case {case}: {msg}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $( $arg in $strat ),+ ) $body
            )*
        }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Skips the current case when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 2.0f64..5.0, n in 1u64..100) {
            prop_assert!((2.0..5.0).contains(&x), "x = {x}");
            prop_assert!((1..100).contains(&n), "n = {n}");
        }

        #[test]
        fn vectors_have_requested_lengths(
            fixed in crate::collection::vec(0.0f64..1.0, 7),
            ranged in crate::collection::vec(0u64..10, 2..5),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((2..5).contains(&ranged.len()));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0.0f64..1.0) {
            prop_assume!(a < 0.9);
            prop_assert!(a < 0.9);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let draw = || {
            let mut rng = crate::test_runner::TestRng::for_case("demo", 3);
            (0.0f64..1.0).sample(&mut rng)
        };
        assert_eq!(draw().to_bits(), draw().to_bits());
    }
}
