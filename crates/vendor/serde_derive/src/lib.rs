//! Offline mini-serde derive macros.
//!
//! Emits empty `Serialize` / `Deserialize` marker impls (see the `serde`
//! mini-crate). The item name is extracted with a small hand-rolled token
//! scan instead of `syn` (unavailable offline); generic items are rejected
//! with a clear compile error since nothing in the workspace derives serde
//! traits on generic types.

use proc_macro::{TokenStream, TokenTree};

/// Finds the identifier following the `struct` / `enum` / `union` keyword
/// and checks the item is not generic.
fn item_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("mini-serde derive: expected item name, got {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '<' {
                        panic!(
                            "mini-serde derive does not support generic types (deriving on `{name}`)"
                        );
                    }
                }
                return name;
            }
        }
    }
    panic!("mini-serde derive: no struct/enum/union found");
}

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
