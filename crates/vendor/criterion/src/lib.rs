//! Offline mini-criterion.
//!
//! A small statistical benchmark harness exposing the subset of the
//! criterion API this workspace uses (`bench_function`, `benchmark_group`,
//! `sample_size`, `criterion_group!` / `criterion_main!`). Each benchmark is
//! auto-calibrated so a sample lasts at least a few milliseconds, then
//! `sample_size` samples are timed and the median / min / max per-iteration
//! times reported. Results are also collected in-process so harness binaries
//! can export machine-readable baselines (see [`take_results`]).

use std::time::{Duration, Instant};

/// Re-export so existing `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// One finished benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function`).
    pub id: String,
    /// Median per-iteration time (ns).
    pub median_ns: f64,
    /// Fastest sample (ns/iter).
    pub min_ns: f64,
    /// Slowest sample (ns/iter).
    pub max_ns: f64,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
}

/// Drives a single benchmark's measurement loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    /// Minimum per-sample wall time the calibrator aims for.
    target_sample: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            target_sample: Duration::from_millis(5),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let target = self.target_sample;
        let result = run_bench(id.into(), f, sample_size, target);
        report(&result);
        self.results.push(result);
        self
    }

    /// Opens a named group (functions report as `group/function`).
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            prefix: name.into(),
            sample_size: None,
        }
    }

    /// Drains all results recorded so far (for JSON baseline export).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    prefix: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.prefix, id.into());
        let sample_size = self.sample_size.unwrap_or(self.parent.sample_size);
        let result = run_bench(full_id, f, sample_size, self.parent.target_sample);
        report(&result);
        self.parent.results.push(result);
        self
    }

    /// Ends the group (API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: String,
    mut f: F,
    sample_size: usize,
    target_sample: Duration,
) -> BenchResult {
    // Calibrate: grow the iteration count until one sample takes long
    // enough to be timed reliably.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= target_sample || iters >= 1 << 20 {
            break;
        }
        // Jump straight toward the target rather than doubling blindly.
        let per_iter = b.elapsed.as_secs_f64() / iters as f64;
        let needed = if per_iter > 0.0 {
            (target_sample.as_secs_f64() / per_iter).ceil() as u64
        } else {
            iters * 2
        };
        iters = needed
            .clamp(iters + 1, iters.saturating_mul(100))
            .min(1 << 20);
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = if per_iter_ns.len() % 2 == 1 {
        per_iter_ns[per_iter_ns.len() / 2]
    } else {
        0.5 * (per_iter_ns[per_iter_ns.len() / 2 - 1] + per_iter_ns[per_iter_ns.len() / 2])
    };
    BenchResult {
        id,
        median_ns: median,
        min_ns: per_iter_ns[0],
        max_ns: *per_iter_ns.last().expect("at least one sample"),
        iters_per_sample: iters,
        samples: per_iter_ns.len(),
    }
}

fn human(ns: f64) -> String {
    if ns < 1.0e3 {
        format!("{ns:.1} ns")
    } else if ns < 1.0e6 {
        format!("{:.2} µs", ns / 1.0e3)
    } else if ns < 1.0e9 {
        format!("{:.2} ms", ns / 1.0e6)
    } else {
        format!("{:.3} s", ns / 1.0e9)
    }
}

fn report(r: &BenchResult) {
    println!(
        "{:<48} time: [{} {} {}]  ({} samples × {} iters)",
        r.id,
        human(r.min_ns),
        human(r.median_ns),
        human(r.max_ns),
        r.samples,
        r.iters_per_sample
    );
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_fast() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let results = c.take_results();
        assert_eq!(results.len(), 1);
        assert!(results[0].median_ns > 0.0);
        assert!(results[0].min_ns <= results[0].median_ns);
        assert!(results[0].median_ns <= results[0].max_ns);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(3);
            g.bench_function("inner", |b| b.iter(|| black_box(3u32).pow(2)));
            g.finish();
        }
        let results = c.take_results();
        assert_eq!(results[0].id, "grp/inner");
        assert_eq!(results[0].samples, 3);
    }
}
