//! Offline mini-rayon.
//!
//! Implements the `into_par_iter()` / `par_iter()` → `map` → `collect` /
//! `for_each` surface on top of `std::thread::scope` with a shared work
//! queue, so call sites read exactly like upstream rayon and transparently
//! use every available core. Items are handed out one at a time (the
//! workloads here are coarse — whole circuit characterizations — so queue
//! contention is negligible) and results are re-assembled in input order.

use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Mutex;

thread_local! {
    /// Set while this thread is a worker of an enclosing parallel call.
    /// Nested calls then run serially instead of multiplying threads
    /// (this pool-less mini-rayon would otherwise spawn
    /// `available_parallelism` threads per nesting level).
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads a parallel call will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Order-preserving parallel map over owned items.
fn par_map_vec<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 || IN_PARALLEL_REGION.with(Cell::get) {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let out: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                IN_PARALLEL_REGION.with(|flag| flag.set(true));
                loop {
                    let job = queue.lock().expect("queue lock").pop_front();
                    match job {
                        Some((idx, item)) => {
                            let r = f(item);
                            out.lock().expect("result lock").push((idx, r));
                        }
                        None => break,
                    }
                }
            });
        }
    });
    let mut pairs = out.into_inner().expect("threads joined");
    pairs.sort_by_key(|(idx, _)| *idx);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// A collection of items about to be processed in parallel.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each item (lazily; work happens at `collect` / `for_each`).
    pub fn map<R, F>(self, f: F) -> ParMap<T, R, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _ = par_map_vec(self.items, &f);
    }
}

/// A parallel map pipeline awaiting execution.
#[derive(Debug)]
pub struct ParMap<T, R, F> {
    items: Vec<T>,
    f: F,
    _marker: std::marker::PhantomData<fn() -> R>,
}

impl<T, R, F> ParMap<T, R, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Executes the pipeline and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        par_map_vec(self.items, &self.f).into_iter().collect()
    }
}

/// Conversion into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Builds the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over borrowed items.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Builds the parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The upstream-compatible prelude.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..100).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| 2 * x).collect();
        assert_eq!(doubled, (0..100).map(|x| 2 * x).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_result_short_circuits_to_err() {
        let v: Vec<usize> = (0..10).collect();
        let r: Result<Vec<usize>, String> = v
            .into_par_iter()
            .map(|x| {
                if x == 7 {
                    Err("seven".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(r, Err("seven".to_string()));
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1.0f64, 2.0, 3.0];
        let sum: f64 = v.par_iter().map(|x| *x).collect::<Vec<_>>().iter().sum();
        assert!((sum - 6.0).abs() < 1e-12);
    }

    #[test]
    fn nested_parallel_calls_stay_serial_and_correct() {
        // The inner map must still produce correct, ordered results while
        // running serially on the outer call's worker threads.
        let outer: Vec<Vec<usize>> = (0..8usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|i| {
                (0..16usize)
                    .collect::<Vec<_>>()
                    .into_par_iter()
                    .map(move |j| i * 100 + j)
                    .collect()
            })
            .collect();
        for (i, inner) in outer.iter().enumerate() {
            assert_eq!(*inner, (0..16).map(|j| i * 100 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0..64).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }
}
