//! Offline mini-rand.
//!
//! Provides the slice of the `rand` API this workspace uses: a seedable
//! deterministic generator (`rngs::StdRng`, xoshiro256++ seeded through
//! SplitMix64) and the `Rng::{gen_range, gen_bool}` methods. Streams are
//! fully deterministic per seed, which is all the NoC simulator requires —
//! statistical quality of xoshiro256++ is more than adequate for synthetic
//! traffic generation.

use std::ops::Range;

/// Types that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform sample using the supplied 64-bit source.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange for Range<$t> {
                type Output = $t;
                fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                    assert!(self.start < self.end, "gen_range over empty range");
                    let span = (self.end - self.start) as u128;
                    // 128-bit multiply-shift keeps the modulo bias below
                    // 2^-64 — indistinguishable for simulation purposes.
                    let r = (next() as u128 * span) >> 64;
                    self.start + r as $t
                }
            }
        )*
    };
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f64 {
        let unit = (next() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// The subset of the upstream `Rng` trait the workspace uses.
pub trait Rng {
    /// The raw 64-bit source.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (the mini stand-in for the
    /// upstream ChaCha-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((18_000..22_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
