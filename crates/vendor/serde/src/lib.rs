//! Offline mini-serde.
//!
//! The real build environment has no network access, so this crate stands in
//! for serde with the minimal surface the workspace uses: the two traits as
//! markers, and the derive macros (which emit empty impls). Nothing in the
//! workspace serializes through serde at runtime — artifacts are written as
//! hand-formatted JSON/text — so marker impls are sufficient and keep every
//! `#[derive(Serialize, Deserialize)]` in the tree source-compatible with
//! upstream serde.

/// Marker for types that upstream serde could serialize.
pub trait Serialize {}

/// Marker for types that upstream serde could deserialize.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing (upstream blanket).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(
    (),
    bool,
    char,
    f32,
    f64,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    String,
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}
impl<T: Serialize> Serialize for std::sync::Arc<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {}
