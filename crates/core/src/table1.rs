//! The Table 1 pipeline: characterize all five schemes and present the
//! results exactly as the paper does, including the derived rows
//! (savings percentages, delay penalty) and the abstract's headline
//! ranges.

use crate::characterize::{Characterizer, SchemeCharacterization};
use crate::config::CrossbarConfig;
use crate::scheme::Scheme;
use lnoc_circuit::error::CircuitError;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One column of Table 1 (one scheme), in the paper's units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// The scheme.
    pub scheme: Scheme,
    /// High-to-low output delay (ps).
    pub delay_high_to_low_ps: f64,
    /// Low-to-high / pre-charge delay (ps).
    pub delay_low_to_high_ps: f64,
    /// Active leakage savings vs SC (fraction, e.g. 0.1013); `None` for
    /// the baseline itself.
    pub active_leakage_savings: Option<f64>,
    /// Standby leakage savings vs SC (fraction); `None` for the baseline.
    pub standby_leakage_savings: Option<f64>,
    /// Minimum idle time at the configured clock (cycles).
    pub min_idle_time_cycles: u32,
    /// Total crossbar power at the configured clock (mW).
    pub total_power_mw: f64,
    /// Delay penalty vs SC (fraction); `None` when there is none.
    pub delay_penalty: Option<f64>,
}

impl Table1Row {
    /// Worst of the two delays — the cycle-limiting number used for the
    /// delay-penalty row.
    pub fn worst_delay_ps(&self) -> f64 {
        self.delay_high_to_low_ps.max(self.delay_low_to_high_ps)
    }
}

/// A complete Table 1: five scheme columns plus underlying raw
/// characterizations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Columns in paper order (SC, DFC, DPC, SDFC, SDPC).
    pub rows: Vec<Table1Row>,
    /// The raw characterizations the rows were derived from (empty for
    /// [`Table1::paper_reference`]).
    pub raw: Vec<SchemeCharacterization>,
}

/// The headline ranges quoted in the paper's abstract.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbstractClaims {
    /// (min, max) active leakage savings across schemes.
    pub active_savings_range: (f64, f64),
    /// (min, max) standby leakage savings across schemes.
    pub standby_savings_range: (f64, f64),
    /// (min, max) delay penalty across schemes (0 = "No").
    pub delay_penalty_range: (f64, f64),
}

impl Table1 {
    /// Runs the full pipeline for every scheme under `cfg`, characterizing
    /// the five schemes concurrently (they are independent circuits
    /// sharing only read-only model cards).
    ///
    /// This is the expensive call: ~25 transients and ~30 DC solves.
    ///
    /// # Errors
    ///
    /// Propagates the first solver failure.
    pub fn generate(cfg: &CrossbarConfig) -> Result<Table1, CircuitError> {
        let ch = Characterizer::new(cfg);
        let raw: Result<Vec<_>, CircuitError> = Scheme::ALL
            .into_par_iter()
            .map(|scheme| ch.characterize(scheme))
            .collect();
        Ok(Self::from_characterizations(raw?))
    }

    /// [`Table1::generate`] without any parallelism — the measured
    /// baseline for the characterization benches, and a fallback for
    /// memory-constrained hosts.
    ///
    /// # Errors
    ///
    /// Propagates the first solver failure.
    pub fn generate_serial(cfg: &CrossbarConfig) -> Result<Table1, CircuitError> {
        let ch = Characterizer::new(cfg);
        let mut raw = Vec::with_capacity(Scheme::ALL.len());
        for scheme in Scheme::ALL {
            raw.push(ch.characterize(scheme)?);
        }
        Ok(Self::from_characterizations(raw))
    }

    /// Derives the paper-style rows from raw characterizations.
    ///
    /// # Panics
    ///
    /// Panics if `raw` does not contain the SC baseline.
    pub fn from_characterizations(raw: Vec<SchemeCharacterization>) -> Table1 {
        let sc = raw
            .iter()
            .find(|c| c.scheme == Scheme::Sc)
            .expect("characterizations must include the SC baseline");
        let sc_worst_delay = sc.delay_high_to_low.0.max(sc.delay_low_to_high.0);
        let rows = raw
            .iter()
            .map(|c| {
                let is_baseline = c.scheme.is_baseline();
                let worst = c.delay_high_to_low.0.max(c.delay_low_to_high.0);
                let penalty = (worst / sc_worst_delay - 1.0).max(0.0);
                Table1Row {
                    scheme: c.scheme,
                    delay_high_to_low_ps: c.delay_high_to_low.0 * 1.0e12,
                    delay_low_to_high_ps: c.delay_low_to_high.0 * 1.0e12,
                    active_leakage_savings: (!is_baseline)
                        .then(|| 1.0 - c.active_leakage.0 / sc.active_leakage.0),
                    standby_leakage_savings: (!is_baseline)
                        .then(|| 1.0 - c.standby_leakage.0 / sc.standby_leakage.0),
                    min_idle_time_cycles: c.min_idle_time_cycles,
                    total_power_mw: c.total_power.0 * 1.0e3,
                    delay_penalty: (!is_baseline && penalty > 1.0e-3).then_some(penalty),
                }
            })
            .collect();
        Table1 { rows, raw }
    }

    /// The paper's published Table 1, for side-by-side comparison.
    pub fn paper_reference() -> Table1 {
        let mk = |scheme,
                  hl: f64,
                  lh: f64,
                  act: Option<f64>,
                  stb: Option<f64>,
                  mit: u32,
                  power: f64,
                  pen: Option<f64>| Table1Row {
            scheme,
            delay_high_to_low_ps: hl,
            delay_low_to_high_ps: lh,
            active_leakage_savings: act,
            standby_leakage_savings: stb,
            min_idle_time_cycles: mit,
            total_power_mw: power,
            delay_penalty: pen,
        };
        Table1 {
            rows: vec![
                mk(Scheme::Sc, 61.40, 54.87, None, None, 3, 182.81, None),
                mk(
                    Scheme::Dfc,
                    51.87,
                    58.17,
                    Some(0.1013),
                    Some(0.1236),
                    2,
                    154.07,
                    None,
                ),
                mk(
                    Scheme::Dpc,
                    53.08,
                    61.25,
                    Some(0.437),
                    Some(0.9368),
                    1,
                    180.45,
                    None,
                ),
                mk(
                    Scheme::Sdfc,
                    62.81,
                    64.28,
                    Some(0.4209),
                    Some(0.4391),
                    3,
                    122.18,
                    Some(0.0469),
                ),
                mk(
                    Scheme::Sdpc,
                    54.90,
                    62.80,
                    Some(0.6357),
                    Some(0.9596),
                    1,
                    168.55,
                    Some(0.0228),
                ),
            ],
            raw: Vec::new(),
        }
    }

    /// Looks up a scheme's column.
    pub fn row(&self, scheme: Scheme) -> Option<&Table1Row> {
        self.rows.iter().find(|r| r.scheme == scheme)
    }

    /// The abstract's headline ranges, derived from the rows.
    ///
    /// # Panics
    ///
    /// Panics if the table has no non-baseline rows.
    pub fn abstract_claims(&self) -> AbstractClaims {
        let actives: Vec<f64> = self
            .rows
            .iter()
            .filter_map(|r| r.active_leakage_savings)
            .collect();
        let standbys: Vec<f64> = self
            .rows
            .iter()
            .filter_map(|r| r.standby_leakage_savings)
            .collect();
        let penalties: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| !r.scheme.is_baseline())
            .map(|r| r.delay_penalty.unwrap_or(0.0))
            .collect();
        assert!(!actives.is_empty(), "table has no non-baseline rows");
        let range = |v: &[f64]| {
            (
                v.iter().copied().fold(f64::INFINITY, f64::min),
                v.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            )
        };
        AbstractClaims {
            active_savings_range: range(&actives),
            standby_savings_range: range(&standbys),
            delay_penalty_range: range(&penalties),
        }
    }

    /// §3's segmentation claim: the *additional* active-leakage reduction
    /// of (SDFC vs DFC, SDPC vs DPC). The paper reports ≈20 % and ≈30 %.
    ///
    /// # Panics
    ///
    /// Panics if any of the four schemes is missing.
    pub fn segmentation_gains(&self) -> (f64, f64) {
        let remaining = |s: Scheme| {
            1.0 - self
                .row(s)
                .expect("table has all schemes")
                .active_leakage_savings
                .unwrap_or(0.0)
        };
        (
            1.0 - remaining(Scheme::Sdfc) / remaining(Scheme::Dfc),
            1.0 - remaining(Scheme::Sdpc) / remaining(Scheme::Dpc),
        )
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pct = |v: Option<f64>| match v {
            Some(x) => format!("{:.2}%", x * 100.0),
            None => "-".to_string(),
        };
        let pen = |v: Option<f64>| match v {
            Some(x) => format!("{:.2}%", x * 100.0),
            None => "No".to_string(),
        };
        writeln!(
            f,
            "{:<42}{}",
            "",
            self.rows
                .iter()
                .map(|r| format!("{:>10}", r.scheme.name()))
                .collect::<String>()
        )?;
        let line = |f: &mut fmt::Formatter<'_>, label: &str, cells: Vec<String>| {
            writeln!(
                f,
                "{:<42}{}",
                label,
                cells.iter().map(|c| format!("{c:>10}")).collect::<String>()
            )
        };
        line(
            f,
            "High to low delay time (ps)",
            self.rows
                .iter()
                .map(|r| format!("{:.2}", r.delay_high_to_low_ps))
                .collect(),
        )?;
        line(
            f,
            "Low to High / Precharge delay time (ps)",
            self.rows
                .iter()
                .map(|r| format!("{:.2}", r.delay_low_to_high_ps))
                .collect(),
        )?;
        line(
            f,
            "Active Leakage Savings",
            self.rows
                .iter()
                .map(|r| pct(r.active_leakage_savings))
                .collect(),
        )?;
        line(
            f,
            "Standby Leakage Savings",
            self.rows
                .iter()
                .map(|r| pct(r.standby_leakage_savings))
                .collect(),
        )?;
        line(
            f,
            "Minimum Idle Time (cycles)",
            self.rows
                .iter()
                .map(|r| r.min_idle_time_cycles.to_string())
                .collect(),
        )?;
        line(
            f,
            "Total Power (mW)",
            self.rows
                .iter()
                .map(|r| format!("{:.2}", r.total_power_mw))
                .collect(),
        )?;
        line(
            f,
            "Delay Penalty",
            self.rows
                .iter()
                .map(|r| {
                    if r.scheme.is_baseline() {
                        "-".to_string()
                    } else {
                        pen(r.delay_penalty)
                    }
                })
                .collect(),
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_matches_published_values() {
        let t = Table1::paper_reference();
        let sc = t.row(Scheme::Sc).unwrap();
        assert!((sc.delay_high_to_low_ps - 61.40).abs() < 1e-9);
        assert!((sc.total_power_mw - 182.81).abs() < 1e-9);
        let sdpc = t.row(Scheme::Sdpc).unwrap();
        assert!((sdpc.standby_leakage_savings.unwrap() - 0.9596).abs() < 1e-9);
    }

    #[test]
    fn paper_abstract_ranges_are_consistent() {
        // The abstract's "10.13%~63.57%" and "12.35%~95.96%" claims must
        // fall out of the published table itself.
        let claims = Table1::paper_reference().abstract_claims();
        assert!((claims.active_savings_range.0 - 0.1013).abs() < 1e-6);
        assert!((claims.active_savings_range.1 - 0.6357).abs() < 1e-6);
        assert!((claims.standby_savings_range.0 - 0.1236).abs() < 1e-6);
        assert!((claims.standby_savings_range.1 - 0.9596).abs() < 1e-6);
        assert!((claims.delay_penalty_range.1 - 0.0469).abs() < 1e-6);
    }

    #[test]
    fn paper_delay_penalty_definition_checks_out() {
        // 64.28 / 61.40 − 1 = 4.69 %, 62.80 / 61.40 − 1 = 2.28 % — the
        // published penalties equal worst-delay ratios vs SC, validating
        // our derivation rule.
        let t = Table1::paper_reference();
        let sc_worst = t.row(Scheme::Sc).unwrap().worst_delay_ps();
        for (scheme, expect) in [(Scheme::Sdfc, 0.0469), (Scheme::Sdpc, 0.0228)] {
            let row = t.row(scheme).unwrap();
            let derived = row.worst_delay_ps() / sc_worst - 1.0;
            assert!(
                (derived - expect).abs() < 0.001,
                "{scheme}: derived {derived:.4} vs published {expect}"
            );
        }
    }

    #[test]
    fn segmentation_gains_are_positive_in_paper() {
        let (sdfc_gain, sdpc_gain) = Table1::paper_reference().segmentation_gains();
        assert!(
            sdfc_gain > 0.25,
            "SDFC cuts DFC's remaining leakage: {sdfc_gain}"
        );
        assert!(
            sdpc_gain > 0.25,
            "SDPC cuts DPC's remaining leakage: {sdpc_gain}"
        );
    }

    #[test]
    fn display_renders_all_rows() {
        let s = Table1::paper_reference().to_string();
        assert!(s.contains("SC"));
        assert!(s.contains("SDPC"));
        assert!(s.contains("Delay Penalty"));
        assert!(s.contains("95.96%"));
        assert!(s.contains("No"));
    }
}
