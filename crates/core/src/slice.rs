//! Bit-slice netlist generators for the five crossbar schemes.
//!
//! One *bit-slice* is the circuit of Figures 1–3 for a single output
//! port and a single data bit: four crosspoint pass transistors, the
//! shared internal node A (with its matrix-column wire), the keeper or
//! pre-charge device P1, the sleep transistor N5, the two-stage output
//! driver I1/I2, and the output wire toward `output_PE`. The full
//! crossbar is `radix × flit_bits` such slices; all Table 1 quantities
//! are characterized per slice and scaled.
//!
//! ## Topologies
//!
//! Non-segmented (SC, DFC, DPC — Figs. 1 and 2):
//!
//! ```text
//! in_i --[pass_i]--> A ~~matrix wire~~ A_drv --I1--> w0 ~~output wire~~ w_end --I2--> out_PE
//!                                      |
//!                         keeper P1 (gate = w0)  [SC/DFC]
//!                         pre    P1 (gate = pre) [DPC]
//!                         sleep  N5 (gate = sleep)
//! ```
//!
//! Segmented (SDFC, SDPC — Fig. 3): two half-matrices ("slack" with the
//! near inputs, "crit" with the far inputs), each with its own node A,
//! keeper/pre-charge, sleep and first-stage driver. Transmission gates
//! isolate the segments so an idle half can be powered down while the
//! other half carries traffic; the far path crosses both wire halves and
//! one transmission gate, which is the paper's worst-case (delay-penalty)
//! path:
//!
//! ```text
//! slack: in_{0,1} → A1 → I1a →[TG near]──┐
//! crit : in_{2,3} → A2 → I1b → seg_far ──[TG far]── w_mid ~~seg_near~~ w_end → I2 → out_PE
//! ```
//!
//! ## Design notes (documented substitutions)
//!
//! * The paper's Fig. 3 shows plain sleep/pre devices at the segment
//!   boundaries; we use full transmission gates for isolation so that
//!   both logic levels propagate without a threshold drop. SDFC keeps
//!   its feedback keepers for level restoration at the A nodes; SDPC
//!   replaces them with pre-charge devices, reproducing §2.4's "no level
//!   restoration requirement".
//! * DPC pre-charges node A **high** (Fig. 2), so `output_PE` idles high
//!   and evaluation of a logic-0 produces the measured high-to-low edge.

use crate::config::CrossbarConfig;
use crate::scheme::{DeviceRole, Scheme};
use lnoc_circuit::netlist::{DeviceId, MosfetSpec, Netlist, NodeId};
use lnoc_circuit::stimulus::Stimulus;
use lnoc_tech::device::{MosModel, Polarity, VtClass};
use lnoc_tech::interconnect::Wire;
use std::sync::Arc;

/// Shared, pre-instantiated model cards for the four device flavours.
#[derive(Debug, Clone)]
pub struct ModelSet {
    nmos: [Arc<MosModel>; 2],
    pmos: [Arc<MosModel>; 2],
}

impl ModelSet {
    /// Instantiates the flavour cards from a configuration's technology.
    pub fn new(cfg: &CrossbarConfig) -> Self {
        let t = &cfg.tech;
        ModelSet {
            nmos: [
                Arc::new(t.mos(Polarity::Nmos, VtClass::Nominal)),
                Arc::new(t.mos(Polarity::Nmos, VtClass::High)),
            ],
            pmos: [
                Arc::new(t.mos(Polarity::Pmos, VtClass::Nominal)),
                Arc::new(t.mos(Polarity::Pmos, VtClass::High)),
            ],
        }
    }

    /// The card for a polarity/Vt-class pair.
    pub fn get(&self, polarity: Polarity, vt: VtClass) -> Arc<MosModel> {
        let i = match vt {
            VtClass::Nominal => 0,
            VtClass::High => 1,
        };
        match polarity {
            Polarity::Nmos => Arc::clone(&self.nmos[i]),
            Polarity::Pmos => Arc::clone(&self.pmos[i]),
        }
    }
}

/// Record of one instantiated transistor: name, role, chosen Vt.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedDevice {
    /// Instance name in the netlist.
    pub name: String,
    /// Functional role.
    pub role: DeviceRole,
    /// Threshold class the scheme assigned.
    pub vt: VtClass,
    /// `true` if the device belongs to the slack (near) segment.
    pub slack_segment: bool,
}

/// A generated bit-slice: netlist plus handles to every node and control
/// source the characterizer needs.
#[derive(Debug, Clone)]
pub struct BitSlice {
    /// The circuit.
    pub netlist: Netlist,
    /// Which scheme this slice implements.
    pub scheme: Scheme,
    /// Supply node.
    pub vdd_node: NodeId,
    /// Supply source (for energy integration).
    pub vdd_src: DeviceId,
    /// Input data nodes, one per candidate input port (radix − 1).
    pub inputs: Vec<NodeId>,
    /// Node A of the main (critical) sub-slice — *the* node A for
    /// non-segmented schemes (driver end, where P1/N5 sit).
    pub a_main: NodeId,
    /// Node A of the slack sub-slice (segmented schemes only).
    pub a_slack: Option<NodeId>,
    /// Input node of the final buffer I2.
    pub wire_end: NodeId,
    /// The `output_PE` node.
    pub out: NodeId,
    /// Data sources, one per input.
    pub data_srcs: Vec<DeviceId>,
    /// Grant sources, one per input.
    pub grant_srcs: Vec<DeviceId>,
    /// Sleep source of the main domain (gate of N5).
    pub sleep_main_src: DeviceId,
    /// Sleep source of the slack domain.
    pub sleep_slack_src: Option<DeviceId>,
    /// Pre-charge gate source(s) for pre-charged schemes (P1 gates are
    /// active-low: 0 V = pre-charging).
    pub pre_main_src: Option<DeviceId>,
    /// Slack-domain pre-charge gate source.
    pub pre_slack_src: Option<DeviceId>,
    /// Transmission-gate enables (NMOS gate, PMOS gate) for the near
    /// path.
    pub en_near_srcs: Option<(DeviceId, DeviceId)>,
    /// Transmission-gate enables for the far path.
    pub en_far_srcs: Option<(DeviceId, DeviceId)>,
    /// Every placed transistor with its role and Vt class.
    pub placed: Vec<PlacedDevice>,
    /// Input indices wired to the slack (near) half-matrix (segmented
    /// schemes only; empty otherwise). The lower half of the inputs.
    pub slack_inputs: Vec<usize>,
    /// Input indices wired to the critical (far) half-matrix (segmented
    /// schemes only; empty otherwise). The upper half of the inputs.
    pub crit_inputs: Vec<usize>,
    vdd_volts: f64,
}

/// Index of the slack/near inputs in a segmented slice *at the paper's
/// radix 5* (kept for convenience; arbitrary radices expose the actual
/// split through [`BitSlice::slack_inputs`]).
pub const SLACK_INPUTS: [usize; 2] = [0, 1];
/// Index of the critical/far inputs in a segmented slice at the paper's
/// radix 5 (see [`BitSlice::crit_inputs`] for the general case).
pub const CRIT_INPUTS: [usize; 2] = [2, 3];

impl BitSlice {
    /// Generates the bit-slice for a scheme under a configuration.
    ///
    /// All control sources start in the *idle awake* state: grants off,
    /// sleep off, pre-charge inactive, segment gates off.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CrossbarConfig::validate`], or if a
    /// segmented scheme is requested at radix < 3 (the two half-matrices
    /// each need at least one input).
    pub fn build(scheme: Scheme, cfg: &CrossbarConfig) -> Self {
        cfg.validate().expect("invalid crossbar configuration");
        let models = ModelSet::new(cfg);
        Builder::new(scheme, cfg, &models).build()
    }

    /// Generates the slice with an explicit model set (shared across
    /// many slices by the characterizer).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CrossbarConfig::validate`], or if a
    /// segmented scheme is requested at radix < 3 (the two half-matrices
    /// each need at least one input).
    pub fn build_with_models(scheme: Scheme, cfg: &CrossbarConfig, models: &ModelSet) -> Self {
        cfg.validate().expect("invalid crossbar configuration");
        Builder::new(scheme, cfg, models).build()
    }

    /// Generates the slice with explicit per-device Vt overrides keyed by
    /// instance name — the hook used by the slack-driven assignment
    /// algorithm in [`crate::dual_vt`] to explore Vt plans beyond the
    /// paper's fixed tables.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CrossbarConfig::validate`], or if a
    /// segmented scheme is requested at radix < 3 (the two half-matrices
    /// each need at least one input).
    pub fn build_with_overrides(
        scheme: Scheme,
        cfg: &CrossbarConfig,
        models: &ModelSet,
        overrides: &std::collections::BTreeMap<String, VtClass>,
    ) -> Self {
        cfg.validate().expect("invalid crossbar configuration");
        let mut b = Builder::new(scheme, cfg, models);
        b.overrides = Some(overrides.clone());
        b.build()
    }

    /// Number of candidate inputs (radix − 1).
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Counts placed devices by threshold class: `(nominal, high)`.
    pub fn vt_census(&self) -> (usize, usize) {
        let high = self.placed.iter().filter(|p| p.vt == VtClass::High).count();
        (self.placed.len() - high, high)
    }

    // --- control setters (DC states) ------------------------------------

    /// Sets the grant of one input (static).
    pub fn set_grant(&mut self, input: usize, on: bool) {
        let v = if on { self.vdd_volts } else { 0.0 };
        self.netlist
            .set_stimulus(self.grant_srcs[input], Stimulus::dc(v));
    }

    /// Sets the data value of one input (static).
    pub fn set_data(&mut self, input: usize, high: bool) {
        let v = if high { self.vdd_volts } else { 0.0 };
        self.netlist
            .set_stimulus(self.data_srcs[input], Stimulus::dc(v));
    }

    /// Asserts or releases the main-domain sleep transistor.
    pub fn set_sleep_main(&mut self, sleeping: bool) {
        let v = if sleeping { self.vdd_volts } else { 0.0 };
        self.netlist
            .set_stimulus(self.sleep_main_src, Stimulus::dc(v));
    }

    /// Asserts or releases the slack-domain sleep transistor (no-op on
    /// non-segmented schemes).
    pub fn set_sleep_slack(&mut self, sleeping: bool) {
        if let Some(src) = self.sleep_slack_src {
            let v = if sleeping { self.vdd_volts } else { 0.0 };
            self.netlist.set_stimulus(src, Stimulus::dc(v));
        }
    }

    /// Activates or deactivates the pre-charge devices (both domains).
    /// No-op for feedback (keeper) schemes.
    pub fn set_precharge(&mut self, active: bool) {
        self.set_precharge_main(active);
        self.set_precharge_slack(active);
    }

    /// Activates or deactivates only the main domain's pre-charge.
    pub fn set_precharge_main(&mut self, active: bool) {
        // P1 is PMOS: gate low = pre-charging.
        let v = if active { 0.0 } else { self.vdd_volts };
        if let Some(src) = self.pre_main_src {
            self.netlist.set_stimulus(src, Stimulus::dc(v));
        }
    }

    /// Activates or deactivates only the slack domain's pre-charge.
    pub fn set_precharge_slack(&mut self, active: bool) {
        let v = if active { 0.0 } else { self.vdd_volts };
        if let Some(src) = self.pre_slack_src {
            self.netlist.set_stimulus(src, Stimulus::dc(v));
        }
    }

    /// Opens or closes the near-path transmission gate.
    pub fn set_enable_near(&mut self, on: bool) {
        if let Some((n, p)) = self.en_near_srcs {
            let (vn, vp) = if on {
                (self.vdd_volts, 0.0)
            } else {
                (0.0, self.vdd_volts)
            };
            self.netlist.set_stimulus(n, Stimulus::dc(vn));
            self.netlist.set_stimulus(p, Stimulus::dc(vp));
        }
    }

    /// Opens or closes the far-path transmission gate.
    pub fn set_enable_far(&mut self, on: bool) {
        if let Some((n, p)) = self.en_far_srcs {
            let (vn, vp) = if on {
                (self.vdd_volts, 0.0)
            } else {
                (0.0, self.vdd_volts)
            };
            self.netlist.set_stimulus(n, Stimulus::dc(vn));
            self.netlist.set_stimulus(p, Stimulus::dc(vp));
        }
    }

    // --- transient drive ------------------------------------------------

    /// Drives a data input with an arbitrary stimulus (transient).
    pub fn drive_data(&mut self, input: usize, stim: Stimulus) {
        self.netlist.set_stimulus(self.data_srcs[input], stim);
    }

    /// Drives a grant with an arbitrary stimulus (transient).
    pub fn drive_grant(&mut self, input: usize, stim: Stimulus) {
        self.netlist.set_stimulus(self.grant_srcs[input], stim);
    }

    /// Drives the pre-charge gate(s) with an arbitrary stimulus
    /// (remember: 0 V at the gate means "pre-charging").
    pub fn drive_precharge(&mut self, stim: Stimulus) {
        if let Some(src) = self.pre_main_src {
            self.netlist.set_stimulus(src, stim.clone());
        }
        if let Some(src) = self.pre_slack_src {
            self.netlist.set_stimulus(src, stim);
        }
    }

    /// Drives only the main (critical) domain's pre-charge gate; the
    /// slack domain keeps its current stimulus. No-op on feedback
    /// schemes.
    pub fn drive_precharge_main(&mut self, stim: Stimulus) {
        if let Some(src) = self.pre_main_src {
            self.netlist.set_stimulus(src, stim);
        }
    }

    /// Drives only the slack domain's pre-charge gate. No-op on
    /// non-segmented or feedback schemes.
    pub fn drive_precharge_slack(&mut self, stim: Stimulus) {
        if let Some(src) = self.pre_slack_src {
            self.netlist.set_stimulus(src, stim);
        }
    }

    /// Drives the main sleep gate with an arbitrary stimulus.
    pub fn drive_sleep_main(&mut self, stim: Stimulus) {
        self.netlist.set_stimulus(self.sleep_main_src, stim);
    }
}

/// Internal builder that walks the topology once.
struct Builder<'a> {
    scheme: Scheme,
    cfg: &'a CrossbarConfig,
    models: &'a ModelSet,
    nl: Netlist,
    placed: Vec<PlacedDevice>,
    vdd_node: NodeId,
    overrides: Option<std::collections::BTreeMap<String, VtClass>>,
}

impl<'a> Builder<'a> {
    fn new(scheme: Scheme, cfg: &'a CrossbarConfig, models: &'a ModelSet) -> Self {
        let mut nl = Netlist::new();
        let vdd_node = nl.node("vdd");
        Builder {
            scheme,
            cfg,
            models,
            nl,
            placed: Vec::new(),
            vdd_node,
            overrides: None,
        }
    }

    /// Places a MOSFET with the scheme's Vt choice for its role.
    #[allow(clippy::too_many_arguments)]
    fn mos(
        &mut self,
        name: &str,
        role: DeviceRole,
        slack_segment: bool,
        polarity: Polarity,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        w: f64,
    ) {
        let vt = if let Some(vt) = self.overrides.as_ref().and_then(|m| m.get(name)) {
            *vt
        } else if slack_segment {
            self.scheme.vt_for_slack_segment(role)
        } else {
            self.scheme.vt_for(role)
        };
        let b = match polarity {
            Polarity::Nmos => Netlist::GROUND,
            Polarity::Pmos => self.vdd_node,
        };
        self.nl
            .mosfet(
                name,
                MosfetSpec {
                    d,
                    g,
                    s,
                    b,
                    model: self.models.get(polarity, vt),
                    w,
                },
            )
            .expect("slice sizing widths are positive");
        self.placed.push(PlacedDevice {
            name: name.to_string(),
            role,
            vt,
            slack_segment,
        });
    }

    /// Lays a wire as an RC π-ladder between two existing nodes,
    /// creating `segments − 1` interior nodes.
    fn wire(&mut self, prefix: &str, from: NodeId, to: NodeId, wire: &Wire, segments: usize) {
        let ladder = wire.to_pi_ladder(segments);
        let mut prev = from;
        for (i, seg) in ladder.iter().enumerate() {
            let next = if i + 1 == ladder.len() {
                to
            } else {
                self.nl.node(&format!("{prefix}_w{i}"))
            };
            self.nl
                .capacitor(
                    &format!("{prefix}_cin{i}"),
                    prev,
                    Netlist::GROUND,
                    seg.cap_in.0,
                )
                .expect("cap is non-negative");
            self.nl
                .resistor(&format!("{prefix}_r{i}"), prev, next, seg.resistance.0)
                .expect("resistance is positive");
            self.nl
                .capacitor(
                    &format!("{prefix}_cout{i}"),
                    next,
                    Netlist::GROUND,
                    seg.cap_out.0,
                )
                .expect("cap is non-negative");
            prev = next;
        }
    }

    /// Places a driver inverter; returns nothing (nodes are passed in).
    /// `eval_p` tells which polarity moves the output during evaluation:
    /// for pre-charged schemes the *other* polarity is parked at high Vt.
    #[allow(clippy::too_many_arguments)]
    fn driver_inverter(
        &mut self,
        name: &str,
        slack: bool,
        input: NodeId,
        output: NodeId,
        w_n: f64,
        w_p: f64,
        eval_is_p: bool,
    ) {
        let (role_n, role_p) = if eval_is_p {
            (DeviceRole::DriverIdleN, DeviceRole::DriverEvalP)
        } else {
            (DeviceRole::DriverEvalN, DeviceRole::DriverIdleP)
        };
        self.mos(
            &format!("{name}_p"),
            role_p,
            slack,
            Polarity::Pmos,
            output,
            input,
            self.vdd_node,
            w_p,
        );
        self.mos(
            &format!("{name}_n"),
            role_n,
            slack,
            Polarity::Nmos,
            output,
            input,
            Netlist::GROUND,
            w_n,
        );
    }

    fn build(mut self) -> BitSlice {
        let cfg = self.cfg;
        let s = cfg.sizing.clone();
        let vdd = cfg.vdd().0;
        let n_inputs = cfg.radix - 1;

        let vdd_src = self
            .nl
            .vsource("VDD", self.vdd_node, Netlist::GROUND, Stimulus::dc(vdd));

        // Input data and grant sources.
        let mut inputs = Vec::with_capacity(n_inputs);
        let mut data_srcs = Vec::with_capacity(n_inputs);
        let mut grant_srcs = Vec::with_capacity(n_inputs);
        let mut grant_nodes = Vec::with_capacity(n_inputs);
        for i in 0..n_inputs {
            let in_node = self.nl.node(&format!("in{i}"));
            let g_node = self.nl.node(&format!("g{i}"));
            data_srcs.push(self.nl.vsource(
                &format!("DATA{i}"),
                in_node,
                Netlist::GROUND,
                Stimulus::dc(0.0),
            ));
            grant_srcs.push(self.nl.vsource(
                &format!("GRANT{i}"),
                g_node,
                Netlist::GROUND,
                Stimulus::dc(0.0),
            ));
            inputs.push(in_node);
            grant_nodes.push(g_node);
        }

        let out = self.nl.node("out_pe");
        let wire_end = self.nl.node("w_end");

        // Sleep gate sources.
        let sleep_main_node = self.nl.node("sleep_main");
        let sleep_main_src = self.nl.vsource(
            "SLEEP_MAIN",
            sleep_main_node,
            Netlist::GROUND,
            Stimulus::dc(0.0),
        );

        let precharged = self.scheme.is_precharged();
        let mut pre_main_src = None;
        let mut pre_slack_src = None;
        let mut sleep_slack_src = None;
        let mut en_near_srcs = None;
        let mut en_far_srcs = None;
        let mut a_slack_node = None;
        let mut slack_inputs: Vec<usize> = Vec::new();
        let mut crit_inputs: Vec<usize> = Vec::new();

        let a_main;
        if !self.scheme.is_segmented() {
            // ---------------- Figures 1 & 2: single matrix ----------------
            let a_far = self.nl.node("a_far");
            let a = self.nl.node("a");
            a_main = a;

            // All pass transistors inject at the far end of the matrix
            // column wire; P1/N5/I1 sit at the driver end.
            for i in 0..n_inputs {
                self.mos(
                    &format!("pass{i}"),
                    DeviceRole::PassTransistor,
                    false,
                    Polarity::Nmos,
                    inputs[i],
                    grant_nodes[i],
                    a_far,
                    s.w_pass,
                );
            }
            self.wire("mwire", a_far, a, &cfg.matrix_wire(), 2);

            // Sleep transistor N5 on node A.
            self.mos(
                "sleep_n5",
                DeviceRole::Sleep,
                false,
                Polarity::Nmos,
                a,
                sleep_main_node,
                Netlist::GROUND,
                s.w_sleep,
            );

            let w0 = self.nl.node("w0");
            if precharged {
                // DPC: clocked pre-charge P1 (gate driven externally).
                let pre_node = self.nl.node("pre_main");
                pre_main_src = Some(self.nl.vsource(
                    "PRE_MAIN",
                    pre_node,
                    Netlist::GROUND,
                    Stimulus::dc(vdd), // inactive
                ));
                self.mos(
                    "pre_p1",
                    DeviceRole::KeeperOrPrecharge,
                    false,
                    Polarity::Pmos,
                    a,
                    pre_node,
                    self.vdd_node,
                    s.w_keeper,
                );
            } else {
                // SC/DFC: feedback keeper P1 (gate = I1 output).
                self.mos(
                    "keeper_p1",
                    DeviceRole::KeeperOrPrecharge,
                    false,
                    Polarity::Pmos,
                    a,
                    w0,
                    self.vdd_node,
                    s.w_keeper,
                );
            }

            // Driver I1 → output wire → I2 → out_PE.
            // Evaluation edge for pre-charged-high DPC: A falls, w0
            // rises (I1 PMOS works), out falls (I2 NMOS works).
            self.driver_inverter("i1", false, a, w0, s.w_i1_n, s.w_i1_p, true);
            self.wire("owire", w0, wire_end, &cfg.output_wire(), 2);
            self.driver_inverter("i2", false, wire_end, out, s.w_i2_n, s.w_i2_p, false);
        } else {
            // ---------------- Figure 3: segmented matrix ------------------
            // Slack (near) half: inputs 0..n/2, quarter-span matrix wire.
            let half = n_inputs / 2;
            assert!(
                half >= 1,
                "segmented schemes split the {n_inputs} input(s) into two \
                 half-matrices and need radix ≥ 3 (got {})",
                cfg.radix
            );
            let quarter_wire = Wire::new(
                *cfg.matrix_wire().geometry(),
                0.5 * cfg.matrix_wire().length().0,
            )
            .expect("positive length");
            let half_out_wire = Wire::new(
                *cfg.output_wire().geometry(),
                0.5 * cfg.output_wire().length().0,
            )
            .expect("positive length");

            let a1_far = self.nl.node("a1_far");
            let a1 = self.nl.node("a1");
            let a2_far = self.nl.node("a2_far");
            let a2 = self.nl.node("a2");
            a_main = a2;
            a_slack_node = Some(a1);

            // Lower half of the inputs lands in the slack (near) matrix,
            // upper half in the critical (far) matrix — Fig. 3 generalized
            // to arbitrary radix (at the paper's radix 5 this reproduces
            // the fixed [0,1]/[2,3] split).
            slack_inputs = (0..half).collect();
            crit_inputs = (half..n_inputs).collect();
            for &i in &slack_inputs {
                self.mos(
                    &format!("pass{i}"),
                    DeviceRole::PassTransistor,
                    true,
                    Polarity::Nmos,
                    inputs[i],
                    grant_nodes[i],
                    a1_far,
                    s.w_pass,
                );
            }
            for &i in &crit_inputs {
                self.mos(
                    &format!("pass{i}"),
                    DeviceRole::PassTransistor,
                    false,
                    Polarity::Nmos,
                    inputs[i],
                    grant_nodes[i],
                    a2_far,
                    s.w_pass,
                );
            }
            self.wire("mwire1", a1_far, a1, &quarter_wire, 2);
            self.wire("mwire2", a2_far, a2, &quarter_wire, 2);

            // Per-domain sleep.
            let sleep_slack_node = self.nl.node("sleep_slack");
            sleep_slack_src = Some(self.nl.vsource(
                "SLEEP_SLACK",
                sleep_slack_node,
                Netlist::GROUND,
                Stimulus::dc(0.0),
            ));
            self.mos(
                "sleep1_n5",
                DeviceRole::Sleep,
                true,
                Polarity::Nmos,
                a1,
                sleep_slack_node,
                Netlist::GROUND,
                s.w_sleep,
            );
            self.mos(
                "sleep2_n5",
                DeviceRole::Sleep,
                false,
                Polarity::Nmos,
                a2,
                sleep_main_node,
                Netlist::GROUND,
                s.w_sleep,
            );

            let i1a_out = self.nl.node("i1a_out");
            let i1b_out = self.nl.node("i1b_out");
            if precharged {
                // SDPC: per-domain pre-charge, no keepers (§2.4).
                let pre_s = self.nl.node("pre_slack");
                let pre_m = self.nl.node("pre_main");
                pre_slack_src =
                    Some(
                        self.nl
                            .vsource("PRE_SLACK", pre_s, Netlist::GROUND, Stimulus::dc(vdd)),
                    );
                pre_main_src =
                    Some(
                        self.nl
                            .vsource("PRE_MAIN", pre_m, Netlist::GROUND, Stimulus::dc(vdd)),
                    );
                self.mos(
                    "pre1_p1",
                    DeviceRole::KeeperOrPrecharge,
                    true,
                    Polarity::Pmos,
                    a1,
                    pre_s,
                    self.vdd_node,
                    s.w_keeper,
                );
                self.mos(
                    "pre2_p1",
                    DeviceRole::KeeperOrPrecharge,
                    false,
                    Polarity::Pmos,
                    a2,
                    pre_m,
                    self.vdd_node,
                    s.w_keeper,
                );
            } else {
                // SDFC: feedback keepers on both A nodes.
                self.mos(
                    "keeper1_p1",
                    DeviceRole::KeeperOrPrecharge,
                    true,
                    Polarity::Pmos,
                    a1,
                    i1a_out,
                    self.vdd_node,
                    s.w_keeper,
                );
                self.mos(
                    "keeper2_p1",
                    DeviceRole::KeeperOrPrecharge,
                    false,
                    Polarity::Pmos,
                    a2,
                    i1b_out,
                    self.vdd_node,
                    s.w_keeper,
                );
            }

            // First-stage drivers: slack driver entirely high-Vt in the
            // segmented schemes (vt_for_slack_segment).
            self.driver_inverter("i1a", true, a1, i1a_out, s.w_i1_n, s.w_i1_p, true);
            self.driver_inverter("i1b", false, a2, i1b_out, s.w_i1_n, s.w_i1_p, true);

            // Transmission-gate isolation.
            let w_mid = self.nl.node("w_mid");
            let en_near_n = self.nl.node("en_near");
            let en_near_p = self.nl.node("en_near_b");
            let en_far_n = self.nl.node("en_far");
            let en_far_p = self.nl.node("en_far_b");
            en_near_srcs = Some((
                self.nl
                    .vsource("EN_NEAR", en_near_n, Netlist::GROUND, Stimulus::dc(0.0)),
                self.nl
                    .vsource("EN_NEAR_B", en_near_p, Netlist::GROUND, Stimulus::dc(vdd)),
            ));
            en_far_srcs = Some((
                self.nl
                    .vsource("EN_FAR", en_far_n, Netlist::GROUND, Stimulus::dc(0.0)),
                self.nl
                    .vsource("EN_FAR_B", en_far_p, Netlist::GROUND, Stimulus::dc(vdd)),
            ));

            // Near TG: slack driver output → w_mid (short hop).
            self.mos(
                "iso_near_n",
                DeviceRole::SegmentIsolation,
                true,
                Polarity::Nmos,
                i1a_out,
                en_near_n,
                w_mid,
                s.w_iso,
            );
            self.mos(
                "iso_near_p",
                DeviceRole::SegmentIsolation,
                true,
                Polarity::Pmos,
                i1a_out,
                en_near_p,
                w_mid,
                s.w_iso,
            );

            // Far segment wire then far TG into w_mid.
            let w_far_end = self.nl.node("w_far_end");
            self.wire("owire_far", i1b_out, w_far_end, &half_out_wire, 2);
            self.mos(
                "iso_far_n",
                DeviceRole::SegmentIsolation,
                false,
                Polarity::Nmos,
                w_far_end,
                en_far_n,
                w_mid,
                s.w_iso,
            );
            self.mos(
                "iso_far_p",
                DeviceRole::SegmentIsolation,
                false,
                Polarity::Pmos,
                w_far_end,
                en_far_p,
                w_mid,
                s.w_iso,
            );

            // Shared near segment to the output buffer.
            self.wire("owire_near", w_mid, wire_end, &half_out_wire, 2);
            self.driver_inverter("i2", false, wire_end, out, s.w_i2_n, s.w_i2_p, false);
        }

        // Receiver load at output_PE.
        self.nl
            .capacitor("c_rx", out, Netlist::GROUND, cfg.c_receiver)
            .expect("receiver cap is non-negative");

        BitSlice {
            netlist: self.nl,
            scheme: self.scheme,
            vdd_node: self.vdd_node,
            vdd_src,
            inputs,
            a_main,
            a_slack: a_slack_node,
            wire_end,
            out,
            data_srcs,
            grant_srcs,
            sleep_main_src,
            sleep_slack_src,
            pre_main_src,
            pre_slack_src,
            en_near_srcs,
            en_far_srcs,
            placed: self.placed,
            slack_inputs,
            crit_inputs,
            vdd_volts: vdd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnoc_circuit::dc;

    fn cfg() -> CrossbarConfig {
        CrossbarConfig::test_small()
    }

    #[test]
    fn all_schemes_build() {
        for scheme in Scheme::ALL {
            let slice = BitSlice::build(scheme, &cfg());
            assert_eq!(slice.input_count(), 4, "{scheme}");
            assert!(slice.netlist.node_count() > 10, "{scheme}");
        }
    }

    #[test]
    fn sc_has_no_high_vt() {
        let slice = BitSlice::build(Scheme::Sc, &cfg());
        let (_, high) = slice.vt_census();
        assert_eq!(high, 0);
    }

    #[test]
    fn vt_census_orders_like_the_paper() {
        // More aggressive schemes place more high-Vt devices.
        let count = |s: Scheme| BitSlice::build(s, &cfg()).vt_census().1;
        let (dfc, dpc, sdfc, sdpc) = (
            count(Scheme::Dfc),
            count(Scheme::Dpc),
            count(Scheme::Sdfc),
            count(Scheme::Sdpc),
        );
        assert!(dfc >= 2, "DFC raises keeper + sleep, got {dfc}");
        assert!(dpc > dfc, "DPC parks driver halves too: {dpc} vs {dfc}");
        assert!(sdfc > dfc, "SDFC adds the slack driver: {sdfc} vs {dfc}");
        assert!(
            sdpc >= sdfc,
            "SDPC is the most aggressive: {sdpc} vs {sdfc}"
        );
    }

    #[test]
    fn precharged_schemes_expose_pre_sources() {
        for scheme in Scheme::ALL {
            let slice = BitSlice::build(scheme, &cfg());
            assert_eq!(
                slice.pre_main_src.is_some(),
                scheme.is_precharged(),
                "{scheme}"
            );
        }
    }

    #[test]
    fn segmented_schemes_expose_domain_controls() {
        for scheme in Scheme::ALL {
            let slice = BitSlice::build(scheme, &cfg());
            assert_eq!(slice.a_slack.is_some(), scheme.is_segmented(), "{scheme}");
            assert_eq!(slice.sleep_slack_src.is_some(), scheme.is_segmented());
            assert_eq!(slice.en_far_srcs.is_some(), scheme.is_segmented());
        }
    }

    #[test]
    fn dfc_dc_converges_in_idle_and_standby() {
        let mut slice = BitSlice::build(Scheme::Dfc, &cfg());
        let sol = dc::solve(&slice.netlist).expect("idle awake converges");
        // Keeper + leakage define node A; it must sit at a valid level.
        let va = sol.voltage(slice.a_main);
        assert!(va.is_finite());

        slice.set_sleep_main(true);
        let sol = dc::solve(&slice.netlist).expect("standby converges");
        assert!(
            sol.voltage(slice.a_main) < 0.1,
            "sleep must pull node A to ground, got {}",
            sol.voltage(slice.a_main)
        );
    }

    #[test]
    fn dfc_transfer_propagates_both_levels() {
        let mut slice = BitSlice::build(Scheme::Dfc, &cfg());
        slice.set_grant(0, true);
        slice.set_data(0, false);
        let sol = dc::solve(&slice.netlist).unwrap();
        // data 0 → A low → out_PE low (two inversions).
        assert!(sol.voltage(slice.a_main) < 0.1);
        assert!(
            sol.voltage(slice.out) < 0.1,
            "out = {}",
            sol.voltage(slice.out)
        );

        slice.set_data(0, true);
        let sol = dc::solve(&slice.netlist).unwrap();
        // data 1 → A restored to full Vdd by the keeper → out_PE high.
        assert!(
            sol.voltage(slice.a_main) > 0.9,
            "keeper must restore node A, got {}",
            sol.voltage(slice.a_main)
        );
        assert!(
            sol.voltage(slice.out) > 0.9,
            "out = {}",
            sol.voltage(slice.out)
        );
    }

    #[test]
    fn dpc_precharge_sets_output_high() {
        let mut slice = BitSlice::build(Scheme::Dpc, &cfg());
        slice.set_precharge(true);
        let sol = dc::solve(&slice.netlist).unwrap();
        assert!(
            sol.voltage(slice.a_main) > 0.9,
            "pre-charge must pull node A to Vdd, got {}",
            sol.voltage(slice.a_main)
        );
        assert!(sol.voltage(slice.out) > 0.9, "output_PE pre-charged high");
    }

    #[test]
    fn sdfc_far_path_transfers_through_both_segments() {
        let mut slice = BitSlice::build(Scheme::Sdfc, &cfg());
        slice.set_enable_far(true);
        slice.set_sleep_slack(true); // near domain parked
        slice.set_grant(CRIT_INPUTS[0], true);
        slice.set_data(CRIT_INPUTS[0], true);
        let sol = dc::solve(&slice.netlist).unwrap();
        assert!(sol.voltage(slice.out) > 0.9, "far path passes a 1");

        slice.set_data(CRIT_INPUTS[0], false);
        let sol = dc::solve(&slice.netlist).unwrap();
        assert!(sol.voltage(slice.out) < 0.1, "far path passes a 0");
    }

    #[test]
    fn sdfc_near_path_transfers() {
        let mut slice = BitSlice::build(Scheme::Sdfc, &cfg());
        slice.set_enable_near(true);
        slice.set_sleep_main(true); // far domain parked
        slice.set_grant(SLACK_INPUTS[0], true);
        slice.set_data(SLACK_INPUTS[0], true);
        let sol = dc::solve(&slice.netlist).unwrap();
        assert!(sol.voltage(slice.out) > 0.9, "near path passes a 1");
    }

    #[test]
    fn spice_export_mentions_scheme_structure() {
        let slice = BitSlice::build(Scheme::Dfc, &cfg());
        let spice = slice.netlist.to_spice("dfc bit slice");
        assert!(spice.contains("Mkeeper_p1"));
        assert!(spice.contains("Msleep_n5"));
        assert!(spice.contains("Mpass0"));
        assert!(spice.contains("nmos_high") || spice.contains("pmos_high"));
    }
}
