//! Scheme characterization: every row of the paper's Table 1.
//!
//! | Table 1 row | How it is measured here |
//! |---|---|
//! | High→Low delay | transient: worst-case input edge → `output_PE` falling, 50 %→50 % |
//! | Low→High / pre-charge delay | transient: input edge (or pre-charge assertion) → output rising |
//! | Active leakage | DC leakage states during transfers, averaged over data at the static probability, at the hot corner |
//! | Standby leakage | DC leakage in the sleep state, hot corner |
//! | Minimum idle time | measured standby entry energy ÷ (idle-awake − standby) leakage power |
//! | Total power | measured per-cycle switching energy at 3 GHz + active leakage |
//! | Delay penalty | max(delays) vs the SC baseline (computed in [`crate::table1`]) |
//!
//! Delays and switching energies are simulated at the configuration's
//! nominal temperature; leakage states are solved on a twin slice built
//! at [`Temperature::HOT`] (110 °C), the usual leakage
//! sign-off point — at room temperature leakage is a negligible slice of
//! total power and none of the paper's power rows would be visible.

use crate::config::CrossbarConfig;
use crate::scheme::Scheme;
use crate::slice::{BitSlice, ModelSet};
use lnoc_circuit::analysis::{leakage_report, LeakageReport};
use lnoc_circuit::dc::{self, NewtonOptions};
use lnoc_circuit::error::CircuitError;
use lnoc_circuit::stimulus::Stimulus;
use lnoc_circuit::transient::{self, TransientSpec};
use lnoc_circuit::waveform::{propagation_delay, Edge};
use lnoc_tech::corners::Temperature;
use lnoc_tech::device::{Polarity, VtClass};
use lnoc_tech::units::{Joules, Seconds, Watts};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The full characterization of one scheme — one Table 1 column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeCharacterization {
    /// The scheme.
    pub scheme: Scheme,
    /// Worst-case-path high-to-low output delay.
    pub delay_high_to_low: Seconds,
    /// Worst-case-path low-to-high output delay; for pre-charged schemes
    /// this is the pre-charge delay (the rising output is produced by
    /// the pre-charge operation).
    pub delay_low_to_high: Seconds,
    /// Whole-crossbar leakage power during active operation (hot).
    pub active_leakage: Watts,
    /// Whole-crossbar leakage power when idle but not slept (hot).
    pub idle_awake_leakage: Watts,
    /// Whole-crossbar leakage power in standby (hot).
    pub standby_leakage: Watts,
    /// Energy to enter (and exit) standby, per bit-slice, averaged over
    /// the pre-idle data state.
    pub transition_energy: Joules,
    /// Minimum idle time in clock cycles for standby to pay off.
    pub min_idle_time_cycles: u32,
    /// Per-slice switching energy per clock cycle at the configured
    /// static probability (excludes leakage).
    pub dynamic_energy_per_cycle: Joules,
    /// Whole-crossbar total power at the configured clock: dynamic +
    /// active leakage.
    pub total_power: Watts,
    /// Count of (nominal, high) Vt devices in one slice.
    pub vt_census: (usize, usize),
}

/// One solved static operating state.
#[derive(Debug, Clone)]
pub struct StaticState {
    /// Human-readable description.
    pub label: String,
    /// Probability weight within its group (group weights sum to 1).
    pub weight: f64,
    /// Exact static supply power of one slice in this state (W) —
    /// `Σ V·I` over all sources at the DC operating point, which counts
    /// series contention paths once (unlike summing per-device
    /// magnitudes).
    pub power: f64,
    /// Per-device breakdown for diagnostics.
    pub report: LeakageReport,
}

/// Per-state leakage detail (per slice, hot corner).
#[derive(Debug, Clone)]
pub struct LeakageDetail {
    /// Weighted operating states during active traffic.
    pub active_states: Vec<StaticState>,
    /// Weighted idle-but-awake states.
    pub idle_awake_states: Vec<StaticState>,
    /// The standby (slept) state.
    pub standby: StaticState,
}

impl LeakageDetail {
    /// Weighted average power of the active states (W, per slice).
    pub fn active_power(&self) -> f64 {
        weighted_power(&self.active_states)
    }

    /// Weighted average power of the idle-awake states (W, per slice).
    pub fn idle_awake_power(&self) -> f64 {
        weighted_power(&self.idle_awake_states)
    }
}

fn weighted_power(states: &[StaticState]) -> f64 {
    let total_w: f64 = states.iter().map(|s| s.weight).sum();
    if total_w <= 0.0 {
        return 0.0;
    }
    states.iter().map(|s| s.weight * s.power).sum::<f64>() / total_w
}

/// Characterizes schemes under one configuration, reusing model sets.
#[derive(Debug)]
pub struct Characterizer {
    cfg: CrossbarConfig,
    models_nom: ModelSet,
    models_hot: ModelSet,
}

/// DC options tuned for the slice circuits (a final touch of gmin keeps
/// floating pre-charged nodes well-conditioned without measurably
/// shifting µA-scale leakage). The solve path follows the configuration.
fn slice_dc_options(cfg: &CrossbarConfig) -> NewtonOptions {
    NewtonOptions {
        max_iterations: 300,
        solver: cfg.solver,
        ..NewtonOptions::default()
    }
}

/// A transient spec at the configuration's time step and solve path.
fn slice_transient_spec(cfg: &CrossbarConfig, t_stop: f64) -> TransientSpec {
    let mut spec = TransientSpec::new(t_stop, cfg.sim_dt);
    spec.newton.solver = cfg.solver;
    spec
}

impl Characterizer {
    /// Creates a characterizer for a configuration.
    pub fn new(cfg: &CrossbarConfig) -> Self {
        let hot_cfg = CrossbarConfig {
            tech: cfg.tech.at_temperature(Temperature::HOT),
            ..cfg.clone()
        };
        Characterizer {
            models_nom: ModelSet::new(cfg),
            models_hot: ModelSet::new(&hot_cfg),
            cfg: cfg.clone(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CrossbarConfig {
        &self.cfg
    }

    /// Runs the full Table 1 characterization of one scheme.
    ///
    /// Takes `&self` so one characterizer can serve many schemes /
    /// corners concurrently (the model sets are shared `Arc` cards).
    ///
    /// # Errors
    ///
    /// Propagates solver convergence failures (which indicate a
    /// mis-configured circuit rather than an expected condition).
    pub fn characterize(&self, scheme: Scheme) -> Result<SchemeCharacterization, CircuitError> {
        let (d_hl, d_lh) = self.delays(scheme)?;
        let leak = self.leakage_points(scheme)?;
        let e_cycle = self.cycle_energy(scheme)?;
        let e_trans = self.transition_energy(scheme)?;

        let n = self.cfg.slice_count() as f64;
        let period = self.cfg.period();
        let p_saved_slice = (leak.idle_awake - leak.standby) / n;
        let min_idle_time_cycles = if p_saved_slice > 0.0 {
            ((e_trans / p_saved_slice) / period).ceil() as u32
        } else {
            u32::MAX
        };

        let total_power = e_cycle * self.cfg.clock.0 * n + leak.active;
        let vt_census =
            BitSlice::build_with_models(scheme, &self.cfg, &self.models_nom).vt_census();

        Ok(SchemeCharacterization {
            scheme,
            delay_high_to_low: Seconds(d_hl),
            delay_low_to_high: Seconds(d_lh),
            active_leakage: Watts(leak.active),
            idle_awake_leakage: Watts(leak.idle_awake),
            standby_leakage: Watts(leak.standby),
            transition_energy: Joules(e_trans),
            min_idle_time_cycles,
            dynamic_energy_per_cycle: Joules(e_cycle),
            total_power: Watts(total_power),
            vt_census,
        })
    }

    // --- delay ----------------------------------------------------------

    /// Worst-case-path delays `(high_to_low, low_to_high)` in seconds.
    fn delays(&self, scheme: Scheme) -> Result<(f64, f64), CircuitError> {
        if scheme.is_precharged() {
            Ok((
                self.dpc_eval_delay(scheme)?,
                self.dpc_precharge_delay(scheme)?,
            ))
        } else {
            let hl = self.keeper_delay(scheme, Edge::Falling)?;
            let lh = self.keeper_delay(scheme, Edge::Rising)?;
            Ok((hl, lh))
        }
    }

    /// Grants the worst-case input of a slice and returns its index.
    fn select_worst_input(&self, slice: &mut BitSlice) -> usize {
        let input = if slice.scheme.is_segmented() {
            slice.set_enable_far(true);
            slice.set_enable_near(false);
            slice.crit_inputs[0]
        } else {
            slice.input_count() - 1
        };
        slice.set_grant(input, true);
        input
    }

    /// Data-edge → output-edge delay for the feedback (keeper) schemes.
    ///
    /// Both measurements start from the easy data-0 operating point and
    /// reach the pre-edge state *physically* (a priming ramp), exactly
    /// like a SPICE test bench would — the bistable keeper loop makes a
    /// cold data-1 DC solve fragile, and a real crossbar never starts
    /// there either.
    fn keeper_delay(&self, scheme: Scheme, out_edge: Edge) -> Result<f64, CircuitError> {
        let mut slice = BitSlice::build_with_models(scheme, &self.cfg, &self.models_nom);
        let input = self.select_worst_input(&mut slice);
        let vdd = self.cfg.vdd().0;
        let t_prime = 40.0e-12;
        let t_edge = 400.0e-12; // generous settling after the priming rise
        let edge_len = 5.0e-12;
        let stim = match out_edge {
            // Prime high, then measure the fall.
            Edge::Falling => Stimulus::Pwl(vec![
                (0.0, 0.0),
                (t_prime, 0.0),
                (t_prime + edge_len, vdd),
                (t_edge, vdd),
                (t_edge + edge_len, 0.0),
            ]),
            // Start low (natural DC), measure the rise.
            Edge::Rising => {
                Stimulus::Pwl(vec![(0.0, 0.0), (t_edge, 0.0), (t_edge + edge_len, vdd)])
            }
        };
        slice.drive_data(input, stim);
        let spec = slice_transient_spec(&self.cfg, t_edge + 400.0e-12);
        let res = transient::run(&slice.netlist, &spec)?;
        let w_in = res.voltage(slice.inputs[input]);
        let w_out = res.voltage(slice.out);
        propagation_delay(&w_in, out_edge, &w_out, out_edge, vdd, t_edge - 10.0e-12).ok_or(
            CircuitError::NoConvergence {
                analysis: "transient",
                time: t_edge,
                residual: f64::NAN,
            },
        )
    }

    /// Evaluation delay of a pre-charged scheme: grant edge → output
    /// falling, with data low (the logic-0 evaluation the paper times).
    fn dpc_eval_delay(&self, scheme: Scheme) -> Result<f64, CircuitError> {
        let mut slice = BitSlice::build_with_models(scheme, &self.cfg, &self.models_nom);
        let input = if scheme.is_segmented() {
            slice.set_enable_far(true);
            slice.set_enable_near(false);
            slice.crit_inputs[0]
        } else {
            slice.input_count() - 1
        };
        let vdd = self.cfg.vdd().0;
        let t_release = 80.0e-12;
        let t_edge = 120.0e-12;
        // Pre-charging until t_release (gate low), then released.
        slice.drive_precharge(Stimulus::ramp(0.0, vdd, t_release, 5.0e-12));
        slice.set_data(input, false);
        slice.drive_grant(input, Stimulus::ramp(0.0, vdd, t_edge, 5.0e-12));
        let spec = slice_transient_spec(&self.cfg, t_edge + 400.0e-12);
        let res = transient::run(&slice.netlist, &spec)?;
        let w_grant = res.voltage(
            slice
                .netlist
                .find_node(&format!("g{input}"))
                .expect("grant node"),
        );
        let w_out = res.voltage(slice.out);
        propagation_delay(
            &w_grant,
            Edge::Rising,
            &w_out,
            Edge::Falling,
            vdd,
            t_edge - 10.0e-12,
        )
        .ok_or(CircuitError::NoConvergence {
            analysis: "transient",
            time: t_edge,
            residual: f64::NAN,
        })
    }

    /// Pre-charge delay of a pre-charged scheme: pre-charge assertion →
    /// output rising back to the idle-high state.
    fn dpc_precharge_delay(&self, scheme: Scheme) -> Result<f64, CircuitError> {
        let mut slice = BitSlice::build_with_models(scheme, &self.cfg, &self.models_nom);
        let input = if scheme.is_segmented() {
            slice.set_enable_far(true);
            slice.set_enable_near(false);
            slice.crit_inputs[0]
        } else {
            slice.input_count() - 1
        };
        let vdd = self.cfg.vdd().0;
        // Initial state: evaluated low (grant on, data 0, pre inactive).
        let t_off = 60.0e-12;
        let t_pre = 100.0e-12;
        slice.set_data(input, false);
        slice.drive_grant(input, Stimulus::ramp(vdd, 0.0, t_off, 5.0e-12));
        slice.drive_precharge(Stimulus::ramp(vdd, 0.0, t_pre, 5.0e-12));
        let spec = slice_transient_spec(&self.cfg, t_pre + 400.0e-12);
        let res = transient::run(&slice.netlist, &spec)?;
        let pre_node = slice
            .netlist
            .find_node("pre_main")
            .expect("pre-charged slice has a pre_main node");
        let w_pre = res.voltage(pre_node);
        let w_out = res.voltage(slice.out);
        propagation_delay(
            &w_pre,
            Edge::Falling,
            &w_out,
            Edge::Rising,
            vdd,
            t_pre - 10.0e-12,
        )
        .ok_or(CircuitError::NoConvergence {
            analysis: "transient",
            time: t_pre,
            residual: f64::NAN,
        })
    }

    // --- leakage ----------------------------------------------------------

    /// Whole-crossbar leakage powers (W, hot corner).
    fn leakage_points(&self, scheme: Scheme) -> Result<LeakagePoints, CircuitError> {
        let detail = self.leakage_detail(scheme)?;
        let n = self.cfg.slice_count() as f64;
        Ok(LeakagePoints {
            active: detail.active_power() * n,
            idle_awake: detail.idle_awake_power() * n,
            standby: detail.standby.power * n,
        })
    }

    /// Solves one static state and packages it.
    fn solve_state(
        &self,
        slice: &BitSlice,
        label: &str,
        weight: f64,
        warm: Option<&[f64]>,
    ) -> Result<(StaticState, Vec<f64>), CircuitError> {
        let opts = slice_dc_options(&self.cfg);
        let sol = dc::solve_with(&slice.netlist, &opts, warm)?;
        let power = sol.total_source_power(&slice.netlist).max(0.0);
        let report = leakage_report(&slice.netlist, &sol);
        let raw = raw_state(&slice.netlist, &sol);
        Ok((
            StaticState {
                label: label.to_string(),
                weight,
                power,
                report,
            },
            raw,
        ))
    }

    /// Builds and solves one weighted transfer (active-traffic) state.
    fn solve_transfer_state(
        &self,
        scheme: Scheme,
        label: &str,
        data: bool,
        far: bool,
        weight: f64,
    ) -> Result<StaticState, CircuitError> {
        let mut s = BitSlice::build_with_models(scheme, &self.cfg, &self.models_hot);
        let granted = if scheme.is_segmented() {
            if far {
                s.set_enable_far(true);
                s.set_enable_near(false);
                s.set_sleep_slack(true);
                let input = s.crit_inputs[0];
                s.set_grant(input, true);
                input
            } else {
                s.set_enable_near(true);
                s.set_enable_far(false);
                s.set_sleep_main(true);
                let input = s.slack_inputs[0];
                s.set_grant(input, true);
                input
            }
        } else {
            s.set_grant(s.input_count() - 1, true);
            s.input_count() - 1
        };
        // Only the granted input carries live data; every other
        // input buffer is parked low (idle buffers are clock-gated
        // and hold their reset level).
        s.set_data(granted, data);
        if scheme.is_precharged() {
            // Evaluation phase. For data = 1 node A floats at its
            // pre-charged high level within the cycle; pin it via
            // the *active* domain's pre-charge device only (a slept
            // domain is never pre-charged).
            if scheme.is_segmented() && !far {
                s.set_precharge_slack(data);
            } else {
                s.set_precharge_main(data);
            }
        }
        let (state, _) = self.solve_state(&s, label, weight, None)?;
        Ok(state)
    }

    /// Per-state leakage reports (per slice, hot corner).
    ///
    /// State enumeration:
    ///
    /// * feedback schemes — transfers with data 0 / data 1 (the pass
    ///   path and keeper hold full levels, so static power = leakage);
    /// * pre-charged schemes — the pre-charge half-cycle (weight ½) plus
    ///   the two evaluation states (weight ¼ each). The data-1
    ///   evaluation leaves node A floating at its pre-charged level
    ///   within the cycle; we pin it through the pre-charge device,
    ///   which is exact for the channel terms and only approximates
    ///   P1's own (sub-µm device) off-state leakage;
    /// * segmented schemes — each transfer state is split into a far
    ///   transfer (slack domain slept) and a near transfer (critical
    ///   domain slept), weighted by `slack_only_fraction`.
    ///
    /// # Errors
    ///
    /// Propagates DC convergence failures.
    pub fn leakage_detail(&self, scheme: Scheme) -> Result<LeakageDetail, CircuitError> {
        let mut active = Vec::new();
        let mut idle = Vec::new();
        let p1 = self.cfg.static_probability;
        let near_f = self.cfg.slack_only_fraction;

        // Weighted transfer-state recipes: (label, data, far?, weight).
        // Data states follow the paper's static-probability convention:
        // a bit spends `p1` of its time in the 1 state and `1 − p1` in
        // the 0 state, for pre-charged and feedback schemes alike (in a
        // pre-charged scheme the 1 state is electrically the pre-charged
        // state, so this also covers the pre-charge half-cycle).
        let mut transfer_states: Vec<(String, bool, bool, f64)> = Vec::new();
        for &(data, p_data) in &[(false, 1.0 - p1), (true, p1)] {
            if scheme.is_segmented() {
                transfer_states.push((
                    format!("far transfer, data={}", data as u8),
                    data,
                    true,
                    p_data * (1.0 - near_f),
                ));
                transfer_states.push((
                    format!("near transfer, data={}", data as u8),
                    data,
                    false,
                    p_data * near_f,
                ));
            } else {
                transfer_states.push((
                    format!("transfer, data={}", data as u8),
                    data,
                    true,
                    p_data,
                ));
            }
        }

        // Each transfer state is an independent slice build + DC solve;
        // fan them out (cores permitting — on one core this degrades to
        // the original serial loop).
        let solved: Result<Vec<StaticState>, CircuitError> = transfer_states
            .into_par_iter()
            .map(|(label, data, far, weight)| {
                self.solve_transfer_state(scheme, &label, data, far, weight)
            })
            .collect();
        active.extend(solved?);

        // Idle-awake states. In the segmented schemes the transmission
        // gates stay conducting whenever no transfer needs isolation —
        // with both sub-slice drivers parked at the same level the
        // shared wire is held without contention and never floats.
        if scheme.is_precharged() {
            // §2.2 deactivates pre-charge when idle; on the cycle scale
            // that matters for the minimum-idle-time row, node A still
            // sits at its pre-charged (high) level, so the off driver
            // halves are the *nominal* ones — the state standby fixes.
            // We pin A through the pre-charge device (exact for the
            // channel terms; P1's own off-leakage is a sub-µm rounding).
            let mut s = BitSlice::build_with_models(scheme, &self.cfg, &self.models_hot);
            s.set_precharge(true);
            s.set_enable_near(true);
            s.set_enable_far(true);
            let (state, _) =
                self.solve_state(&s, "idle awake (node A at pre-charged level)", 1.0, None)?;
            idle.push(state);
        } else {
            // Keeper schemes hold the last transferred value on node A;
            // pin each branch through a momentary grant, then release.
            for &(held, p_held) in &[(false, 1.0 - p1), (true, p1)] {
                let mut s = BitSlice::build_with_models(scheme, &self.cfg, &self.models_hot);
                let input = s.input_count() - 1;
                s.set_enable_near(true);
                s.set_enable_far(true);
                s.set_grant(input, true);
                s.set_data(input, held);
                let (_, warm) = self.solve_state(&s, "seed", 0.0, None)?;
                // Idle: grant released, all input buffers parked low; the
                // keeper holds node A against the pass-transistor leakage.
                s.set_grant(input, false);
                s.set_data(input, false);
                let (state, _) = self.solve_state(
                    &s,
                    &format!("idle awake, held data={}", held as u8),
                    p_held,
                    Some(&warm),
                )?;
                idle.push(state);
            }
        }

        // Standby: everything parked, sleep asserted. The transmission
        // gates (the per-segment sleep devices of Fig. 3) stay
        // conducting so both slept drivers hold the shared wire high —
        // precisely the state in which every off transistor of a
        // pre-charged driver is one of its high-Vt halves.
        let mut s = BitSlice::build_with_models(scheme, &self.cfg, &self.models_hot);
        s.set_sleep_main(true);
        s.set_sleep_slack(true);
        s.set_enable_near(true);
        s.set_enable_far(true);
        if scheme.is_precharged() {
            s.set_precharge(false);
        }
        let (standby, _) = self.solve_state(&s, "standby", 1.0, None)?;

        Ok(LeakageDetail {
            active_states: active,
            idle_awake_states: idle,
            standby,
        })
    }

    // --- energies ---------------------------------------------------------

    /// Per-slice switching energy per cycle at the configured static
    /// probability (J). For the segmented schemes this blends the far
    /// and near transfer paths by `slack_only_fraction` — near transfers
    /// swing only half the output wire, which is segmentation's dynamic
    /// power win.
    fn cycle_energy(&self, scheme: Scheme) -> Result<f64, CircuitError> {
        if scheme.is_segmented() {
            let far = self.cycle_energy_for_path(scheme, true)?;
            let near = self.cycle_energy_for_path(scheme, false)?;
            let f = self.cfg.slack_only_fraction;
            Ok((1.0 - f) * far + f * near)
        } else {
            self.cycle_energy_for_path(scheme, true)
        }
    }

    /// Two-cycle transient energy measurement over one transfer path.
    fn cycle_energy_for_path(&self, scheme: Scheme, use_far: bool) -> Result<f64, CircuitError> {
        let vdd = self.cfg.vdd().0;
        let period = self.cfg.period();
        let mut slice = BitSlice::build_with_models(scheme, &self.cfg, &self.models_nom);
        let input = if scheme.is_segmented() {
            if use_far {
                slice.set_enable_far(true);
                slice.set_enable_near(false);
                slice.set_sleep_slack(true);
                slice.crit_inputs[0]
            } else {
                slice.set_enable_near(true);
                slice.set_enable_far(false);
                slice.set_sleep_main(true);
                slice.slack_inputs[0]
            }
        } else {
            slice.input_count() - 1
        };
        slice.set_grant(input, true);

        let t0 = 300.0e-12; // settle (includes the priming ramp below)
        let edge = 5.0e-12;
        let e_dyn = if scheme.is_precharged() {
            // Two full pre-charge/evaluate cycles: data 0 (full swing)
            // then data 1 (no swing) — exactly the 50 % static
            // probability average.
            let half = 0.5 * period;
            slice.set_data(input, false);
            // pre gate of the *active* domain: low (charging) in the
            // first half of each cycle. A slept domain is never
            // pre-charged (its sleep pull-down would fight P1).
            let pre_stim = Stimulus::Pwl(vec![
                (0.0, 0.0),
                (t0 - 2.0 * edge, 0.0),
                (t0 - edge, vdd), // release before cycle 1 eval
                (t0 + half, vdd),
                (t0 + half + edge, 0.0), // pre-charge in second half
                (t0 + period - edge, vdd),
                (t0 + period + half, vdd),
                (t0 + period + half + edge, 0.0),
                (t0 + 2.0 * period - edge, vdd),
            ]);
            if scheme.is_segmented() && !use_far {
                slice.drive_precharge_slack(pre_stim);
            } else {
                slice.drive_precharge_main(pre_stim);
            }
            // grant asserted during evaluation windows; data 0 in the
            // first cycle, 1 in the second.
            slice.drive_grant(
                input,
                Stimulus::Pwl(vec![
                    (0.0, 0.0),
                    (t0, 0.0),
                    (t0 + edge, vdd),
                    (t0 + half - edge, vdd),
                    (t0 + half, 0.0),
                    (t0 + period, 0.0),
                    (t0 + period + edge, vdd),
                    (t0 + period + half - edge, vdd),
                    (t0 + period + half, 0.0),
                ]),
            );
            slice.drive_data(
                input,
                Stimulus::Pwl(vec![
                    (0.0, 0.0),
                    (t0 + period - 20.0e-12, 0.0),
                    (t0 + period - 10.0e-12, vdd),
                ]),
            );
            let spec = slice_transient_spec(&self.cfg, t0 + 2.0 * period);
            let res = transient::run(&slice.netlist, &spec)?;
            let e_two = res.supply_energy(&slice.netlist, slice.vdd_src, t0, t0 + 2.0 * period);
            let leak_bg = self.room_leak_power(&slice)?;
            // Add the per-cycle pre-charge control line energy (the pre
            // rail toggles every cycle across the whole flit).
            let e_ctrl = self.control_line_energy_per_bit();
            (e_two - leak_bg * 2.0 * period) / 2.0 + e_ctrl
        } else {
            // Feedback schemes: a 1→0→1 data pattern gives one
            // transition per cycle; random data at p = ½ has ½
            // transition per cycle, so scale by ½. The initial rise at
            // 40 ps primes node A physically (see `keeper_delay`).
            slice.drive_data(
                input,
                Stimulus::Pwl(vec![
                    (0.0, 0.0),
                    (40.0e-12, 0.0),
                    (45.0e-12, vdd),
                    (t0, vdd),
                    (t0 + edge, 0.0),
                    (t0 + period, 0.0),
                    (t0 + period + edge, vdd),
                ]),
            );
            let spec = slice_transient_spec(&self.cfg, t0 + 2.0 * period);
            let res = transient::run(&slice.netlist, &spec)?;
            let e_two = res.supply_energy(&slice.netlist, slice.vdd_src, t0, t0 + 2.0 * period);
            let leak_bg = self.room_leak_power(&slice)?;
            let p_transition =
                2.0 * self.cfg.static_probability * (1.0 - self.cfg.static_probability);
            (e_two - leak_bg * 2.0 * period) / 2.0 * (p_transition / 0.5)
        };
        Ok(e_dyn.max(0.0))
    }

    /// Standby entry energy per slice (J), averaged over pre-idle state.
    fn transition_energy(&self, scheme: Scheme) -> Result<f64, CircuitError> {
        let e_ctrl = self.control_line_energy_per_bit();
        if scheme.is_precharged() {
            // Idle state is unique (node A pre-charged high).
            let e = self.sleep_entry_energy(scheme, true)?;
            Ok(e + e_ctrl)
        } else {
            let p1 = self.cfg.static_probability;
            let e1 = self.sleep_entry_energy(scheme, true)?;
            let e0 = self.sleep_entry_energy(scheme, false)?;
            Ok(p1 * e1 + (1.0 - p1) * e0 + e_ctrl)
        }
    }

    /// Supply energy drawn when the sleep signal asserts from an idle
    /// state holding `held` on node A.
    fn sleep_entry_energy(&self, scheme: Scheme, held: bool) -> Result<f64, CircuitError> {
        let vdd = self.cfg.vdd().0;
        let mut slice = BitSlice::build_with_models(scheme, &self.cfg, &self.models_nom);
        let input = self.select_worst_input(&mut slice);
        let t_release = 300.0e-12;
        let t_sleep = 400.0e-12;
        let t_stop = 700.0e-12;

        if scheme.is_precharged() {
            // Hold pre-charge until t_release, then idle, then sleep.
            slice.drive_precharge(Stimulus::ramp(0.0, vdd, t_release, 5.0e-12));
            slice.set_grant(input, false);
        } else {
            // Prime node A physically (data rises at 40 ps if the held
            // state is 1), then release the grant to hold it.
            let held_v = if held { vdd } else { 0.0 };
            slice.drive_data(
                input,
                Stimulus::Pwl(vec![(0.0, 0.0), (40.0e-12, 0.0), (45.0e-12, held_v)]),
            );
            slice.drive_grant(input, Stimulus::ramp(vdd, 0.0, t_release, 5.0e-12));
        }
        slice.drive_sleep_main(Stimulus::ramp(0.0, vdd, t_sleep, 5.0e-12));
        if scheme.is_segmented() {
            if let Some(src) = slice.sleep_slack_src {
                slice
                    .netlist
                    .set_stimulus(src, Stimulus::ramp(0.0, vdd, t_sleep, 5.0e-12));
            }
        }
        let spec = slice_transient_spec(&self.cfg, t_stop);
        let res = transient::run(&slice.netlist, &spec)?;
        let e = res.supply_energy(&slice.netlist, slice.vdd_src, t_sleep - 5.0e-12, t_stop);
        // Subtract the (room) leakage background over the window.
        let leak_bg = self.room_leak_power(&slice)?;
        Ok((e - leak_bg * (t_stop - t_sleep + 5.0e-12)).max(0.0))
    }

    /// Control-line (sleep/pre rail) switching energy amortized per bit:
    /// the rail spans the flit and drives one gate per bit.
    fn control_line_energy_per_bit(&self) -> f64 {
        let vdd_v = self.cfg.vdd().0;
        let geom = self.cfg.tech.wire_geometry(self.cfg.layer);
        let bit_pitch = self.cfg.radix as f64 * geom.pitch().0 * self.cfg.pitch_factor;
        let c_line_per_bit = geom.total_capacitance_per_length().0 * bit_pitch;
        let n5 = self.cfg.tech.mos(Polarity::Nmos, VtClass::High);
        let c_gate = n5.capacitances(self.cfg.sizing.w_sleep).gate_total().0;
        (c_line_per_bit + c_gate) * vdd_v * vdd_v
    }

    /// Static supply power of the slice's current state at the nominal
    /// temperature (background to subtract from measured energies).
    fn room_leak_power(&self, slice: &BitSlice) -> Result<f64, CircuitError> {
        let sol = dc::solve_with(&slice.netlist, &slice_dc_options(&self.cfg), None)?;
        Ok(sol.total_source_power(&slice.netlist).max(0.0))
    }
}

/// Leakage power summary (W, whole crossbar).
#[derive(Debug, Clone, Copy)]
struct LeakagePoints {
    active: f64,
    idle_awake: f64,
    standby: f64,
}

/// Flattens a DC solution back into the raw unknown vector for warm
/// starts.
fn raw_state(nl: &lnoc_circuit::netlist::Netlist, sol: &dc::DcSolution) -> Vec<f64> {
    let n = nl.node_count();
    let mut x = Vec::with_capacity(n - 1 + nl.vsource_count());
    x.extend_from_slice(&sol.voltages()[1..]);
    for k in 0..nl.vsource_count() {
        x.push(sol.branch_current(k));
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> CrossbarConfig {
        CrossbarConfig {
            sim_dt: 0.5e-12,
            ..CrossbarConfig::test_small()
        }
    }

    #[test]
    fn sc_delays_are_tens_of_ps() {
        let ch = Characterizer::new(&fast_cfg());
        let (hl, lh) = ch.delays(Scheme::Sc).unwrap();
        assert!((5.0e-12..200.0e-12).contains(&hl), "H→L = {hl:.3e}");
        assert!((5.0e-12..200.0e-12).contains(&lh), "L→H = {lh:.3e}");
    }

    #[test]
    fn dfc_beats_sc_on_falling_and_loses_on_rising() {
        // The high-Vt keeper fights the falling transition less (faster
        // H→L) but restores the high level more slowly (slower L→H) —
        // the signature asymmetry of Table 1.
        let ch = Characterizer::new(&fast_cfg());
        let (sc_hl, sc_lh) = ch.delays(Scheme::Sc).unwrap();
        let (dfc_hl, dfc_lh) = ch.delays(Scheme::Dfc).unwrap();
        assert!(dfc_hl < sc_hl, "DFC H→L {dfc_hl:.3e} vs SC {sc_hl:.3e}");
        assert!(dfc_lh > sc_lh, "DFC L→H {dfc_lh:.3e} vs SC {sc_lh:.3e}");
    }

    #[test]
    fn standby_saves_leakage_in_every_scheme() {
        let ch = Characterizer::new(&fast_cfg());
        for scheme in Scheme::ALL {
            let pts = ch.leakage_points(scheme).unwrap();
            assert!(
                pts.standby < pts.idle_awake,
                "{scheme}: standby {} !< idle {}",
                pts.standby,
                pts.idle_awake
            );
            assert!(pts.active > 0.0);
        }
    }

    #[test]
    fn dual_vt_schemes_leak_less_than_sc() {
        let ch = Characterizer::new(&fast_cfg());
        let sc = ch.leakage_points(Scheme::Sc).unwrap();
        for scheme in [Scheme::Dfc, Scheme::Dpc, Scheme::Sdfc, Scheme::Sdpc] {
            let pts = ch.leakage_points(scheme).unwrap();
            assert!(
                pts.active < sc.active,
                "{scheme} active {} !< SC {}",
                pts.active,
                sc.active
            );
            assert!(
                pts.standby < sc.standby,
                "{scheme} standby {} !< SC {}",
                pts.standby,
                sc.standby
            );
        }
    }

    #[test]
    fn precharged_standby_savings_dominate() {
        let ch = Characterizer::new(&fast_cfg());
        let sc = ch.leakage_points(Scheme::Sc).unwrap();
        let dfc = ch.leakage_points(Scheme::Dfc).unwrap();
        let dpc = ch.leakage_points(Scheme::Dpc).unwrap();
        let saving = |x: f64| 1.0 - x / sc.standby;
        assert!(
            saving(dpc.standby) > 2.0 * saving(dfc.standby),
            "DPC standby saving {:.3} should dwarf DFC's {:.3}",
            saving(dpc.standby),
            saving(dfc.standby)
        );
    }
}
