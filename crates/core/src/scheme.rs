//! The five crossbar schemes and their dual-Vt assignment plans.
//!
//! | Scheme | Keeper/precharge | Segmented | High-Vt devices |
//! |--------|------------------|-----------|-----------------|
//! | SC     | feedback keeper  | no        | none (baseline) |
//! | DFC    | feedback keeper  | no        | keeper, sleep |
//! | DPC    | clocked precharge| no        | precharge, sleep, off-evaluation driver halves |
//! | SDFC   | feedback keeper  | yes       | DFC set + the entire slack-segment driver |
//! | SDPC   | clocked precharge| yes       | DPC set + the entire slack-segment driver |
//!
//! The *evaluation path* of a pre-charged scheme only ever pulls the
//! output wire one way (the pre-charge supplies the other polarity), so
//! the driver transistors of the unused polarity — I1's NMOS and I2's
//! PMOS for a pre-charged-high wire — are off the critical path and can
//! be high-Vt ("asymmetric-Vt leakage-aware inverters", §2.2).
//! Segmentation gives the short-path segment drivers timing slack, which
//! converts into further high-Vt assignments (§2.3–2.4).

use lnoc_tech::device::VtClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the paper's crossbar designs (plus the SC baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Single-Vt baseline: DFC circuit, all nominal Vt.
    Sc,
    /// Dual-Vt Feedback Crossbar (§2.1, Fig. 1).
    Dfc,
    /// Dual-Vt Pre-Charged Crossbar (§2.2, Fig. 2).
    Dpc,
    /// Segmented Dual-Vt Feedback Crossbar (§2.3, Fig. 3a).
    Sdfc,
    /// Segmented Dual-Vt Pre-Charged Crossbar (§2.4, Fig. 3b).
    Sdpc,
}

impl Scheme {
    /// All schemes in Table 1 column order.
    pub const ALL: [Scheme; 5] = [
        Scheme::Sc,
        Scheme::Dfc,
        Scheme::Dpc,
        Scheme::Sdfc,
        Scheme::Sdpc,
    ];

    /// `true` for the pre-charged designs (DPC, SDPC).
    pub fn is_precharged(self) -> bool {
        matches!(self, Scheme::Dpc | Scheme::Sdpc)
    }

    /// `true` for the segmented designs (SDFC, SDPC).
    pub fn is_segmented(self) -> bool {
        matches!(self, Scheme::Sdfc | Scheme::Sdpc)
    }

    /// `true` if this is the single-Vt baseline.
    pub fn is_baseline(self) -> bool {
        self == Scheme::Sc
    }

    /// Table-1 column header.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Sc => "SC",
            Scheme::Dfc => "DFC",
            Scheme::Dpc => "DPC",
            Scheme::Sdfc => "SDFC",
            Scheme::Sdpc => "SDPC",
        }
    }

    /// The threshold class this scheme assigns to a device role.
    ///
    /// This table *is* the paper's design contribution: which transistor
    /// gets to be high-Vt in each scheme.
    pub fn vt_for(self, role: DeviceRole) -> VtClass {
        use DeviceRole::*;
        use VtClass::*;
        if self == Scheme::Sc {
            return Nominal;
        }
        match role {
            // Pass transistors carry every transition: always nominal.
            PassTransistor => Nominal,
            // The keeper only holds state / restores levels; the
            // pre-charge device has half a clock period of slack.
            KeeperOrPrecharge => High,
            // The sleep transistor only acts on standby entry.
            Sleep => High,
            // Segment-isolation devices are wide (they sit in series
            // with the worst path) so their leakage matters more than
            // their speed: high Vt. Their extra on-resistance is the
            // main source of the segmented schemes' delay penalty.
            SegmentIsolation => High,
            // Critical-polarity driver devices stay nominal; in the
            // segmented schemes the *slack-segment* driver is handled by
            // `vt_for_slack_segment` instead.
            DriverEvalN | DriverEvalP => Nominal,
            // I1's NMOS (rising-output path, receives node A): high-Vt
            // only in the pre-charged schemes. A feedback scheme's I1
            // must flip on the *degraded* high the pass transistors
            // deliver (Vdd − Vth − body effect) to close the keeper
            // loop; raising its NMOS threshold above that level would
            // break level restoration. Pre-charged node A swings rail
            // to rail, so there the constraint vanishes.
            DriverIdleN => {
                if self.is_precharged() {
                    High
                } else {
                    Nominal
                }
            }
            // I2's PMOS (rising-output path, receives the full-swing
            // wire): safe to raise whenever slack exists — pre-charged
            // schemes (pre-charge supplies the rising polarity) and
            // segmented schemes (the paper's SDFC delays — L→H +17 %
            // vs H→L +2 % over SC — show the rising path absorbed the
            // slack-funded high-Vt devices).
            DriverIdleP => {
                if self.is_precharged() || self.is_segmented() {
                    High
                } else {
                    Nominal
                }
            }
        }
    }

    /// Vt for a device role in the *slack* (short-path) segment of a
    /// segmented scheme. Falls back to [`Scheme::vt_for`] for
    /// non-segmented schemes.
    ///
    /// §2.3: "The longer slack removes more transistors from the critical
    /// path, allowing designers to use high Vt transistors." §2.4: "the
    /// longer slack … allows all transistors in their output drivers to
    /// be of high Vt."
    pub fn vt_for_slack_segment(self, role: DeviceRole) -> VtClass {
        use DeviceRole::*;
        if !self.is_segmented() {
            return self.vt_for(role);
        }
        match role {
            DriverEvalN | DriverEvalP | DriverIdleP => VtClass::High,
            // Same regeneration-safety constraint as `vt_for`: a
            // feedback driver's NMOS must flip on a degraded high.
            DriverIdleN => {
                if self.is_precharged() {
                    VtClass::High
                } else {
                    VtClass::Nominal
                }
            }
            other => self.vt_for(other),
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Functional role of a transistor in the bit-slice, the key to the
/// dual-Vt assignment tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceRole {
    /// Crosspoint pass transistor (N1–N4 in Fig. 1).
    PassTransistor,
    /// Feedback keeper (DFC) or clocked pre-charge device (DPC) — P1.
    KeeperOrPrecharge,
    /// Standby pull-down on node A — N5.
    Sleep,
    /// Series isolation device between wire segments (segmented schemes).
    SegmentIsolation,
    /// Driver transistor that moves the output during evaluation
    /// (N-type).
    DriverEvalN,
    /// Driver transistor that moves the output during evaluation
    /// (P-type).
    DriverEvalP,
    /// Driver transistor idle during evaluation (N-type) — pre-charged
    /// schemes park these off the critical path.
    DriverIdleN,
    /// Driver transistor idle during evaluation (P-type).
    DriverIdleP,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolation_devices_are_high_vt() {
        assert_eq!(
            Scheme::Sdfc.vt_for(DeviceRole::SegmentIsolation),
            VtClass::High
        );
        assert_eq!(
            Scheme::Sdpc.vt_for_slack_segment(DeviceRole::SegmentIsolation),
            VtClass::High
        );
    }

    #[test]
    fn sc_is_all_nominal() {
        use DeviceRole::*;
        for role in [
            PassTransistor,
            KeeperOrPrecharge,
            Sleep,
            SegmentIsolation,
            DriverEvalN,
            DriverEvalP,
            DriverIdleN,
            DriverIdleP,
        ] {
            assert_eq!(Scheme::Sc.vt_for(role), VtClass::Nominal);
            assert_eq!(Scheme::Sc.vt_for_slack_segment(role), VtClass::Nominal);
        }
    }

    #[test]
    fn dual_vt_schemes_raise_keeper_and_sleep() {
        for s in [Scheme::Dfc, Scheme::Dpc, Scheme::Sdfc, Scheme::Sdpc] {
            assert_eq!(s.vt_for(DeviceRole::KeeperOrPrecharge), VtClass::High);
            assert_eq!(s.vt_for(DeviceRole::Sleep), VtClass::High);
            assert_eq!(s.vt_for(DeviceRole::PassTransistor), VtClass::Nominal);
        }
    }

    #[test]
    fn precharged_schemes_park_idle_driver_halves() {
        assert_eq!(Scheme::Dpc.vt_for(DeviceRole::DriverIdleN), VtClass::High);
        assert_eq!(Scheme::Dpc.vt_for(DeviceRole::DriverIdleP), VtClass::High);
        assert_eq!(
            Scheme::Dfc.vt_for(DeviceRole::DriverIdleN),
            VtClass::Nominal
        );
    }

    #[test]
    fn segmented_slack_drivers_are_aggressively_high_vt() {
        for s in [Scheme::Sdfc, Scheme::Sdpc] {
            for role in [
                DeviceRole::DriverEvalN,
                DeviceRole::DriverEvalP,
                DeviceRole::DriverIdleP,
            ] {
                assert_eq!(s.vt_for_slack_segment(role), VtClass::High, "{s} {role:?}");
            }
            // But the critical segment keeps nominal evaluation devices.
            assert_eq!(s.vt_for(DeviceRole::DriverEvalN), VtClass::Nominal);
        }
        // Regeneration safety: only the pre-charged slack driver may
        // raise its input-side NMOS.
        assert_eq!(
            Scheme::Sdpc.vt_for_slack_segment(DeviceRole::DriverIdleN),
            VtClass::High
        );
        assert_eq!(
            Scheme::Sdfc.vt_for_slack_segment(DeviceRole::DriverIdleN),
            VtClass::Nominal
        );
    }

    #[test]
    fn flags_match_paper_taxonomy() {
        assert!(!Scheme::Sc.is_precharged() && !Scheme::Sc.is_segmented());
        assert!(!Scheme::Dfc.is_precharged() && !Scheme::Dfc.is_segmented());
        assert!(Scheme::Dpc.is_precharged() && !Scheme::Dpc.is_segmented());
        assert!(!Scheme::Sdfc.is_precharged() && Scheme::Sdfc.is_segmented());
        assert!(Scheme::Sdpc.is_precharged() && Scheme::Sdpc.is_segmented());
        assert!(Scheme::Sc.is_baseline());
    }

    #[test]
    fn table_order() {
        assert_eq!(
            Scheme::ALL.map(|s| s.name()),
            ["SC", "DFC", "DPC", "SDFC", "SDPC"]
        );
    }
}
