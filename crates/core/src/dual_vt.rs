//! Slack-driven dual-Vt assignment.
//!
//! The paper assigns high-Vt by hand per scheme ("the longer slack
//! removes more transistors from the critical path, allowing designers
//! to use high Vt transistors", §2.3). This module makes that procedure
//! explicit and automatic, which serves two purposes in the
//! reproduction:
//!
//! 1. **Validation** — running the optimizer on the SC topology should
//!    rediscover assignments close to the paper's hand-crafted DFC plan
//!    (keeper and sleep first, evaluation devices last).
//! 2. **Ablation** — the design-space example sweeps the delay budget to
//!    show the leakage/delay Pareto the paper's fixed points live on.
//!
//! The algorithm is greedy: rank devices by their leakage contribution
//! in representative static states, try upgrading each to high Vt, keep
//! the upgrade if the worst-case delay stays within the budget.

use crate::config::CrossbarConfig;
use crate::scheme::Scheme;
use crate::slice::{BitSlice, ModelSet};
use lnoc_circuit::analysis::leakage_report;
use lnoc_circuit::dc;
use lnoc_circuit::error::CircuitError;
use lnoc_circuit::stimulus::Stimulus;
use lnoc_circuit::transient::{self, TransientSpec};
use lnoc_circuit::waveform::{propagation_delay, Edge};
use lnoc_tech::device::VtClass;
use lnoc_tech::units::{Seconds, Watts};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One accepted or rejected upgrade step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignmentStep {
    /// Device instance name.
    pub device: String,
    /// Worst-case delay after the trial upgrade (s).
    pub trial_delay: Seconds,
    /// Whether the upgrade was kept.
    pub accepted: bool,
}

/// Result of a slack-driven assignment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DualVtOutcome {
    /// Final per-device Vt plan (only devices upgraded to high Vt).
    pub high_vt_devices: Vec<String>,
    /// Worst-case delay of the final plan (s).
    pub final_delay: Seconds,
    /// All-nominal baseline delay (s).
    pub baseline_delay: Seconds,
    /// Leakage power of the final plan, one slice, idle state (W).
    pub final_leakage: Watts,
    /// All-nominal baseline leakage (W).
    pub baseline_leakage: Watts,
    /// The audit trail.
    pub steps: Vec<AssignmentStep>,
}

impl DualVtOutcome {
    /// Fractional leakage saving of the discovered plan.
    pub fn leakage_saving(&self) -> f64 {
        1.0 - self.final_leakage.0 / self.baseline_leakage.0
    }

    /// Fractional delay cost of the discovered plan.
    pub fn delay_cost(&self) -> f64 {
        self.final_delay.0 / self.baseline_delay.0 - 1.0
    }
}

/// Greedy slack-driven assignment on a scheme's topology.
///
/// `delay_budget` is the tolerated worst-case delay as a multiple of the
/// all-nominal baseline (1.0 = no slowdown allowed; the paper accepts up
/// to ≈1.05).
///
/// # Errors
///
/// Propagates solver failures.
///
/// # Panics
///
/// Panics if `delay_budget < 1.0` (a budget below the baseline is
/// unsatisfiable by construction).
pub fn assign(
    scheme: Scheme,
    cfg: &CrossbarConfig,
    delay_budget: f64,
) -> Result<DualVtOutcome, CircuitError> {
    assert!(
        delay_budget >= 1.0,
        "delay budget below the all-nominal baseline is unsatisfiable"
    );
    let models = ModelSet::new(cfg);

    // Baseline: everything nominal.
    let mut overrides: BTreeMap<String, VtClass> = {
        let probe = BitSlice::build_with_models(scheme, cfg, &models);
        probe
            .placed
            .iter()
            .map(|p| (p.name.clone(), VtClass::Nominal))
            .collect()
    };
    let baseline_delay = worst_delay(scheme, cfg, &models, &overrides)?;
    let baseline_leakage = idle_leakage(scheme, cfg, &models, &overrides)?;
    let budget = baseline_delay * delay_budget;

    // Rank candidates by leakage contribution (descending).
    let ranked = rank_by_leakage(scheme, cfg, &models, &overrides)?;

    let mut steps = Vec::new();
    for device in ranked {
        overrides.insert(device.clone(), VtClass::High);
        let trial = worst_delay(scheme, cfg, &models, &overrides)?;
        let accepted = trial <= budget;
        if !accepted {
            overrides.insert(device.clone(), VtClass::Nominal);
        }
        steps.push(AssignmentStep {
            device,
            trial_delay: Seconds(trial),
            accepted,
        });
    }

    let final_delay = worst_delay(scheme, cfg, &models, &overrides)?;
    let final_leakage = idle_leakage(scheme, cfg, &models, &overrides)?;
    Ok(DualVtOutcome {
        high_vt_devices: overrides
            .iter()
            .filter(|(_, vt)| **vt == VtClass::High)
            .map(|(n, _)| n.clone())
            .collect(),
        final_delay: Seconds(final_delay),
        baseline_delay: Seconds(baseline_delay),
        final_leakage: Watts(final_leakage),
        baseline_leakage: Watts(baseline_leakage),
        steps,
    })
}

/// Newton options honouring the configuration's solve path.
fn solver_opts(cfg: &CrossbarConfig) -> dc::NewtonOptions {
    dc::NewtonOptions {
        solver: cfg.solver,
        ..dc::NewtonOptions::default()
    }
}

/// Worst of the rising/falling data→output delays under a Vt plan.
fn worst_delay(
    scheme: Scheme,
    cfg: &CrossbarConfig,
    models: &ModelSet,
    overrides: &BTreeMap<String, VtClass>,
) -> Result<f64, CircuitError> {
    let vdd = cfg.vdd().0;
    let mut worst: f64 = 0.0;
    for falling in [true, false] {
        let mut slice = BitSlice::build_with_overrides(scheme, cfg, models, overrides);
        let input = if scheme.is_segmented() {
            slice.set_enable_far(true);
            slice.crit_inputs[0]
        } else {
            slice.input_count() - 1
        };
        slice.set_grant(input, true);
        if scheme.is_precharged() {
            slice.set_precharge(false);
        }
        // Prime through a rise from the easy data-0 state; measure the
        // edge at `t_edge` (see `Characterizer::keeper_delay` for why).
        let t_edge = 400.0e-12;
        let edge_len = 5.0e-12;
        let stim = if falling {
            Stimulus::Pwl(vec![
                (0.0, 0.0),
                (40.0e-12, 0.0),
                (45.0e-12, vdd),
                (t_edge, vdd),
                (t_edge + edge_len, 0.0),
            ])
        } else {
            Stimulus::Pwl(vec![(0.0, 0.0), (t_edge, 0.0), (t_edge + edge_len, vdd)])
        };
        slice.drive_data(input, stim);
        let mut spec = TransientSpec::new(t_edge + 400.0e-12, cfg.sim_dt);
        spec.newton.solver = cfg.solver;
        let res = transient::run(&slice.netlist, &spec)?;
        let edge = if falling { Edge::Falling } else { Edge::Rising };
        let d = propagation_delay(
            &res.voltage(slice.inputs[input]),
            edge,
            &res.voltage(slice.out),
            edge,
            vdd,
            t_edge - 10.0e-12,
        )
        .ok_or(CircuitError::NoConvergence {
            analysis: "transient",
            time: t_edge,
            residual: f64::NAN,
        })?;
        worst = worst.max(d);
    }
    Ok(worst)
}

/// Idle-state leakage power of one slice under a Vt plan.
fn idle_leakage(
    scheme: Scheme,
    cfg: &CrossbarConfig,
    models: &ModelSet,
    overrides: &BTreeMap<String, VtClass>,
) -> Result<f64, CircuitError> {
    let slice = BitSlice::build_with_overrides(scheme, cfg, models, overrides);
    let sol = dc::solve_with(&slice.netlist, &solver_opts(cfg), None)?;
    let report = leakage_report(&slice.netlist, &sol);
    Ok(report.power(cfg.vdd()).0)
}

/// Device names ranked by leakage contribution, worst first.
fn rank_by_leakage(
    scheme: Scheme,
    cfg: &CrossbarConfig,
    models: &ModelSet,
    overrides: &BTreeMap<String, VtClass>,
) -> Result<Vec<String>, CircuitError> {
    let slice = BitSlice::build_with_overrides(scheme, cfg, models, overrides);
    let sol = dc::solve_with(&slice.netlist, &solver_opts(cfg), None)?;
    let report = leakage_report(&slice.netlist, &sol);
    let mut ranked: Vec<(String, f64)> = report
        .entries()
        .iter()
        .map(|e| (e.name.clone(), e.breakdown.total().0))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite leakage"));
    Ok(ranked.into_iter().map(|(n, _)| n).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately tiny configuration so the greedy loop (2 transients
    /// per candidate) stays test-sized.
    fn tiny_cfg() -> CrossbarConfig {
        CrossbarConfig {
            flit_bits: 16,
            sim_dt: 1.0e-12,
            ..CrossbarConfig::paper()
        }
    }

    #[test]
    fn optimizer_finds_savings_within_budget() {
        let outcome = assign(Scheme::Sc, &tiny_cfg(), 1.05).unwrap();
        assert!(
            outcome.leakage_saving() > 0.02,
            "some leakage saving expected, got {:.4}",
            outcome.leakage_saving()
        );
        assert!(
            outcome.delay_cost() <= 0.055,
            "budget respected, got {:.4}",
            outcome.delay_cost()
        );
        assert!(!outcome.high_vt_devices.is_empty());
    }

    #[test]
    fn zero_budget_still_accepts_off_path_devices() {
        // Even with no delay headroom, the keeper and sleep devices are
        // off the critical path — the optimizer should find at least one.
        let outcome = assign(Scheme::Sc, &tiny_cfg(), 1.0).unwrap();
        assert!(outcome.delay_cost() <= 1.0e-3);
    }

    #[test]
    #[should_panic(expected = "unsatisfiable")]
    fn budget_below_one_panics() {
        let _ = assign(Scheme::Sc, &tiny_cfg(), 0.9);
    }
}
