//! # lnoc-core — the paper's contribution
//!
//! Implements the four leakage-aware crossbar designs of *"Leakage-Aware
//! Interconnect for On-Chip Network"* (DATE 2005) plus the single-Vt
//! baseline, and the full characterization pipeline that regenerates the
//! paper's Table 1:
//!
//! * [`scheme`] — the five schemes ([`Scheme`]) and their dual-Vt
//!   assignment tables per device role.
//! * [`config`] — the evaluation configuration (5×5, 128-bit flit,
//!   45 nm, 3 GHz — [`CrossbarConfig::paper`]).
//! * [`slice`] — netlist generators that realize Figures 1–3 as circuits.
//! * [`characterize`] — delay, active/standby leakage, mode-transition
//!   energy, minimum idle time and total power per scheme.
//! * [`table1`] — the end-to-end Table 1 pipeline with paper-vs-measured
//!   comparison support.
//! * [`dual_vt`] — the slack-driven high-Vt assignment algorithm as a
//!   reusable procedure (used for the ablation experiments).
//! * [`schematic`] — SPICE/DOT exports of the generated circuits
//!   (regenerating Figures 1–3 as machine-readable schematics).
//!
//! ## Quickstart
//!
//! ```no_run
//! use lnoc_core::{CrossbarConfig, Scheme};
//! use lnoc_core::characterize::Characterizer;
//!
//! let cfg = CrossbarConfig::paper();
//! let ch = Characterizer::new(&cfg);
//! let dfc = ch.characterize(Scheme::Dfc).unwrap();
//! println!("DFC high-to-low delay: {}", dfc.delay_high_to_low);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod characterize;
pub mod config;
pub mod dual_vt;
pub mod ports;
pub mod schematic;
pub mod scheme;
pub mod slice;
pub mod table1;

pub use config::{CrossbarConfig, SliceSizing};
pub use ports::Port;
pub use scheme::{DeviceRole, Scheme};
pub use slice::BitSlice;
pub use table1::{Table1, Table1Row};
