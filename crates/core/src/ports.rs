//! Router port naming for the 5×5 crossbar.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The five ports of a 2-D mesh router. The paper's Figures 1–3 show the
/// path from the four direction inputs toward the `output_PE` port; by
/// symmetry each output port sees the other four ports as inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Port {
    /// North neighbour.
    North,
    /// South neighbour.
    South,
    /// West neighbour.
    West,
    /// East neighbour.
    East,
    /// Local processing element.
    Pe,
}

impl Port {
    /// All ports in figure order.
    pub const ALL: [Port; 5] = [Port::North, Port::South, Port::West, Port::East, Port::Pe];

    /// The four input candidates feeding a given output port (every port
    /// except itself — a router never forwards a flit back out the port
    /// it arrived on).
    pub fn inputs_for(output: Port) -> Vec<Port> {
        Port::ALL.iter().copied().filter(|&p| p != output).collect()
    }

    /// Short label, as used in the figures (`N`, `S`, `W`, `E`, `PE`).
    pub fn label(self) -> &'static str {
        match self {
            Port::North => "N",
            Port::South => "S",
            Port::West => "W",
            Port::East => "E",
            Port::Pe => "PE",
        }
    }

    /// Index in [`Port::ALL`].
    pub fn index(self) -> usize {
        Port::ALL
            .iter()
            .position(|&p| p == self)
            .expect("port is one of ALL")
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_inputs_per_output() {
        for &out in &Port::ALL {
            let ins = Port::inputs_for(out);
            assert_eq!(ins.len(), 4);
            assert!(!ins.contains(&out), "no u-turn input for {out}");
        }
    }

    #[test]
    fn labels_match_figure() {
        assert_eq!(Port::Pe.label(), "PE");
        assert_eq!(Port::North.label(), "N");
    }

    #[test]
    fn index_roundtrip() {
        for (i, &p) in Port::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
