//! Schematic export: regenerates the paper's Figures 1–3 as
//! machine-readable artifacts (SPICE netlists and Graphviz DOT graphs).
//!
//! The paper's figures are circuit schematics, not data plots, so the
//! faithful reproduction artifact is the generated netlist itself: every
//! device of Fig. 1 (pass transistors N1–N4, sleep N5, keeper P1,
//! drivers I1/I2, the RC wire model) appears by name in the export.

use crate::config::CrossbarConfig;
use crate::scheme::Scheme;
use crate::slice::BitSlice;
use lnoc_circuit::netlist::Device;
use std::fmt::Write as _;

/// Which paper figure a scheme's schematic corresponds to.
pub fn figure_label(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::Sc => "baseline (Fig. 1 topology, single Vt)",
        Scheme::Dfc => "Figure 1: output-to-PE path of DFC",
        Scheme::Dpc => "Figure 2: output-to-PE path of pre-charged-high DPC",
        Scheme::Sdfc => "Figure 3(a): segmented dual-Vt feedback crossbar",
        Scheme::Sdpc => "Figure 3(b): segmented dual-Vt pre-charged crossbar",
    }
}

/// Exports a scheme's bit-slice as a SPICE netlist.
pub fn export_spice(scheme: Scheme, cfg: &CrossbarConfig) -> String {
    let slice = BitSlice::build(scheme, cfg);
    slice.netlist.to_spice(figure_label(scheme))
}

/// Exports a scheme's bit-slice as a Graphviz DOT graph: circuit nodes
/// become graph nodes, two-terminal devices become edges, MOSFETs become
/// labelled boxes with gate edges.
pub fn export_dot(scheme: Scheme, cfg: &CrossbarConfig) -> String {
    let slice = BitSlice::build(scheme, cfg);
    let nl = &slice.netlist;
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{}\" {{", figure_label(scheme));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=point, fontsize=9];");

    // Name the interesting nodes.
    for (id, name) in nl.nodes() {
        let _ = writeln!(out, "  n{} [xlabel=\"{name}\"];", id.index());
    }

    for entry in nl.devices() {
        match &entry.device {
            Device::Resistor { a, b, ohms } => {
                let _ = writeln!(
                    out,
                    "  n{} -- n{} [label=\"R {} {:.0}Ω\", color=gray];",
                    a.index(),
                    b.index(),
                    entry.name,
                    ohms
                );
            }
            Device::Capacitor { a, b, farads } => {
                let _ = writeln!(
                    out,
                    "  n{} -- n{} [label=\"C {} {:.1}fF\", color=lightblue, style=dashed];",
                    a.index(),
                    b.index(),
                    entry.name,
                    farads * 1e15
                );
            }
            Device::VSource { pos, neg, .. } => {
                let _ = writeln!(
                    out,
                    "  n{} -- n{} [label=\"V {}\", color=green];",
                    pos.index(),
                    neg.index(),
                    entry.name
                );
            }
            Device::Mosfet(m) => {
                let vt = format!("{:?}", m.model.vt_class()).to_lowercase();
                let color = if vt == "high" { "red" } else { "black" };
                let mid = format!("dev_{}", entry.name);
                let _ = writeln!(
                    out,
                    "  {mid} [shape=box, label=\"{} ({:?} {vt})\", color={color}];",
                    entry.name,
                    m.model.polarity()
                );
                let _ = writeln!(out, "  n{} -- {mid} [label=\"d\"];", m.d.index());
                let _ = writeln!(out, "  n{} -- {mid} [label=\"s\"];", m.s.index());
                let _ = writeln!(
                    out,
                    "  n{} -- {mid} [label=\"g\", style=dotted];",
                    m.g.index()
                );
            }
            // `Device` is non-exhaustive; future variants are skipped.
            _ => {}
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// A one-page ASCII summary of a slice: device roster with roles and Vt
/// classes — the quickest human-readable rendition of Figs. 1–3.
pub fn export_summary(scheme: Scheme, cfg: &CrossbarConfig) -> String {
    let slice = BitSlice::build(scheme, cfg);
    let mut out = String::new();
    let _ = writeln!(out, "{}", figure_label(scheme));
    let _ = writeln!(
        out,
        "{} devices ({} nominal Vt, {} high Vt)",
        slice.placed.len(),
        slice.vt_census().0,
        slice.vt_census().1
    );
    let _ = writeln!(out, "{:<16}{:<22}{:<10}segment", "name", "role", "vt");
    for p in &slice.placed {
        let _ = writeln!(
            out,
            "{:<16}{:<22}{:<10}{}",
            p.name,
            format!("{:?}", p.role),
            format!("{:?}", p.vt),
            if p.slack_segment { "slack" } else { "critical" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CrossbarConfig {
        CrossbarConfig::test_small()
    }

    #[test]
    fn spice_export_has_figure_title() {
        let s = export_spice(Scheme::Dfc, &cfg());
        assert!(s.starts_with("* Figure 1"));
        assert!(s.contains("Mpass0"));
        assert!(s.contains("Msleep_n5"));
    }

    #[test]
    fn dot_export_is_well_formed() {
        for scheme in Scheme::ALL {
            let d = export_dot(scheme, &cfg());
            assert!(d.starts_with("graph"));
            assert!(d.trim_end().ends_with('}'));
            assert!(d.contains("dev_i2_n"), "{scheme} has the output buffer");
        }
    }

    #[test]
    fn dot_marks_high_vt_red() {
        let d = export_dot(Scheme::Dpc, &cfg());
        assert!(d.contains("color=red"), "high-Vt devices highlighted");
    }

    #[test]
    fn summary_lists_every_device() {
        let cfg = cfg();
        let s = export_summary(Scheme::Sdpc, &cfg);
        let slice = BitSlice::build(Scheme::Sdpc, &cfg);
        for p in &slice.placed {
            assert!(s.contains(&p.name), "summary missing {}", p.name);
        }
    }
}
