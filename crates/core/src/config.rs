//! Crossbar configuration: the paper's evaluation point plus every
//! physical knob the reproduction exposes.

use lnoc_circuit::dc::SolverKind;
use lnoc_tech::interconnect::{LayerClass, Wire};
use lnoc_tech::node45::Node45;
use lnoc_tech::units::{Hertz, Volts};
use serde::{Deserialize, Serialize};

/// Transistor widths of one crossbar bit-slice (m).
///
/// Defaults are sized so a 45 nm slice driving the crossbar-span wire
/// lands in the paper's tens-of-ps delay regime; see `DESIGN.md` §5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceSizing {
    /// Crosspoint pass transistor width (N1–N4).
    pub w_pass: f64,
    /// Keeper / pre-charge PMOS width (P1). Deliberately weak so the
    /// pass transistors win the ratioed fight.
    pub w_keeper: f64,
    /// Per-bit share of the sleep transistor (N5 is shared by all bits
    /// of a flit; this is its width divided by the flit width).
    pub w_sleep: f64,
    /// Segment-isolation pass device width (segmented schemes only).
    pub w_iso: f64,
    /// First driver inverter NMOS width.
    pub w_i1_n: f64,
    /// First driver inverter PMOS width.
    pub w_i1_p: f64,
    /// Output buffer inverter NMOS width.
    pub w_i2_n: f64,
    /// Output buffer inverter PMOS width.
    pub w_i2_p: f64,
}

impl Default for SliceSizing {
    fn default() -> Self {
        SliceSizing {
            w_pass: 2.4e-6,
            w_keeper: 1.2e-6,
            w_sleep: 0.45e-6,
            w_iso: 1.8e-6,
            // I1 is skewed to switch low (β_n ≫ β_p): the pass
            // transistors deliver a degraded high (Vdd − Vth − body
            // effect ≈ 0.55 V), and the receiving inverter must flip
            // decisively below that level so the keeper can regenerate
            // the full swing — the standard level-restorer recipe.
            w_i1_n: 3.6e-6,
            w_i1_p: 1.6e-6,
            w_i2_n: 3.6e-6,
            w_i2_p: 14.4e-6,
        }
    }
}

/// Full configuration of a crossbar evaluation.
///
/// `CrossbarConfig::paper()` reproduces the paper's §3 setup: 5×5 matrix
/// crossbar, 128 bits per flit, 45 nm, 3 GHz, 50 % static probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarConfig {
    /// Router radix (ports per router). The paper's is 5.
    pub radix: usize,
    /// Bits per flit (crossbar data width). The paper's is 128.
    pub flit_bits: usize,
    /// Clock frequency for power / idle-time rows.
    pub clock: Hertz,
    /// Probability that a data bit is logic 1 in a given cycle. The
    /// paper's Table 1 assumes 50 %, "the worst case for power".
    pub static_probability: f64,
    /// For segmented schemes: fraction of transfer cycles in which the
    /// slack (near) segment alone carries the transfer, letting the far
    /// sub-slice sleep. Uniform traffic over a half/half split gives 0.5.
    pub slack_only_fraction: f64,
    /// Wire pitch relaxation over the minimum intermediate-layer pitch
    /// (crossbars are routed at a relaxed pitch for crosstalk control).
    pub pitch_factor: f64,
    /// Interconnect layer class for the crossbar spans.
    pub layer: LayerClass,
    /// Receiver load at `output_PE` (next pipeline stage input cap, F).
    pub c_receiver: f64,
    /// Transistor sizing.
    pub sizing: SliceSizing,
    /// Transient time step (s).
    pub sim_dt: f64,
    /// Circuit solve path for every DC/transient this configuration
    /// drives ([`SolverKind::Auto`] picks sparse vs dense by system size;
    /// [`SolverKind::Reference`] is the original full-restamp dense
    /// kernel kept as oracle/baseline).
    pub solver: SolverKind,
    /// Technology node.
    pub tech: Node45,
}

impl CrossbarConfig {
    /// The paper's §3 evaluation configuration.
    pub fn paper() -> Self {
        CrossbarConfig {
            radix: 5,
            flit_bits: 128,
            clock: Hertz(3.0e9),
            static_probability: 0.5,
            slack_only_fraction: 0.5,
            pitch_factor: 2.5,
            layer: LayerClass::Intermediate,
            c_receiver: 10.0e-15,
            sizing: SliceSizing::default(),
            sim_dt: 0.1e-12,
            solver: SolverKind::Auto,
            tech: Node45::tt(),
        }
    }

    /// A reduced configuration for fast unit tests: smaller flit, coarser
    /// time step. Results are qualitatively identical.
    pub fn test_small() -> Self {
        CrossbarConfig {
            flit_bits: 32,
            sim_dt: 0.25e-12,
            ..Self::paper()
        }
    }

    /// Supply voltage (from the technology node).
    pub fn vdd(&self) -> Volts {
        self.tech.vdd()
    }

    /// Clock period.
    pub fn period(&self) -> f64 {
        1.0 / self.clock.0
    }

    /// The physical span of one crossbar dimension: `radix × flit_bits`
    /// wire tracks at the relaxed pitch.
    pub fn span(&self) -> f64 {
        let pitch = self.tech.wire_geometry(self.layer).pitch().0 * self.pitch_factor;
        self.radix as f64 * self.flit_bits as f64 * pitch
    }

    /// The matrix-internal wire hanging on node A (the crosspoint output
    /// column): half a span.
    ///
    /// # Panics
    ///
    /// Never panics for valid configurations (span is positive).
    pub fn matrix_wire(&self) -> Wire {
        Wire::new(self.tech.wire_geometry(self.layer), 0.5 * self.span()).expect("span is positive")
    }

    /// The output wire from the driver to `output_PE`: a full span.
    ///
    /// # Panics
    ///
    /// Never panics for valid configurations.
    pub fn output_wire(&self) -> Wire {
        Wire::new(self.tech.wire_geometry(self.layer), self.span()).expect("span is positive")
    }

    /// Number of bit-slices in the whole crossbar (`radix × flit_bits`
    /// output paths).
    pub fn slice_count(&self) -> usize {
        self.radix * self.flit_bits
    }

    /// Validates ranges that the constructors cannot enforce statically.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.radix < 2 {
            return Err(format!("radix must be ≥ 2, got {}", self.radix));
        }
        if self.flit_bits == 0 {
            return Err("flit_bits must be positive".to_string());
        }
        if !(0.0..=1.0).contains(&self.static_probability) {
            return Err(format!(
                "static_probability must be in [0,1], got {}",
                self.static_probability
            ));
        }
        if !(0.0..=1.0).contains(&self.slack_only_fraction) {
            return Err(format!(
                "slack_only_fraction must be in [0,1], got {}",
                self.slack_only_fraction
            ));
        }
        if self.sim_dt <= 0.0 || self.clock.0 <= 0.0 {
            return Err("sim_dt and clock must be positive".to_string());
        }
        Ok(())
    }
}

impl Default for CrossbarConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section3() {
        let c = CrossbarConfig::paper();
        assert_eq!(c.radix, 5);
        assert_eq!(c.flit_bits, 128);
        assert!((c.clock.0 - 3.0e9).abs() < 1.0);
        assert!((c.static_probability - 0.5).abs() < 1e-12);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn span_is_hundreds_of_microns() {
        let c = CrossbarConfig::paper();
        let span_um = c.span() * 1e6;
        assert!(
            (100.0..500.0).contains(&span_um),
            "span = {span_um} µm — should be a plausible 128-bit 5-port crossbar"
        );
    }

    #[test]
    fn wires_are_constructible_and_rc_sane() {
        let c = CrossbarConfig::paper();
        let out = c.output_wire();
        assert!(out.total_resistance().0 > 50.0);
        assert!(out.total_capacitance().0 > 10.0e-15);
        let matrix = c.matrix_wire();
        assert!(matrix.length().0 < out.length().0);
    }

    #[test]
    fn slice_count() {
        assert_eq!(CrossbarConfig::paper().slice_count(), 640);
    }

    #[test]
    fn validation_catches_bad_probability() {
        let mut c = CrossbarConfig::paper();
        c.static_probability = 1.5;
        assert!(c.validate().is_err());
        c.static_probability = 0.5;
        c.radix = 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn test_config_is_smaller_but_valid() {
        let c = CrossbarConfig::test_small();
        assert!(c.validate().is_ok());
        assert!(c.flit_bits < CrossbarConfig::paper().flit_bits);
    }
}
