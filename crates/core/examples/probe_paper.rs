//! Probe the paper-scale slice delay waveforms.

use lnoc_circuit::stimulus::Stimulus;
use lnoc_circuit::transient::{self, TransientSpec};
use lnoc_core::config::CrossbarConfig;
use lnoc_core::scheme::Scheme;
use lnoc_core::slice::BitSlice;

fn main() {
    let cfg = CrossbarConfig::paper();
    let mut slice = BitSlice::build(Scheme::Sc, &cfg);
    let input = slice.input_count() - 1;
    slice.set_grant(input, true);
    let vdd = 1.0;
    let t_edge = 400.0e-12;
    slice.drive_data(
        input,
        Stimulus::Pwl(vec![
            (0.0, 0.0),
            (40.0e-12, 0.0),
            (45.0e-12, vdd),
            (t_edge, vdd),
            (t_edge + 5.0e-12, 0.0),
        ]),
    );
    let res = transient::run(&slice.netlist, &TransientSpec::new(800.0e-12, cfg.sim_dt)).unwrap();
    for name in ["in3", "a", "w0", "w_end", "out_pe"] {
        let node = slice.netlist.find_node(name).unwrap();
        let w = res.voltage(node);
        print!("{name}: ");
        for t in [100.0, 200.0, 300.0, 390.0, 450.0, 500.0, 600.0, 780.0] {
            print!("{:.2}@{t}ps ", w.value_at(t * 1e-12));
        }
        println!();
    }
}
