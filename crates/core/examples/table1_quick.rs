//! Quick Table 1 generation at the paper configuration — used during
//! calibration; the packaged harness lives in `lnoc-bench`.

use lnoc_core::config::CrossbarConfig;
use lnoc_core::table1::Table1;

fn main() {
    let cfg = CrossbarConfig::paper();
    println!("generating Table 1 at the paper configuration…");
    let t = Table1::generate(&cfg).expect("table generation");
    println!("\n=== measured ===\n{t}");
    println!("=== paper ===\n{}", Table1::paper_reference());
    let claims = t.abstract_claims();
    println!(
        "abstract ranges: active {:.2}%–{:.2}%, standby {:.2}%–{:.2}%, penalty ≤ {:.2}%",
        claims.active_savings_range.0 * 100.0,
        claims.active_savings_range.1 * 100.0,
        claims.standby_savings_range.0 * 100.0,
        claims.standby_savings_range.1 * 100.0,
        claims.delay_penalty_range.1 * 100.0
    );
    let (g_sdfc, g_sdpc) = t.segmentation_gains();
    println!(
        "segmentation gains: SDFC {:.1}% over DFC, SDPC {:.1}% over DPC (paper: ~20%, ~30%)",
        g_sdfc * 100.0,
        g_sdpc * 100.0
    );
    for c in &t.raw {
        println!(
            "{:<5} e/cycle={:.3e}  E_trans={:.3e}  idle={:.3e}W standby={:.3e}W  vt={:?}",
            c.scheme.name(),
            c.dynamic_energy_per_cycle.0,
            c.transition_energy.0,
            c.idle_awake_leakage.0,
            c.standby_leakage.0,
            c.vt_census
        );
    }
}
