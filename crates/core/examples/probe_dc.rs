//! Internal debugging probe: solve the SC slice DC states with verbose
//! fallback behaviour. Not part of the documented example set.

use lnoc_circuit::dc::{self, NewtonOptions};
use lnoc_core::characterize::Characterizer;
use lnoc_core::config::CrossbarConfig;
use lnoc_core::scheme::Scheme;
use lnoc_core::slice::BitSlice;

fn leakage_probe() {
    let cfg = CrossbarConfig {
        sim_dt: 0.5e-12,
        ..CrossbarConfig::test_small()
    };
    let ch = Characterizer::new(&cfg);
    for scheme in [Scheme::Sc, Scheme::Dfc, Scheme::Sdfc] {
        let d = ch.leakage_detail(scheme).unwrap();
        println!(
            "== {scheme}: active={:.3e} idle={:.3e} standby={:.3e}",
            d.active_power(),
            d.idle_awake_power(),
            d.standby.power
        );
        for st in &d.active_states {
            println!(
                "   state '{}' w={:.2} p={:.3e}",
                st.label, st.weight, st.power
            );
            let mut entries: Vec<_> = st.report.entries().to_vec();
            entries.sort_by(|a, b| {
                b.breakdown
                    .total()
                    .0
                    .partial_cmp(&a.breakdown.total().0)
                    .unwrap()
            });
            for e in entries.iter().take(5) {
                println!(
                    "      {:<14} ch={:.2e} g={:.2e}",
                    e.name, e.breakdown.channel.0, e.breakdown.gate.0
                );
            }
        }
    }
}

fn main() {
    leakage_probe();
    let cfg = CrossbarConfig {
        sim_dt: 0.5e-12,
        ..CrossbarConfig::test_small()
    };
    for scheme in [Scheme::Sc, Scheme::Dfc] {
        for data in [true, false] {
            let mut slice = BitSlice::build(scheme, &cfg);
            let input = slice.input_count() - 1;
            slice.set_grant(input, true);
            for i in 0..slice.input_count() {
                slice.set_data(i, data);
            }
            for gmin_floor in [0.0, 1e-12] {
                let mut ladder = vec![1.0e-3, 1.0e-5, 1.0e-7, 1.0e-9, 1.0e-11];
                ladder.push(gmin_floor);
                let opts = NewtonOptions {
                    gmin_ladder: ladder,
                    max_iterations: 300,
                    ..NewtonOptions::default()
                };
                match dc::solve_with(&slice.netlist, &opts, None) {
                    Ok(sol) => {
                        println!(
                            "{scheme} data={data} floor={gmin_floor:.0e}: OK  A={:.4}  out={:.4}  P={:.3e}",
                            sol.voltage(slice.a_main),
                            sol.voltage(slice.out),
                            sol.total_source_power(&slice.netlist)
                        );
                    }
                    Err(e) => println!("{scheme} data={data} floor={gmin_floor:.0e}: FAIL {e}"),
                }
            }
        }
    }

    // Delay transient probe: SC falling data.
    use lnoc_circuit::stimulus::Stimulus;
    use lnoc_circuit::transient::{self, TransientSpec};
    let mut slice = BitSlice::build(Scheme::Sc, &cfg);
    let input = slice.input_count() - 1;
    slice.set_grant(input, true);
    let t_edge = 120.0e-12;
    slice.drive_data(input, Stimulus::ramp(1.0, 0.0, t_edge, 5.0e-12));
    match transient::run(
        &slice.netlist,
        &TransientSpec::new(t_edge + 200.0e-12, cfg.sim_dt),
    ) {
        Ok(res) => {
            let show = |name: &str| {
                let node = slice.netlist.find_node(name).unwrap();
                let w = res.voltage(node);
                println!(
                    "  {name}: start={:.3} end={:.3} min={:.3} max={:.3}",
                    w.first_value(),
                    w.last_value(),
                    w.min(),
                    w.max()
                );
            };
            println!("SC falling-data transient:");
            show("in3");
            show("a_far");
            show("a");
            show("w0");
            show("w_end");
            show("out_pe");
        }
        Err(e) => println!("SC transient FAIL: {e}"),
    }

    // Rising case for SC and DFC, with explicit delay measurement.
    use lnoc_circuit::waveform::{propagation_delay, Edge};
    for scheme in [Scheme::Sc, Scheme::Dfc] {
        for (label, from, to, edge) in [
            ("fall", 1.0, 0.0, Edge::Falling),
            ("rise", 0.0, 1.0, Edge::Rising),
        ] {
            let mut slice = BitSlice::build(scheme, &cfg);
            let input = slice.input_count() - 1;
            slice.set_grant(input, true);
            slice.drive_data(input, Stimulus::ramp(from, to, t_edge, 5.0e-12));
            match transient::run(
                &slice.netlist,
                &TransientSpec::new(t_edge + 200.0e-12, cfg.sim_dt),
            ) {
                Ok(res) => {
                    let w_in = res.voltage(slice.inputs[input]);
                    let w_out = res.voltage(slice.out);
                    let d = propagation_delay(&w_in, edge, &w_out, edge, 1.0, t_edge - 10.0e-12);
                    println!(
                        "{scheme} {label}: delay={:?} out(start={:.3},end={:.3},min={:.3},max={:.3}) a(end={:.3})",
                        d.map(|x| x * 1e12),
                        w_out.first_value(),
                        w_out.last_value(),
                        w_out.min(),
                        w_out.max(),
                        res.voltage(slice.a_main).last_value(),
                    );
                }
                Err(e) => println!("{scheme} {label}: transient FAIL {e}"),
            }
        }
    }
}
