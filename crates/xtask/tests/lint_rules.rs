//! Pins the lint engine's behavior against the fixture corpus: each
//! known-bad snippet must fire the right rule at the right line, the
//! clean fixture must produce nothing, and the workspace itself must
//! lint clean (the same invariant CI gates on).

use std::path::Path;

fn lint_fixture(name: &str) -> Vec<(&'static str, u32)> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    // Fixtures pretend to live in the netsim kernel, the strictest
    // scope (all content rules apply there).
    let rel = format!("crates/netsim/src/{name}");
    xtask::lint_source(&rel, &src)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn hash_iteration_fires_per_site() {
    assert_eq!(
        lint_fixture("bad_hash_iter.rs"),
        vec![("hash-iter", 11), ("hash-iter", 12)],
        "both the .keys() call and the for-loop over the HashSet must fire"
    );
}

#[test]
fn wall_clock_fires_on_each_source() {
    assert_eq!(
        lint_fixture("bad_wall_clock.rs"),
        vec![("wall-clock", 5), ("wall-clock", 7), ("wall-clock", 8)],
        "Instant::now, SystemTime, and thread_rng must each fire"
    );
}

#[test]
fn atomics_outside_facade_fire_per_mention() {
    assert_eq!(
        lint_fixture("bad_atomic.rs"),
        vec![
            ("atomic-outside-facade", 2),
            ("atomic-outside-facade", 5),
            ("atomic-outside-facade", 5),
        ],
        "the use declaration and both fully-qualified mentions must fire"
    );
}

#[test]
fn relaxed_without_waiver_fires_waivered_does_not() {
    assert_eq!(
        lint_fixture("bad_relaxed.rs"),
        vec![("relaxed-needs-waiver", 5)],
        "the unwaivered store fires; the justified load is suppressed"
    );
}

#[test]
fn unsafe_without_safety_comment_fires() {
    assert_eq!(
        lint_fixture("bad_unsafe.rs"),
        vec![("unsafe-needs-safety", 3)],
        "the bare unsafe block fires; the SAFETY-commented one does not"
    );
}

#[test]
fn float_accumulation_fires_on_compound_and_self_add() {
    assert_eq!(
        lint_fixture("bad_float_accum.rs"),
        vec![("float-into-stats", 8), ("float-into-stats", 10)],
        "`x += …` and `x = x + …` on f64 names fire; the u64 counter does not"
    );
}

#[test]
fn waiver_meta_rules_fire() {
    assert_eq!(
        lint_fixture("bad_waiver.rs"),
        vec![
            ("waiver-needs-reason", 5),
            ("waiver-unknown-rule", 10),
            ("waiver-unused", 15),
        ],
        "missing reason, unknown rule name, and dead waiver must each fire"
    );
}

#[test]
fn clean_fixture_is_clean() {
    assert_eq!(
        lint_fixture("clean.rs"),
        vec![],
        "the clean fixture must produce no findings"
    );
}

#[test]
fn rules_out_of_scope_do_not_fire() {
    let src = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_wall_clock.rs"),
    )
    .expect("fixture");
    // crates/bench is exactly where wall-clock reads are allowed.
    let findings = xtask::lint_source("crates/bench/src/bin/bad_wall_clock.rs", &src);
    assert!(
        findings.iter().all(|f| f.rule != "wall-clock"),
        "wall-clock must not fire outside kernel code, got {findings:?}"
    );
}

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let (files, findings) = xtask::lint_workspace(root);
    assert!(files > 50, "walk found only {files} files — broken root?");
    assert!(
        findings.is_empty(),
        "workspace must lint clean, got:\n{}",
        findings
            .iter()
            .map(|(rel, f)| format!("{rel}:{}: [{}] {}", f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn audit_lists_waivers_with_their_reasons() {
    let src = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_relaxed.rs"),
    )
    .expect("fixture");
    let waivers = xtask::rules::list_waivers(&xtask::lexer::lex(&src));
    assert_eq!(waivers.len(), 1, "fixture carries exactly one waiver");
    assert_eq!(waivers[0].line, 9);
    assert_eq!(waivers[0].rules, ["relaxed-needs-waiver"]);
    assert_eq!(
        waivers[0].reason.as_deref(),
        Some("reader side of a"),
        "reason is the comment tail after `--` (line comments do not merge)"
    );
}

#[test]
fn workspace_waivers_are_all_justified() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let (files, records) = xtask::audit_waivers(root);
    assert!(files > 50, "walk found only {files} files — broken root?");
    // `workspace_lints_clean` already rejects reasonless waivers; this
    // pins that the audit walker sees the same inventory and that the
    // audit output can never print `<MISSING REASON>` on a clean tree.
    for (rel, w) in &records {
        assert!(
            w.reason.is_some(),
            "{rel}:{}: waiver lint:allow({}) has no reason",
            w.line,
            w.rules.join(", ")
        );
    }
}
