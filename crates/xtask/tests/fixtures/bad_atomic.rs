// Fixture: raw atomics outside the sync facade (never compiled).
use std::sync::atomic::{AtomicU64, Ordering};

fn sneak_a_counter() -> u64 {
    static HITS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    HITS.fetch_add(1, Ordering::SeqCst)
}
