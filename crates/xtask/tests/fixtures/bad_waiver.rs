// Fixture: malformed waivers (never compiled).
use crate::sync::{AtomicU64, Ordering};

fn no_reason(slot: &AtomicU64) -> u64 {
    // lint:allow(relaxed-needs-waiver)
    slot.load(Ordering::Relaxed)
}

fn unknown_rule(slot: &AtomicU64) -> u64 {
    // lint:allow(relaxed-needs-waiver, no-such-rule) -- misspelled.
    slot.load(Ordering::Relaxed)
}

fn unused(slot: &AtomicU64) -> u64 {
    // lint:allow(relaxed-needs-waiver) -- nothing relaxed below.
    slot.load(Ordering::Acquire)
}
