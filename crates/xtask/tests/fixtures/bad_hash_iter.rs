// Fixture: HashMap/HashSet iteration in a sim path (never compiled).
use std::collections::{HashMap, HashSet};

struct Table {
    routes: HashMap<u32, u32>,
}

fn order_dependent(t: &Table) -> Vec<u32> {
    let mut seen = HashSet::new();
    seen.insert(1u32);
    let mut out: Vec<u32> = t.routes.keys().copied().collect();
    for v in &seen {
        out.push(*v);
    }
    out
}
