// Fixture: unjustified relaxed ordering (never compiled).
use crate::sync::{AtomicU64, Ordering};

fn publish(slot: &AtomicU64, v: u64) {
    slot.store(v, Ordering::Relaxed);
}

fn read(slot: &AtomicU64) -> u64 {
    // lint:allow(relaxed-needs-waiver) -- reader side of a
    // barrier-ordered publish; the edge lives in SpinBarrier::wait.
    slot.load(Ordering::Relaxed)
}
