// Fixture: wall-clock and OS entropy in kernel code (never compiled).
use std::time::Instant;

fn timed_step() -> u64 {
    let t0 = Instant::now();
    step();
    let _ = std::time::SystemTime::now();
    let r: u64 = rand::thread_rng().gen();
    t0.elapsed().as_nanos() as u64 + r
}
