// Fixture: float accumulation into stats (never compiled).
struct Stats {
    latency_sum: f64,
    samples: u64,
}

fn record(stats: &mut Stats, latency_sum: f64, sample: f64) {
    stats.latency_sum += sample;
    let mut local: f64 = latency_sum;
    local = local + sample;
    stats.samples += 1;
}
