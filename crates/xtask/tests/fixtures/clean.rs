// Fixture: everything above, done right (never compiled).
use crate::sync::{AtomicU64, Ordering};
use std::collections::BTreeMap;

struct Table {
    routes: BTreeMap<u32, u32>,
    latency_sum: u64,
}

fn deterministic(t: &mut Table) -> Vec<u32> {
    // BTreeMap iterates in key order: deterministic, no finding.
    t.latency_sum += 1;
    t.routes.keys().copied().collect()
}

fn publish(slot: &AtomicU64, v: u64) {
    // lint:allow(relaxed-needs-waiver) -- ordered by the phase
    // barrier's release edge; peers only read after crossing it.
    slot.store(v, Ordering::Relaxed);
}

fn peek(v: &[u64], i: usize) -> u64 {
    // SAFETY: `i` is bound-checked by the caller.
    unsafe { *v.get_unchecked(i) }
}
