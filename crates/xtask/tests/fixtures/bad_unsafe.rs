// Fixture: unsafe without a SAFETY comment (never compiled).
fn peek(v: &[u64]) -> u64 {
    unsafe { *v.get_unchecked(0) }
}

fn peek_justified(v: &[u64], i: usize) -> u64 {
    // SAFETY: callers bound-check `i` against `v.len()` at the single
    // call site above.
    unsafe { *v.get_unchecked(i) }
}
