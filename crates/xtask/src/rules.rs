//! The lint rule engine: six determinism/soundness rules, inline
//! waivers, and the waiver meta-rules.
//!
//! ## Waiver syntax
//!
//! ```text
//! // lint:allow(rule-a, rule-b) -- why this occurrence is sound
//! ```
//!
//! A waiver comment applies to the first following non-comment source
//! line (plus one continuation line, so rustfmt line breaks cannot
//! silently detach it); a trailing waiver applies to its own line.
//! Every waiver must carry a `-- reason` (enforced by
//! `waiver-needs-reason`), must name known rules
//! (`waiver-unknown-rule`), and must actually suppress something
//! (`waiver-unused`) — dead waivers rot into false documentation.

use crate::lexer::{Comment, Lexed, Tok, TokKind};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired (one of [`RULES`]).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// Every rule the engine knows, content rules first, then the waiver
/// meta-rules (which cannot themselves be waived).
pub const RULES: &[&str] = &[
    "hash-iter",
    "wall-clock",
    "atomic-outside-facade",
    "relaxed-needs-waiver",
    "unsafe-needs-safety",
    "float-into-stats",
    "waiver-needs-reason",
    "waiver-unknown-rule",
    "waiver-unused",
];

/// A parsed `lint:allow` waiver.
#[derive(Debug)]
struct Waiver {
    rules: Vec<String>,
    reason: Option<String>,
    comment_line: u32,
    /// First source line the waiver covers (it also covers the next
    /// line, see module docs); `None` when no code follows.
    applies_line: Option<u32>,
    used: bool,
}

/// One waiver as the audit sees it: where it sits, which rules it
/// suppresses, and the justification its author gave. Produced by
/// [`list_waivers`] so `cargo run -p xtask -- audit-waivers` can print
/// the workspace's complete escape-hatch inventory for review.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverRecord {
    /// Line of the `lint:allow` comment itself.
    pub line: u32,
    /// Rule names the waiver suppresses, as written.
    pub rules: Vec<String>,
    /// The `-- reason` text, if any (its absence is a lint finding).
    pub reason: Option<String>,
}

/// Lists every `lint:allow` waiver in a lexed file, reusing the exact
/// parse the lint itself suppresses findings with — the audit can
/// never disagree with the enforcement about what counts as a waiver.
pub fn list_waivers(lexed: &Lexed) -> Vec<WaiverRecord> {
    parse_waivers(lexed)
        .into_iter()
        .map(|w| WaiverRecord {
            line: w.comment_line,
            rules: w.rules,
            reason: w.reason,
        })
        .collect()
}

impl Waiver {
    fn covers(&self, line: u32) -> bool {
        self.applies_line
            .is_some_and(|a| line == a || line == a + 1)
    }
}

fn parse_waivers(lexed: &Lexed) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        // Waivers live in plain comments only: doc comments (`///`,
        // `//!`) are rendered documentation, where `lint:allow` can
        // legitimately appear as prose (e.g. the syntax example above).
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            rest = &rest[pos + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let rules: Vec<String> = rest[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let after = rest[close + 1..].trim_start();
            let reason = after
                .strip_prefix("--")
                .map(str::trim)
                .filter(|r| !r.is_empty())
                .map(str::to_string);
            out.push(Waiver {
                rules,
                reason,
                comment_line: c.line,
                applies_line: waiver_target(c, lexed),
                used: false,
            });
            rest = &rest[close + 1..];
        }
    }
    out
}

/// The line a waiver comment covers: its own line if code precedes it
/// there (trailing comment), otherwise the first token line after it.
fn waiver_target(c: &Comment, lexed: &Lexed) -> Option<u32> {
    if lexed.toks.iter().any(|t| t.line == c.line) {
        return Some(c.line);
    }
    lexed.toks.iter().map(|t| t.line).find(|&l| l > c.end_line)
}

/// Runs `enabled` content rules plus the meta-rules over a lexed
/// file. Findings covered by a matching waiver are suppressed (and
/// the waiver is marked used).
pub fn run(lexed: &Lexed, enabled: &[&'static str]) -> Vec<Finding> {
    let mut waivers = parse_waivers(lexed);
    let mut raw: Vec<Finding> = Vec::new();
    for &rule in enabled {
        match rule {
            "hash-iter" => hash_iter(lexed, &mut raw),
            "wall-clock" => wall_clock(lexed, &mut raw),
            "atomic-outside-facade" => atomic_outside_facade(lexed, &mut raw),
            "relaxed-needs-waiver" => relaxed_needs_waiver(lexed, &mut raw),
            "unsafe-needs-safety" => unsafe_needs_safety(lexed, &mut raw),
            "float-into-stats" => float_into_stats(lexed, &mut raw),
            other => unreachable!("unknown rule {other}"),
        }
    }
    let mut out = Vec::new();
    for f in raw {
        let mut suppressed = false;
        for w in waivers.iter_mut() {
            if w.covers(f.line) && w.rules.iter().any(|r| r == f.rule) {
                w.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(f);
        }
    }
    for w in &waivers {
        if w.reason.is_none() {
            out.push(Finding {
                rule: "waiver-needs-reason",
                line: w.comment_line,
                message: "waiver lacks a `-- reason` justification".into(),
            });
        }
        let unknown: Vec<&String> = w
            .rules
            .iter()
            .filter(|r| !RULES.contains(&r.as_str()))
            .collect();
        if let Some(u) = unknown.first() {
            out.push(Finding {
                rule: "waiver-unknown-rule",
                line: w.comment_line,
                message: format!("waiver names unknown rule `{u}`"),
            });
        } else if !w.used {
            out.push(Finding {
                rule: "waiver-unused",
                line: w.comment_line,
                message: "waiver suppresses nothing — remove it".into(),
            });
        }
    }
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

fn ident(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

fn any_ident(toks: &[Tok], i: usize, names: &[&str]) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && names.contains(&t.text.as_str()))
}

fn punct(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Punct(c))
}

fn path_sep(toks: &[Tok], i: usize) -> bool {
    punct(toks, i, ':') && punct(toks, i + 1, ':')
}

/// Methods whose call on a `HashMap`/`HashSet` visits entries in
/// nondeterministic order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// `hash-iter`: iteration over a `HashMap`/`HashSet` in a simulation
/// path. The iteration order is randomized per process, so anything
/// order-dependent downstream (output vectors, accumulation order,
/// tie-breaking) silently loses determinism. Detection is lexical:
/// names bound to a hash type in this file (`x: HashMap<…>`,
/// `let x = HashSet::new()`), then flagged at `x.iter()`-family calls
/// and `for … in &x` loops.
fn hash_iter(lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    let mut bound: Vec<&str> = Vec::new();
    for i in 0..toks.len() {
        if !any_ident(toks, i, &["HashMap", "HashSet"]) {
            continue;
        }
        // Walk back over a leading path (`std::collections::HashMap`).
        let mut start = i;
        while start >= 3 && path_sep(toks, start - 2) && toks[start - 3].kind == TokKind::Ident {
            start -= 3;
        }
        // `name: HashMap<…>` (field, param, or annotated let)…
        if start >= 2
            && punct(toks, start - 1, ':')
            && !punct(toks, start - 2, ':')
            && toks[start - 2].kind == TokKind::Ident
        {
            bound.push(&toks[start - 2].text);
        // …or `let name = HashMap::new()`.
        } else if start >= 2
            && punct(toks, start - 1, '=')
            && toks[start - 2].kind == TokKind::Ident
        {
            bound.push(&toks[start - 2].text);
        }
    }
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !bound.contains(&t.text.as_str()) {
            continue;
        }
        // `x.iter()` family.
        if punct(toks, i + 1, '.')
            && any_ident(toks, i + 2, ITER_METHODS)
            && punct(toks, i + 3, '(')
        {
            out.push(Finding {
                rule: "hash-iter",
                line: t.line,
                message: format!(
                    "iteration over hash-ordered `{}` — per-process random order breaks \
                     determinism; use a BTreeMap/BTreeSet or sort first",
                    t.text
                ),
            });
        }
        // `for pat in [&[mut]] x {`.
        let mut j = i;
        while j >= 1 && (punct(toks, j - 1, '&') || ident(toks, j - 1, "mut")) {
            j -= 1;
        }
        if j >= 1 && ident(toks, j - 1, "in") && punct(toks, i + 1, '{') {
            out.push(Finding {
                rule: "hash-iter",
                line: t.line,
                message: format!(
                    "for-loop over hash-ordered `{}` — per-process random order breaks \
                     determinism; use a BTreeMap/BTreeSet or sort first",
                    t.text
                ),
            });
        }
    }
}

/// `wall-clock`: nondeterministic time or entropy sources inside
/// kernel code. Simulation behavior must be a function of the config
/// and seed alone — timing belongs in `crates/bench`.
fn wall_clock(lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if ident(toks, i, "Instant") && path_sep(toks, i + 1) && ident(toks, i + 3, "now") {
            out.push(Finding {
                rule: "wall-clock",
                line: toks[i].line,
                message: "`Instant::now` in kernel code — wall-clock reads make runs \
                          irreproducible; timing belongs in crates/bench"
                    .into(),
            });
        }
        if ident(toks, i, "SystemTime") {
            out.push(Finding {
                rule: "wall-clock",
                line: toks[i].line,
                message: "`SystemTime` in kernel code — wall-clock reads make runs \
                          irreproducible"
                    .into(),
            });
        }
        if ident(toks, i, "thread_rng") {
            out.push(Finding {
                rule: "wall-clock",
                line: toks[i].line,
                message: "`thread_rng` in kernel code — OS entropy breaks seeded \
                          reproducibility; use the run's seeded StdRng"
                    .into(),
            });
        }
    }
}

/// `atomic-outside-facade`: any mention of `std::sync::atomic` outside
/// `crates/netsim/src/sync/`. Atomics routed through the facade are
/// auditable and model-checkable; a stray atomic elsewhere is
/// unordered concurrency the tooling cannot see.
fn atomic_outside_facade(lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if ident(toks, i, "sync") && path_sep(toks, i + 1) && ident(toks, i + 3, "atomic") {
            out.push(Finding {
                rule: "atomic-outside-facade",
                line: toks[i].line,
                message: "`std::sync::atomic` referenced outside the `netsim::sync` facade — \
                          route atomics through the facade so they are audited and \
                          model-checked"
                    .into(),
            });
        }
    }
}

/// `relaxed-needs-waiver`: every `Ordering::Relaxed` must carry a
/// waiver whose reason names the invariant making relaxed sufficient
/// (a happens-before edge established elsewhere, a coherence-only
/// argument, …). Unjustified relaxed orderings are where torn
/// protocols hide.
fn relaxed_needs_waiver(lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if ident(toks, i, "Ordering") && path_sep(toks, i + 1) && ident(toks, i + 3, "Relaxed") {
            out.push(Finding {
                rule: "relaxed-needs-waiver",
                line: toks[i + 3].line,
                message: "`Ordering::Relaxed` without a justification waiver — state the \
                          invariant that makes relaxed sufficient via \
                          `// lint:allow(relaxed-needs-waiver) -- reason`"
                    .into(),
            });
        }
    }
}

/// `unsafe-needs-safety`: every `unsafe` occurrence (block, fn, impl)
/// needs a `// SAFETY:` comment on the same line or within the three
/// lines above it.
fn unsafe_needs_safety(lexed: &Lexed, out: &mut Vec<Finding>) {
    for t in &lexed.toks {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let justified = lexed
            .comments
            .iter()
            .any(|c| c.text.contains("SAFETY:") && c.line <= t.line && c.end_line + 3 >= t.line);
        if !justified {
            out.push(Finding {
                rule: "unsafe-needs-safety",
                line: t.line,
                message: "`unsafe` without a `// SAFETY:` comment stating the proof \
                          obligation"
                    .into(),
            });
        }
    }
}

/// `float-into-stats`: compound float accumulation (`x += …`,
/// `x = x + …`) in simulation paths. Float addition is not
/// associative, so accumulation order changes results across kernels
/// and shard counts — statistics must accumulate in integers (or via
/// the explicitly-ordered `NetworkStats::merge` reduction).
/// Detection: names annotated `f32`/`f64` in this file, flagged at
/// compound-assignment sites.
fn float_into_stats(lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    let mut floats: Vec<&str> = Vec::new();
    for i in 0..toks.len() {
        if !any_ident(toks, i, &["f32", "f64"]) {
            continue;
        }
        // `name: [&][mut] f64`.
        let mut j = i;
        while j >= 1 && (punct(toks, j - 1, '&') || ident(toks, j - 1, "mut")) {
            j -= 1;
        }
        if j >= 2
            && punct(toks, j - 1, ':')
            && !punct(toks, j - 2, ':')
            && toks[j - 2].kind == TokKind::Ident
        {
            floats.push(&toks[j - 2].text);
        }
    }
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !floats.contains(&t.text.as_str()) {
            continue;
        }
        let compound = ['+', '-', '*', '/']
            .iter()
            .any(|&op| punct(toks, i + 1, op) && punct(toks, i + 2, '='));
        let self_add = punct(toks, i + 1, '=')
            && !punct(toks, i + 2, '=')
            && ident(toks, i + 2, &t.text)
            && punct(toks, i + 3, '+');
        if compound || self_add {
            out.push(Finding {
                rule: "float-into-stats",
                line: t.line,
                message: format!(
                    "float accumulation into `{}` — non-associative adds make results \
                     depend on reduction order; accumulate in integers or go through \
                     the deterministic merge path",
                    t.text
                ),
            });
        }
    }
}
