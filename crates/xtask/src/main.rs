//! `cargo run -p xtask -- lint [root]` — run the determinism and
//! soundness lint over the workspace. Exits nonzero on any finding,
//! so CI can gate on it.
//!
//! `cargo run -p xtask -- audit-waivers [root]` — print every
//! `lint:allow` waiver in the workspace with its rules and reason.
//! The lint already rejects waivers without a reason; the audit makes
//! the surviving inventory visible in CI logs so reviewers see each
//! escape hatch a change introduces, not just that it was justified.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(workspace_root);
            let (files, findings) = xtask::lint_workspace(&root);
            for (rel, f) in &findings {
                println!("{rel}:{}: [{}] {}", f.line, f.rule, f.message);
            }
            if findings.is_empty() {
                println!("xtask lint: {files} files clean");
                ExitCode::SUCCESS
            } else {
                println!("xtask lint: {} finding(s) in {files} files", findings.len());
                ExitCode::FAILURE
            }
        }
        Some("audit-waivers") => {
            let root = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(workspace_root);
            let (files, records) = xtask::audit_waivers(&root);
            for (rel, w) in &records {
                let reason = w.reason.as_deref().unwrap_or("<MISSING REASON>");
                println!(
                    "{rel}:{}: lint:allow({}) -- {reason}",
                    w.line,
                    w.rules.join(", ")
                );
            }
            println!(
                "xtask audit-waivers: {} waiver(s) across {files} files",
                records.len()
            );
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- <lint | audit-waivers> [workspace-root]");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}
