//! `cargo run -p xtask -- lint [root]` — run the determinism and
//! soundness lint over the workspace. Exits nonzero on any finding,
//! so CI can gate on it.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(workspace_root);
            let (files, findings) = xtask::lint_workspace(&root);
            for (rel, f) in &findings {
                println!("{rel}:{}: [{}] {}", f.line, f.rule, f.message);
            }
            if findings.is_empty() {
                println!("xtask lint: {files} files clean");
                ExitCode::SUCCESS
            } else {
                println!("xtask lint: {} finding(s) in {files} files", findings.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [workspace-root]");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}
