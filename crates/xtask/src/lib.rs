//! Workspace automation for the leakage-NoC repo. The one task so far
//! is the determinism/soundness lint:
//!
//! ```text
//! cargo run -p xtask -- lint
//! ```
//!
//! The rules and the waiver syntax are documented in [`rules`]; which
//! rule applies where is decided by [`rule_scope`] below. Vendored
//! crates, build output, and the lint's own test fixtures are never
//! walked.

#![deny(unsafe_code)]

pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use rules::{Finding, WaiverRecord, RULES};

/// The waiver meta-rules, always enabled.
const META_RULES: &[&str] = &[
    "waiver-needs-reason",
    "waiver-unknown-rule",
    "waiver-unused",
];

/// Decides whether a content rule applies to a file, by
/// workspace-relative path (forward slashes).
///
/// Scopes, with their rationale:
/// * `hash-iter` — simulation/characterization result paths
///   (`netsim`, `circuit`, `core`): anything order-dependent there
///   changes published numbers.
/// * `wall-clock` — kernel code (`netsim`, `circuit`); `crates/bench`
///   exists precisely to hold the timing.
/// * `atomic-outside-facade` — everywhere except the facade itself
///   (`crates/netsim/src/sync/`), which is the one audited,
///   model-checked home for atomics.
/// * `relaxed-needs-waiver` — everywhere except the facade's shadow
///   instrumentation (`sync/shadow.rs`, `sync/model.rs`): the mirror
///   writes there are serialized by the explorer's global lock, and
///   the *modeled* orderings are what the checker exercises.
/// * `unsafe-needs-safety` — everywhere.
/// * `float-into-stats` — `netsim` except `stats.rs`, whose
///   `NetworkStats::merge` is the one sanctioned (explicitly ordered)
///   reduction path.
pub fn rule_scope(rule: &str, rel: &str) -> bool {
    let netsim = rel.starts_with("crates/netsim/src");
    let kernel = netsim || rel.starts_with("crates/circuit/src");
    match rule {
        "hash-iter" => kernel || rel.starts_with("crates/core/src"),
        "wall-clock" => kernel,
        "atomic-outside-facade" => !rel.starts_with("crates/netsim/src/sync"),
        "relaxed-needs-waiver" => {
            rel != "crates/netsim/src/sync/shadow.rs" && rel != "crates/netsim/src/sync/model.rs"
        }
        "unsafe-needs-safety" => true,
        "float-into-stats" => netsim && rel != "crates/netsim/src/stats.rs",
        _ => false,
    }
}

/// Lints one file's source, scoped by its workspace-relative path.
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    let enabled: Vec<&'static str> = RULES
        .iter()
        .copied()
        .filter(|r| !META_RULES.contains(r) && rule_scope(r, rel))
        .collect();
    rules::run(&lexer::lex(src), &enabled)
}

/// Directories never walked: vendored crates (external idiom, their
/// own rules), build output, VCS metadata, generated artifacts, and
/// the lint's own deliberately-bad fixtures.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "out", "fixtures"];

/// Walks every `.rs` file under `root` (sorted, so output order — and
/// therefore CI logs — are deterministic) and lints each in scope.
/// Returns `(files_linted, findings)`; findings carry
/// workspace-relative paths.
pub fn lint_workspace(root: &Path) -> (usize, Vec<(String, Finding)>) {
    let mut files = Vec::new();
    collect_rs(root, &mut files);
    files.sort();
    let mut findings = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = std::fs::read_to_string(f) else {
            continue;
        };
        for finding in lint_source(&rel, &src) {
            findings.push((rel.clone(), finding));
        }
    }
    (files.len(), findings)
}

/// Walks the same files as [`lint_workspace`] and inventories every
/// `lint:allow` waiver instead of enforcing rules. Returns
/// `(files_walked, records)`; records carry workspace-relative paths
/// and are sorted by path then line, so the audit output is a stable,
/// reviewable list of every escape hatch in the workspace.
pub fn audit_waivers(root: &Path) -> (usize, Vec<(String, WaiverRecord)>) {
    let mut files = Vec::new();
    collect_rs(root, &mut files);
    files.sort();
    let mut records = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = std::fs::read_to_string(f) else {
            continue;
        };
        for record in rules::list_waivers(&lexer::lex(&src)) {
            records.push((rel.clone(), record));
        }
    }
    (files.len(), records)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}
