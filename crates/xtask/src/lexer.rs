//! A small hand-rolled Rust lexer — just enough structure for the
//! lint rules: identifiers, punctuation, literals, and (crucially)
//! comments with line spans, since waivers and `// SAFETY:`
//! justifications live in comments.
//!
//! Deliberately not a full parser (no `syn`: the build is offline and
//! the rules are lexical). It does handle the token forms that would
//! otherwise cause false positives: nested block comments, string and
//! raw/byte string literals (so `"unsafe"` in a message is not an
//! `unsafe` keyword), char literals vs. lifetimes, and raw
//! identifiers.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (multi-char operators arrive as
    /// consecutive tokens: `+=` is `+`, `=`).
    Punct(char),
    /// String, raw string, or byte-string literal.
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Numeric literal (integer part; `1.5` lexes as `1`, `.`, `5`).
    Num,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (empty for literals, whose content the rules
    /// never inspect).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block) with its line span and body text.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on.
    pub end_line: u32,
    /// Comment body (without the `//` / `/*` markers).
    pub text: String,
}

/// Lexer output: the token stream and the comment list, both in
/// source order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens.
    pub toks: Vec<Tok>,
    /// All comments.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Unterminated constructs consume to end of input
/// rather than erroring: the lint runs on code `rustc` already
/// accepted (or on fixtures, where tolerance is a feature).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                end_line: line,
                text: b[start..i].iter().collect(),
            });
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start_line = line;
            let mut depth = 1u32;
            let mut text = String::new();
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    text.push_str("/*");
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    text.push(b[i]);
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                end_line: line,
                text,
            });
            continue;
        }
        // String literal.
        if c == '"' {
            let l = line;
            i = scan_string(&b, i, &mut line);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line: l,
            });
            continue;
        }
        // Lifetime vs. char literal.
        if c == '\'' {
            let l = line;
            let is_lifetime = i + 1 < n
                && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                && !(i + 2 < n && b[i + 2] == '\'');
            if is_lifetime {
                let mut j = i + 1;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[i + 1..j].iter().collect(),
                    line: l,
                });
                i = j;
            } else {
                i += 1;
                if i < n && b[i] == '\\' {
                    i += 2;
                    while i < n && b[i] != '\'' {
                        i += 1;
                    }
                } else if i < n {
                    i += 1;
                }
                if i < n && b[i] == '\'' {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: l,
                });
            }
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let s = i;
            while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: b[s..i].iter().collect(),
                line,
            });
            continue;
        }
        // Identifier / keyword (maybe a raw-string or raw-ident prefix).
        if c.is_alphabetic() || c == '_' {
            let s = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            let text: String = b[s..i].iter().collect();
            let raw_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb");
            if raw_prefix && i < n && (b[i] == '"' || b[i] == '#') {
                let l = line;
                if text.contains('r') && b[i] == '#' {
                    // Raw string `r#"…"#` — or a raw identifier `r#name`.
                    let mut j = i;
                    let mut hashes = 0usize;
                    while j < n && b[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < n && b[j] == '"' {
                        i = scan_raw_string(&b, j, hashes, &mut line);
                        out.toks.push(Tok {
                            kind: TokKind::Str,
                            text: String::new(),
                            line: l,
                        });
                    } else {
                        // Raw identifier: consume `#ident`, emit the name.
                        i += 1;
                        let s2 = i;
                        while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                            i += 1;
                        }
                        out.toks.push(Tok {
                            kind: TokKind::Ident,
                            text: b[s2..i].iter().collect(),
                            line: l,
                        });
                    }
                } else if text.contains('r') {
                    // `r"…"` — raw, no hashes.
                    i = scan_raw_string(&b, i, 0, &mut line);
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: l,
                    });
                } else {
                    // `b"…"` — ordinary escape rules.
                    i = scan_string(&b, i, &mut line);
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: l,
                    });
                }
                continue;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            continue;
        }
        out.toks.push(Tok {
            kind: TokKind::Punct(c),
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Scans a `"…"` string starting at the opening quote; returns the
/// index just past the closing quote.
fn scan_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = b.len();
    i += 1;
    while i < n {
        match b[i] {
            '\\' => i += 2,
            '"' => {
                i += 1;
                break;
            }
            ch => {
                if ch == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    i.min(n)
}

/// Scans a raw string whose opening quote is at `i`, closed by a
/// quote followed by `hashes` `#`s.
fn scan_raw_string(b: &[char], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    let n = b.len();
    i += 1;
    while i < n {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < n && seen < hashes && b[j] == '#' {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    n
}
