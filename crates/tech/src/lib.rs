//! # lnoc-tech — 45 nm predictive device and interconnect models
//!
//! This crate provides the technology substrate for the reproduction of
//! *"Leakage-Aware Interconnect for On-Chip Network"* (Tsai, Narayanan,
//! Xie, Irwin — DATE 2005):
//!
//! * [`units`] — strongly-typed physical quantities ([`Volts`], [`Amps`],
//!   [`Seconds`], …) so that device parameters cannot be mixed up silently.
//! * [`device`] — an analytic, smooth (EKV-interpolation) MOSFET
//!   large-signal model with explicit subthreshold and gate (direct
//!   tunnelling) leakage components, in both polarities and two threshold
//!   classes (nominal and high Vt). This replaces the BSIM4/BPTM device
//!   cards the paper used in SPICE.
//! * [`node45`] — the 45 nm parameter set used throughout the
//!   reproduction, plus process corners.
//! * [`interconnect`] — ITRS-style wire geometry tables and BPTM-style
//!   per-unit-length R/C predictive formulas, and a [`interconnect::Wire`]
//!   helper that expands a wire into an RC π-ladder.
//!
//! ## Example
//!
//! ```
//! use lnoc_tech::node45::Node45;
//! use lnoc_tech::device::{Polarity, VtClass};
//! use lnoc_tech::units::Volts;
//!
//! let tech = Node45::tt();
//! let nmos = tech.mos(Polarity::Nmos, VtClass::Nominal);
//! // Off-state subthreshold leakage of a 10:1 device at Vds = Vdd:
//! let w = 10.0 * tech.l_min();
//! let ioff = nmos.ids(w, Volts(0.0), tech.vdd(), Volts(0.0));
//! assert!(ioff.0 > 0.0, "an off NMOS still leaks");
//! let ion = nmos.ids(w, tech.vdd(), tech.vdd(), Volts(0.0));
//! assert!(ion.0 / ioff.0 > 1.0e3, "on/off ratio must be large");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod constants;
pub mod corners;
pub mod device;
pub mod error;
pub mod interconnect;
pub mod node45;
pub mod units;

pub use corners::{Corner, Temperature};
pub use device::{MosModel, MosOp, Polarity, VtClass};
pub use error::TechError;
pub use node45::Node45;
pub use units::{Amps, Farads, Hertz, Joules, Meters, Ohms, Seconds, Volts, Watts};
