//! The 45 nm technology node used throughout the reproduction.
//!
//! The paper implemented its crossbars "in 45nm technology" with device
//! behaviour from the Berkeley Predictive Technology Model and wire
//! geometry from the ITRS roadmap. We encode an equivalent predictive
//! parameter set here. The absolute values are representative of a
//! high-performance 45 nm process (Vdd 1.0 V, Ion ≈ 1 mA/µm,
//! Ioff ≈ tens of nA/µm, gate leakage comparable to subthreshold); the
//! *ratios* between nominal-Vt and high-Vt flavours are what carry the
//! paper's results, and those are set by ΔVth ≈ 0.15 V exactly as a
//! dual-Vt menu would provide.

use crate::corners::{Corner, Temperature};
use crate::device::{MosModel, MosParams, Polarity, VtClass};
use crate::interconnect::{LayerClass, WireGeometry};
use crate::units::{Meters, Volts};
use serde::{Deserialize, Serialize};

/// Difference between the high-Vt and nominal-Vt threshold magnitudes.
pub const DUAL_VT_DELTA: f64 = 0.15;

/// The 45 nm technology descriptor: supply, device cards per flavour,
/// wire geometry per layer class, process corner.
///
/// # Example
///
/// ```
/// use lnoc_tech::node45::Node45;
/// use lnoc_tech::device::{Polarity, VtClass};
///
/// let tech = Node45::tt();
/// let nominal = tech.mos(Polarity::Nmos, VtClass::Nominal);
/// let high = tech.mos(Polarity::Nmos, VtClass::High);
/// assert!(high.vth().0 > nominal.vth().0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node45 {
    corner: Corner,
    temperature: Temperature,
    vdd: f64,
    l_min: f64,
}

impl Node45 {
    /// Typical corner at room temperature — the paper's evaluation point.
    pub fn tt() -> Self {
        Self::new(Corner::Tt, Temperature::ROOM)
    }

    /// Builds the node at an explicit corner and temperature.
    pub fn new(corner: Corner, temperature: Temperature) -> Self {
        Node45 {
            corner,
            temperature,
            vdd: 1.0,
            l_min: 45.0e-9,
        }
    }

    /// Returns a copy of this node at a different temperature.
    pub fn at_temperature(&self, temperature: Temperature) -> Self {
        Node45 {
            temperature,
            ..self.clone()
        }
    }

    /// Nominal supply voltage.
    pub fn vdd(&self) -> Volts {
        Volts(self.vdd)
    }

    /// Minimum (drawn) channel length.
    pub fn l_min(&self) -> f64 {
        self.l_min
    }

    /// Minimum channel length as a typed quantity.
    pub fn l_min_meters(&self) -> Meters {
        Meters(self.l_min)
    }

    /// Process corner.
    pub fn corner(&self) -> Corner {
        self.corner
    }

    /// Characterization temperature.
    pub fn temperature(&self) -> Temperature {
        self.temperature
    }

    /// The raw parameter card for a device flavour at this corner.
    pub fn mos_params(&self, polarity: Polarity, vt_class: VtClass) -> MosParams {
        let (vth_base, k_prime_base) = match polarity {
            // Calibrated to the 2005-era BPTM *predictions* for a 45 nm
            // HP process (the models the paper used): Ion ≈ 1.2 mA/µm
            // and a room-temperature Ioff of a few hundred nA/µm — the
            // pre-high-k, pre-strain forecasts were far leakier than
            // the silicon that eventually shipped, and the paper's
            // 1–3-cycle minimum idle times only make sense at those
            // leakage levels (see EXPERIMENTS.md).
            Polarity::Nmos => (0.22, 2.9e-4),
            Polarity::Pmos => (0.24, 1.35e-4),
        };
        let vth_class_shift = match vt_class {
            VtClass::Nominal => 0.0,
            VtClass::High => DUAL_VT_DELTA,
        };
        // Gate tunnelling density: thicker effective oxide on high-Vt
        // devices (as in real dual-Vt menus) also trims gate leakage.
        // 2005 ITRS/BPTM gate-current density forecasts for ~1.1 nm
        // SiON: ~10³ A/cm² at full bias (high-k moved real silicon two
        // orders below this, but the paper's DFC mechanism — grounding
        // node A to kill pass-transistor gate leakage — presumes the
        // forecast levels).
        let jg0 = match vt_class {
            VtClass::Nominal => 1.2e7,
            VtClass::High => 2.5e6,
        };
        MosParams {
            polarity,
            vt_class,
            vth0: vth_base + vth_class_shift + self.corner.vth_shift(),
            n_slope: 1.5,
            dibl: 0.05,
            body_k: 0.10,
            k_prime: k_prime_base * self.corner.k_prime_factor(),
            theta: 0.30,
            length: self.l_min,
            cox_per_area: 0.0288,      // ≈ 1.2 nm effective oxide
            c_overlap_per_w: 3.0e-10,  // 0.30 fF/µm
            c_junction_per_w: 8.0e-10, // 0.80 fF/µm
            jg0,
            jg_slope: 4.6, // two decades per volt of oxide bias
            jg_vref: self.vdd,
            junction_leak_per_w: 2.0e-5,
            vth_tc: 7.0e-4,
            t_ref: 300.15,
        }
    }

    /// A ready-to-evaluate model for a device flavour at the node's
    /// default temperature.
    ///
    /// # Panics
    ///
    /// Never panics for the built-in cards (they always validate).
    pub fn mos(&self, polarity: Polarity, vt_class: VtClass) -> MosModel {
        self.mos_at(polarity, vt_class, self.temperature.kelvin())
    }

    /// A model for a device flavour at an explicit temperature (K).
    pub fn mos_at(&self, polarity: Polarity, vt_class: VtClass, temperature_k: f64) -> MosModel {
        MosModel::new(self.mos_params(polarity, vt_class), temperature_k)
            .expect("built-in 45 nm device cards are always valid")
    }

    /// ITRS-style wire geometry for a layer class at this node.
    pub fn wire_geometry(&self, class: LayerClass) -> WireGeometry {
        // ITRS 2003-era 45 nm generation numbers: M1 half-pitch 45 nm;
        // intermediate wires ~1.6× M1; global wires ~3× M1, thicker and
        // in low-k dielectric (k_eff ≈ 2.8 with manufacturing margins).
        match class {
            LayerClass::Local => WireGeometry {
                class,
                width: 45.0e-9,
                spacing: 45.0e-9,
                thickness: 81.0e-9, // AR 1.8
                height_above_plane: 90.0e-9,
                dielectric_k: 2.9,
                resistivity: crate::constants::RHO_COPPER_EFF,
            },
            LayerClass::Intermediate => WireGeometry {
                class,
                width: 70.0e-9,
                spacing: 70.0e-9,
                thickness: 140.0e-9, // AR 2.0
                height_above_plane: 130.0e-9,
                dielectric_k: 2.8,
                resistivity: crate::constants::RHO_COPPER_EFF,
            },
            LayerClass::Global => WireGeometry {
                class,
                width: 135.0e-9,
                spacing: 135.0e-9,
                thickness: 300.0e-9, // AR 2.2
                height_above_plane: 240.0e-9,
                dielectric_k: 2.8,
                resistivity: crate::constants::RHO_COPPER_EFF,
            },
        }
    }
}

impl Default for Node45 {
    fn default() -> Self {
        Self::tt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_vt_delta_applied() {
        let tech = Node45::tt();
        let lo = tech.mos_params(Polarity::Nmos, VtClass::Nominal);
        let hi = tech.mos_params(Polarity::Nmos, VtClass::High);
        assert!((hi.vth0 - lo.vth0 - DUAL_VT_DELTA).abs() < 1e-12);
    }

    #[test]
    fn pmos_weaker_than_nmos() {
        let tech = Node45::tt();
        let n = tech.mos_params(Polarity::Nmos, VtClass::Nominal);
        let p = tech.mos_params(Polarity::Pmos, VtClass::Nominal);
        assert!(p.k_prime < n.k_prime);
    }

    #[test]
    fn corners_shift_vth_coherently() {
        let ff = Node45::new(Corner::Ff, Temperature::ROOM);
        let ss = Node45::new(Corner::Ss, Temperature::ROOM);
        let vff = ff.mos_params(Polarity::Nmos, VtClass::Nominal).vth0;
        let vss = ss.mos_params(Polarity::Nmos, VtClass::Nominal).vth0;
        assert!(vff < vss);
    }

    #[test]
    fn wire_classes_get_wider_up_the_stack() {
        let tech = Node45::tt();
        let local = tech.wire_geometry(LayerClass::Local);
        let inter = tech.wire_geometry(LayerClass::Intermediate);
        let global = tech.wire_geometry(LayerClass::Global);
        assert!(local.width < inter.width);
        assert!(inter.width < global.width);
        // Wider+thicker wires ⇒ lower resistance per length.
        assert!(global.resistance_per_length().0 < inter.resistance_per_length().0);
    }

    #[test]
    fn default_is_typical_room() {
        let tech = Node45::default();
        assert_eq!(tech.corner(), Corner::Tt);
        assert!((tech.temperature().kelvin() - 300.15).abs() < 1e-9);
    }

    #[test]
    fn high_vt_has_lower_gate_leak_density() {
        let tech = Node45::tt();
        let lo = tech.mos_params(Polarity::Nmos, VtClass::Nominal);
        let hi = tech.mos_params(Polarity::Nmos, VtClass::High);
        assert!(hi.jg0 < lo.jg0);
    }
}
