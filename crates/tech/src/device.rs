//! Analytic MOSFET large-signal model.
//!
//! The paper evaluated its crossbar schemes in SPICE with BPTM 45 nm
//! device cards. We replace that with a *smooth, symmetric,
//! EKV-interpolation* compact model: a single continuous equation covers
//! weak inversion (subthreshold leakage), moderate inversion and strong
//! inversion (drive current), which is exactly the property a
//! Newton–Raphson circuit solver needs, and which carries the two
//! first-order behaviours the paper's conclusions rest on:
//!
//! 1. raising Vth by ΔV reduces subthreshold leakage by
//!    `exp(ΔV / (n·vT))` (decades per ~100 mV) while reducing drive
//!    current only polynomially, and
//! 2. gate (direct-tunnelling) leakage depends exponentially on the
//!    voltage across the oxide, so discharging a floating internal node
//!    (the DFC sleep transistor pulling node A to GND) suppresses the
//!    gate leakage of the off pass transistors.
//!
//! The channel current uses the EKV interpolation
//!
//! ```text
//! I_ds = I_S · [ F((v_p − v_s)/v_T) − F((v_p − v_d)/v_T) ]
//! F(u)  = ln²(1 + e^(u/2)),     v_p = (v_g − V_th,eff) / n
//! ```
//!
//! with all node voltages bulk-referenced, which makes the model
//! source/drain symmetric — essential for the *pass transistors* in the
//! crossbar matrix, which conduct in both directions.

use crate::constants::{thermal_voltage, ROOM_TEMPERATURE_K};
use crate::units::{Amps, Farads, Volts};
use serde::{Deserialize, Serialize};

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// N-channel device (bulk tied to ground rail by convention).
    Nmos,
    /// P-channel device (bulk tied to the supply rail by convention).
    Pmos,
}

impl Polarity {
    /// Sign convention multiplier: `+1` for NMOS, `-1` for PMOS.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Polarity::Nmos => 1.0,
            Polarity::Pmos => -1.0,
        }
    }
}

/// Threshold-voltage class in a dual-Vt process.
///
/// The paper's whole premise is the selective use of [`VtClass::High`]
/// devices off the critical path; [`VtClass::Nominal`] devices provide
/// the drive where timing is tight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VtClass {
    /// Nominal (low) threshold: fast, leaky.
    Nominal,
    /// High threshold: slower, 1–2 decades less subthreshold leakage.
    High,
}

impl VtClass {
    /// All classes, in increasing-Vth order.
    pub const ALL: [VtClass; 2] = [VtClass::Nominal, VtClass::High];
}

/// Raw parameter card for one (polarity × Vt class) device flavour.
///
/// All values are in SI base units. Instances are normally obtained from
/// [`crate::node45::Node45`] rather than constructed by hand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MosParams {
    /// Device polarity.
    pub polarity: Polarity,
    /// Threshold class.
    pub vt_class: VtClass,
    /// Zero-bias threshold voltage magnitude (V), always positive.
    pub vth0: f64,
    /// Subthreshold slope factor `n` (dimensionless, 1.2–1.6 typical).
    pub n_slope: f64,
    /// DIBL coefficient (V of Vth shift per V of |Vds|).
    pub dibl: f64,
    /// First-order body-effect coefficient (V of Vth shift per V of
    /// reverse source-bulk bias).
    pub body_k: f64,
    /// Process transconductance µ·Cox (A/V²) at the reference temperature.
    pub k_prime: f64,
    /// Mobility-degradation coefficient θ (1/V).
    pub theta: f64,
    /// Drawn channel length (m).
    pub length: f64,
    /// Gate-oxide capacitance per area (F/m²).
    pub cox_per_area: f64,
    /// Gate-to-source/drain overlap capacitance per width (F/m).
    pub c_overlap_per_w: f64,
    /// Junction (diffusion) capacitance per width (F/m), lumping area and
    /// sidewall terms for a minimum-length diffusion.
    pub c_junction_per_w: f64,
    /// Gate direct-tunnelling current density (A/m²) at oxide voltage
    /// equal to `jg_vref`.
    pub jg0: f64,
    /// Exponential slope of gate tunnelling vs oxide voltage (1/V).
    pub jg_slope: f64,
    /// Reference oxide voltage for `jg0` (V), normally Vdd.
    pub jg_vref: f64,
    /// Reverse-bias junction leakage per width (A/m).
    pub junction_leak_per_w: f64,
    /// Vth temperature coefficient (V/K, positive = Vth drops as T rises).
    pub vth_tc: f64,
    /// Reference temperature for `k_prime` and `vth0` (K).
    pub t_ref: f64,
}

impl MosParams {
    /// Validates physical sanity of the card.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TechError::InvalidParameter`] if any parameter is
    /// outside its meaningful range.
    pub fn validate(&self) -> Result<(), crate::TechError> {
        use crate::TechError::InvalidParameter;
        let positive: [(&'static str, f64); 6] = [
            ("vth0", self.vth0),
            ("n_slope", self.n_slope),
            ("k_prime", self.k_prime),
            ("length", self.length),
            ("cox_per_area", self.cox_per_area),
            ("t_ref", self.t_ref),
        ];
        for (name, value) in positive {
            if value <= 0.0 || !value.is_finite() {
                return Err(InvalidParameter {
                    name,
                    value,
                    constraint: "must be positive and finite",
                });
            }
        }
        if self.n_slope < 1.0 {
            return Err(InvalidParameter {
                name: "n_slope",
                value: self.n_slope,
                constraint: "subthreshold slope factor must be ≥ 1",
            });
        }
        if self.dibl < 0.0 || self.dibl > 0.5 {
            return Err(InvalidParameter {
                name: "dibl",
                value: self.dibl,
                constraint: "must be in [0, 0.5]",
            });
        }
        Ok(())
    }
}

/// Numerically safe softplus: `ln(1 + e^x)`.
#[inline]
fn softplus(x: f64) -> f64 {
    if x > 35.0 {
        x
    } else if x < -35.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Numerically safe logistic sigmoid `σ(x) = 1 / (1 + e^(−x))` — the
/// derivative of [`softplus`].
#[inline]
fn sigmoid(x: f64) -> f64 {
    if x > 35.0 {
        1.0
    } else if x < -35.0 {
        x.exp()
    } else {
        1.0 / (1.0 + (-x).exp())
    }
}

/// `(F(u), dF/du)` of the EKV interpolation in one pass:
/// `F(u) = softplus(u/2)²`, so `F'(u) = softplus(u/2) · σ(u/2)`.
#[inline]
fn ekv_f_grad(u: f64) -> (f64, f64) {
    let s = softplus(0.5 * u);
    (s * s, s * sigmoid(0.5 * u))
}

/// The EKV interpolation function `F(u) = ln²(1 + e^(u/2))`.
///
/// `F(u) → e^u` for `u ≪ 0` (weak inversion) and `F(u) → u²/4` for
/// `u ≫ 0` (strong inversion).
#[inline]
fn ekv_f(u: f64) -> f64 {
    let l = softplus(0.5 * u);
    l * l
}

/// A MOSFET model instance: a parameter card evaluated at a temperature.
///
/// Cheap to construct and `Copy`-free by design (holds the card by value);
/// clone freely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MosModel {
    params: MosParams,
    temperature: f64,
    /// Cached thermal voltage at `temperature`.
    v_t: f64,
    /// Temperature-adjusted threshold magnitude.
    vth_t: f64,
    /// Temperature-adjusted transconductance.
    k_t: f64,
}

/// Small-signal + large-signal operating point of one device, as consumed
/// by the circuit solver's Newton stamps.
///
/// Sign convention: `i_d` is the current flowing **into the drain
/// terminal**; `i_g_s`/`i_g_d` flow **from the gate** to source/drain.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MosOp {
    /// Channel current into the drain (A). Negative for a conducting PMOS.
    pub i_d: f64,
    /// ∂i_d/∂v_g (transconductance, S).
    pub gm: f64,
    /// ∂i_d/∂v_d (output conductance, S).
    pub gds: f64,
    /// ∂i_d/∂v_s (S). Differentiated independently (not inferred from the
    /// other conductances), so the stamp is exact for the model.
    pub gms: f64,
    /// ∂i_d/∂v_b (body transconductance, S).
    pub gmb: f64,
    /// Gate-to-source tunnelling current (A), positive from gate to source.
    pub i_g_s: f64,
    /// Gate-to-drain tunnelling current (A), positive from gate to drain.
    pub i_g_d: f64,
    /// ∂i_g_s/∂(v_g − v_s) (S).
    pub g_gs: f64,
    /// ∂i_g_d/∂(v_g − v_d) (S).
    pub g_gd: f64,
}

/// Leakage breakdown of a single device in a static state.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LeakageBreakdown {
    /// Magnitude of the channel (subthreshold, or on-state) current (A).
    pub channel: Amps,
    /// Total gate tunnelling magnitude (A).
    pub gate: Amps,
    /// Junction reverse-bias leakage magnitude (A).
    pub junction: Amps,
}

impl LeakageBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> Amps {
        Amps(self.channel.0 + self.gate.0 + self.junction.0)
    }
}

/// Linearized terminal capacitances for one device, used by the transient
/// engine as constant (bias-independent) companions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosCaps {
    /// Gate–source capacitance (F).
    pub cgs: Farads,
    /// Gate–drain capacitance (F).
    pub cgd: Farads,
    /// Drain–bulk junction capacitance (F).
    pub cdb: Farads,
    /// Source–bulk junction capacitance (F).
    pub csb: Farads,
}

impl MosCaps {
    /// Total capacitance seen at the gate terminal.
    pub fn gate_total(&self) -> Farads {
        Farads(self.cgs.0 + self.cgd.0)
    }
}

impl MosModel {
    /// Builds a model from a parameter card at the given temperature (K).
    ///
    /// # Errors
    ///
    /// Propagates card validation failures.
    pub fn new(params: MosParams, temperature_k: f64) -> Result<Self, crate::TechError> {
        params.validate()?;
        if temperature_k <= 0.0 || !temperature_k.is_finite() {
            return Err(crate::TechError::InvalidParameter {
                name: "temperature_k",
                value: temperature_k,
                constraint: "must be positive and finite",
            });
        }
        let v_t = thermal_voltage(temperature_k);
        let vth_t = params.vth0 - params.vth_tc * (temperature_k - params.t_ref);
        let k_t = params.k_prime * (params.t_ref / temperature_k).powf(1.5);
        Ok(Self {
            params,
            temperature: temperature_k,
            v_t,
            vth_t,
            k_t,
        })
    }

    /// Builds the model at room temperature (300.15 K).
    ///
    /// # Errors
    ///
    /// Propagates card validation failures.
    pub fn at_room_temperature(params: MosParams) -> Result<Self, crate::TechError> {
        Self::new(params, ROOM_TEMPERATURE_K)
    }

    /// The parameter card.
    pub fn params(&self) -> &MosParams {
        &self.params
    }

    /// Evaluation temperature in kelvin.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Device polarity.
    pub fn polarity(&self) -> Polarity {
        self.params.polarity
    }

    /// Threshold class.
    pub fn vt_class(&self) -> VtClass {
        self.params.vt_class
    }

    /// Temperature-adjusted threshold magnitude (V).
    pub fn vth(&self) -> Volts {
        Volts(self.vth_t)
    }

    /// Channel current for an NMOS-equivalent device with bulk-referenced
    /// terminal voltages (internal kernel; polarity already folded in).
    fn ids_kernel(&self, w: f64, vgb: f64, vdb: f64, vsb: f64) -> f64 {
        let p = &self.params;
        // Symmetric DIBL: threshold drops with the drain-source spread.
        // Body effect (linearized): reverse bias on the effective source
        // (the lower of the two diffusion potentials) raises Vth.
        let v_sb_eff = vsb.min(vdb).max(0.0);
        let vth_eff = self.vth_t - p.dibl * (vdb - vsb).abs() + p.body_k * v_sb_eff;
        let v_p = (vgb - vth_eff) / p.n_slope;
        // Mobility degradation with effective vertical field.
        let v_ov = (vgb - vth_eff - vsb.min(vdb)).max(0.0);
        let k_eff = self.k_t / (1.0 + p.theta * v_ov);
        let i_s = 2.0 * p.n_slope * k_eff * (w / p.length) * self.v_t * self.v_t;
        let i_f = ekv_f((v_p - vsb) / self.v_t);
        let i_r = ekv_f((v_p - vdb) / self.v_t);
        i_s * (i_f - i_r)
    }

    /// Channel current into the drain, with **absolute** terminal
    /// voltages (any reference). `w` is the channel width in metres.
    ///
    /// For a PMOS the usual sign convention applies: a conducting PMOS
    /// has negative `i_d` (current flows out of the drain node).
    pub fn ids_terminals(&self, w: f64, vg: f64, vd: f64, vs: f64, vb: f64) -> f64 {
        match self.params.polarity {
            Polarity::Nmos => self.ids_kernel(w, vg - vb, vd - vb, vs - vb),
            Polarity::Pmos => -self.ids_kernel(w, vb - vg, vb - vd, vb - vs),
        }
    }

    /// [`Self::ids_kernel`] plus its analytic gradient
    /// `(∂i/∂vgb, ∂i/∂vdb, ∂i/∂vsb)` in one pass — the Newton hot path
    /// (one evaluation instead of nine finite-difference kernel calls).
    /// The model's `min`/`max`/`|·|` kinks use one-sided sub-gradients,
    /// which is what the finite differences smeared over anyway.
    fn ids_kernel_grad(&self, w: f64, vgb: f64, vdb: f64, vsb: f64) -> (f64, [f64; 3]) {
        let p = &self.params;
        let d = vdb - vsb;
        let s_d = if d > 0.0 {
            1.0
        } else if d < 0.0 {
            -1.0
        } else {
            0.0
        };
        // m = min(vsb, vdb); its gradient picks the vsb branch on ties,
        // matching `f64::min` which returns the first argument on equality.
        let (m, dm_dvsb, dm_dvdb) = if vsb <= vdb {
            (vsb, 1.0, 0.0)
        } else {
            (vdb, 0.0, 1.0)
        };
        let eff_on = m > 0.0;
        let v_sb_eff = if eff_on { m } else { 0.0 };
        let vth_eff = self.vth_t - p.dibl * d.abs() + p.body_k * v_sb_eff;
        // ∂vth_eff/∂{vdb, vsb}; vgb never enters vth_eff.
        let body_d = if eff_on { p.body_k * dm_dvdb } else { 0.0 };
        let body_s = if eff_on { p.body_k * dm_dvsb } else { 0.0 };
        let dvth_dvdb = -p.dibl * s_d + body_d;
        let dvth_dvsb = p.dibl * s_d + body_s;

        let n = p.n_slope;
        let vp = (vgb - vth_eff) / n;
        let dvp = [1.0 / n, -dvth_dvdb / n, -dvth_dvsb / n]; // ∂vp/∂{vgb,vdb,vsb}

        let v_ov_raw = vgb - vth_eff - m;
        let v_ov = v_ov_raw.max(0.0);
        let dov = if v_ov_raw > 0.0 {
            [1.0, -dvth_dvdb - dm_dvdb, -dvth_dvsb - dm_dvsb]
        } else {
            [0.0, 0.0, 0.0]
        };
        let denom = 1.0 + p.theta * v_ov;
        let k_eff = self.k_t / denom;
        // ∂k_eff/∂x = −k_eff·θ/denom · ∂v_ov/∂x; i_s scales linearly.
        let i_s = 2.0 * n * k_eff * (w / p.length) * self.v_t * self.v_t;
        let dis_scale = -p.theta / denom; // ∂i_s/∂x = i_s · dis_scale · ∂v_ov/∂x

        let (f_f, df_f) = ekv_f_grad((vp - vsb) / self.v_t);
        let (f_r, df_r) = ekv_f_grad((vp - vdb) / self.v_t);
        let i = i_s * (f_f - f_r);

        let mut grad = [0.0; 3];
        // x order: vgb, vdb, vsb; δ-terms from the uf/ur arguments.
        let delta_u = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0]]; // [δ(x=vsb), δ(x=vdb)]
        for x in 0..3 {
            let duf = (dvp[x] - delta_u[x][0]) / self.v_t;
            let dur = (dvp[x] - delta_u[x][1]) / self.v_t;
            grad[x] = i * dis_scale * dov[x] + i_s * (df_f * duf - df_r * dur);
        }
        (i, grad)
    }

    /// Convenience wrapper: source-referenced voltages, bulk tied to
    /// source. Returns the drain current.
    ///
    /// For PMOS pass the *physical* (negative when on) `vgs`/`vds`.
    pub fn ids(&self, w: f64, vgs: Volts, vds: Volts, vsb: Volts) -> Amps {
        let vs = 0.0;
        let vb = vs - vsb.0 * self.params.polarity.sign();
        Amps(self.ids_terminals(w, vgs.0 + vs, vds.0 + vs, vs, vb))
    }

    /// Gate tunnelling current from gate toward a source/drain terminal,
    /// given the gate-to-terminal voltage. Positive = out of the gate.
    ///
    /// The density model is
    /// `J = jg0 · [exp(jg_slope·(|v| − jg_vref)) − exp(−jg_slope·jg_vref)]`,
    /// signed by the polarity of the oxide field and split half/half
    /// between source and drain sides by the caller. The subtracted
    /// offset makes the current vanish exactly at zero oxide bias while
    /// leaving the full-bias value ≈ `jg0` per unit area.
    fn gate_tunnel(&self, w: f64, v_g_x: f64) -> f64 {
        self.gate_tunnel_grad(w, v_g_x).0
    }

    /// Gate tunnelling current and its analytic conductance
    /// `∂i/∂(v_g − v_x)` in one pass.
    ///
    /// The density model is
    /// `J = jg0 · [exp(jg_slope·(|v| − jg_vref)) − exp(−jg_slope·jg_vref)]`,
    /// signed by the oxide-field polarity. The current is an even-slope
    /// odd function, so its derivative is even in `v` and strictly
    /// positive below the clamp, zero above it.
    fn gate_tunnel_grad(&self, w: f64, v_g_x: f64) -> (f64, f64) {
        let p = &self.params;
        let area = 0.5 * w * p.length; // half the channel per terminal
        let zero_bias = (-p.jg_slope * p.jg_vref).exp();
        // Clamp the oxide bias at 2× the reference: keeps intermediate
        // Newton iterates (which can overshoot the rails) from blowing
        // the exponential out of float range while leaving the
        // physical 0..Vdd range untouched.
        let clamp = 2.0 * p.jg_vref;
        let clamped = v_g_x.abs() >= clamp;
        let v_eff = v_g_x.abs().min(clamp);
        let grown = (p.jg_slope * (v_eff - p.jg_vref)).exp();
        let magnitude = p.jg0 * (grown - zero_bias);
        let i = v_g_x.signum() * area * magnitude;
        let g = if clamped {
            0.0
        } else {
            area * p.jg0 * p.jg_slope * grown
        };
        (i, g)
    }

    /// Junction reverse-bias leakage into the bulk for one diffusion.
    fn junction_leak(&self, w: f64, v_xb: f64) -> f64 {
        // Reverse-biased for NMOS when v_xb > 0. Saturation-style model.
        let p = &self.params;
        let sign = self.params.polarity.sign();
        let v_rev = v_xb * sign;
        if v_rev <= 0.0 {
            0.0
        } else {
            p.junction_leak_per_w * w * (1.0 - (-v_rev / self.v_t).exp())
        }
    }

    /// Full operating-point evaluation with absolute terminal voltages.
    ///
    /// Current and all derivatives come from one analytic kernel pass —
    /// this is the single hottest function of the circuit engine (called
    /// per device per Newton iteration). [`Self::eval_fd`] keeps the
    /// original finite-difference evaluation as a cross-check oracle.
    pub fn eval(&self, w: f64, vg: f64, vd: f64, vs: f64, vb: f64) -> MosOp {
        // The kernel is bulk-referenced, so terminal derivatives map to
        // kernel gradients directly and ∂/∂vb = −Σ others exactly.
        let (i_d, gm, gds, gms) = match self.params.polarity {
            Polarity::Nmos => {
                let (i, g) = self.ids_kernel_grad(w, vg - vb, vd - vb, vs - vb);
                (i, g[0], g[1], g[2])
            }
            Polarity::Pmos => {
                // i = −K(vb−vg, vb−vd, vb−vs): the two sign flips cancel.
                let (i, g) = self.ids_kernel_grad(w, vb - vg, vb - vd, vb - vs);
                (-i, g[0], g[1], g[2])
            }
        };
        let gmb = -(gm + gds + gms);

        let (i_g_s, g_gs) = self.gate_tunnel_grad(w, vg - vs);
        let (i_g_d, g_gd) = self.gate_tunnel_grad(w, vg - vd);

        MosOp {
            i_d,
            gm,
            gds,
            gms,
            gmb,
            i_g_s,
            i_g_d,
            g_gs,
            g_gd,
        }
    }

    /// The original central-finite-difference evaluation, kept as the
    /// oracle the analytic [`Self::eval`] is verified against in tests.
    pub fn eval_fd(&self, w: f64, vg: f64, vd: f64, vs: f64, vb: f64) -> MosOp {
        const H: f64 = 1.0e-6;
        let i_d = self.ids_terminals(w, vg, vd, vs, vb);
        let gm = (self.ids_terminals(w, vg + H, vd, vs, vb)
            - self.ids_terminals(w, vg - H, vd, vs, vb))
            / (2.0 * H);
        let gds = (self.ids_terminals(w, vg, vd + H, vs, vb)
            - self.ids_terminals(w, vg, vd - H, vs, vb))
            / (2.0 * H);
        let gms = (self.ids_terminals(w, vg, vd, vs + H, vb)
            - self.ids_terminals(w, vg, vd, vs - H, vb))
            / (2.0 * H);
        let gmb = (self.ids_terminals(w, vg, vd, vs, vb + H)
            - self.ids_terminals(w, vg, vd, vs, vb - H))
            / (2.0 * H);

        let i_g_s = self.gate_tunnel(w, vg - vs);
        let i_g_d = self.gate_tunnel(w, vg - vd);
        let g_gs =
            (self.gate_tunnel(w, vg - vs + H) - self.gate_tunnel(w, vg - vs - H)) / (2.0 * H);
        let g_gd =
            (self.gate_tunnel(w, vg - vd + H) - self.gate_tunnel(w, vg - vd - H)) / (2.0 * H);

        MosOp {
            i_d,
            gm,
            gds,
            gms,
            gmb,
            i_g_s,
            i_g_d,
            g_gs,
            g_gd,
        }
    }

    /// Static leakage breakdown at the given absolute terminal voltages.
    pub fn leakage(&self, w: f64, vg: f64, vd: f64, vs: f64, vb: f64) -> LeakageBreakdown {
        let channel = self.ids_terminals(w, vg, vd, vs, vb).abs();
        let gate = self.gate_tunnel(w, vg - vs).abs() + self.gate_tunnel(w, vg - vd).abs();
        let junction = self.junction_leak(w, vd - vb).abs() + self.junction_leak(w, vs - vb).abs();
        LeakageBreakdown {
            channel: Amps(channel),
            gate: Amps(gate),
            junction: Amps(junction),
        }
    }

    /// Linearized terminal capacitances for a device of width `w`.
    pub fn capacitances(&self, w: f64) -> MosCaps {
        let p = &self.params;
        let c_ch = p.cox_per_area * w * p.length;
        let c_ov = p.c_overlap_per_w * w;
        let c_j = p.c_junction_per_w * w;
        MosCaps {
            cgs: Farads(0.5 * c_ch + c_ov),
            cgd: Farads(0.5 * c_ch + c_ov),
            cdb: Farads(c_j),
            csb: Farads(c_j),
        }
    }

    /// Saturation drive current at full gate overdrive (|Vgs| = |Vds| =
    /// `vdd`), a convenient strength metric for sizing.
    pub fn ion(&self, w: f64, vdd: Volts) -> Amps {
        match self.params.polarity {
            Polarity::Nmos => Amps(self.ids_terminals(w, vdd.0, vdd.0, 0.0, 0.0)),
            Polarity::Pmos => Amps(-self.ids_terminals(w, 0.0, 0.0, vdd.0, vdd.0)),
        }
    }

    /// Off-state channel leakage (|Vgs| = 0, |Vds| = `vdd`).
    pub fn ioff(&self, w: f64, vdd: Volts) -> Amps {
        match self.params.polarity {
            Polarity::Nmos => Amps(self.ids_terminals(w, 0.0, vdd.0, 0.0, 0.0)),
            Polarity::Pmos => Amps(-self.ids_terminals(w, vdd.0, 0.0, vdd.0, vdd.0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node45::Node45;

    fn nmos() -> MosModel {
        Node45::tt().mos(Polarity::Nmos, VtClass::Nominal)
    }

    fn nmos_hvt() -> MosModel {
        Node45::tt().mos(Polarity::Nmos, VtClass::High)
    }

    fn pmos() -> MosModel {
        Node45::tt().mos(Polarity::Pmos, VtClass::Nominal)
    }

    const W: f64 = 450.0e-9;

    #[test]
    fn analytic_eval_matches_finite_differences() {
        // The analytic gradients must agree with the central-difference
        // oracle across polarities, Vt classes, and a dense bias grid
        // (generic points — exact model kinks are smeared by FD anyway).
        let models = [nmos(), nmos_hvt(), pmos()];
        let grid = [0.03, 0.21, 0.47, 0.73, 0.99];
        for m in &models {
            for &vg in &grid {
                for &vd in &grid {
                    for &vs in &[0.01, 0.52] {
                        for &vb in &[0.0, 0.11] {
                            let a = m.eval(W, vg, vd, vs, vb);
                            let f = m.eval_fd(W, vg, vd, vs, vb);
                            let close = |x: f64, y: f64, what: &str| {
                                let tol = 1.0e-4 * y.abs().max(1.0e-12);
                                assert!(
                                    (x - y).abs() <= tol,
                                    "{what} @ ({vg},{vd},{vs},{vb}) {:?}: analytic {x:e} vs fd {y:e}",
                                    m.params.polarity
                                );
                            };
                            assert_eq!(a.i_d, f.i_d, "current paths must be identical");
                            close(a.gm, f.gm, "gm");
                            close(a.gds, f.gds, "gds");
                            close(a.gms, f.gms, "gms");
                            close(a.gmb, f.gmb, "gmb");
                            assert_eq!(a.i_g_s, f.i_g_s);
                            assert_eq!(a.i_g_d, f.i_g_d);
                            close(a.g_gs, f.g_gs, "g_gs");
                            close(a.g_gd, f.g_gd, "g_gd");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn ekv_f_limits() {
        // Weak inversion: F(u) ≈ e^u.
        let u = -10.0;
        assert!((ekv_f(u) / u.exp() - 1.0).abs() < 0.02);
        // Strong inversion: F(u) ≈ u²/4.
        let u = 40.0;
        assert!((ekv_f(u) / (u * u / 4.0) - 1.0).abs() < 0.15);
    }

    #[test]
    fn on_off_ratio_is_large() {
        let m = nmos();
        let ion = m.ion(W, Volts(1.0)).0;
        let ioff = m.ioff(W, Volts(1.0)).0;
        assert!(ion > 0.0 && ioff > 0.0);
        assert!(ion / ioff > 1.0e3, "Ion/Ioff = {}", ion / ioff);
    }

    #[test]
    fn high_vt_leaks_about_an_order_less() {
        let lo = nmos().ioff(W, Volts(1.0)).0;
        let hi = nmos_hvt().ioff(W, Volts(1.0)).0;
        let ratio = lo / hi;
        assert!(
            (5.0..3.0e3).contains(&ratio),
            "expected 5–3000× subthreshold reduction, got {ratio}"
        );
    }

    #[test]
    fn high_vt_still_drives_most_of_the_current() {
        let lo = nmos().ion(W, Volts(1.0)).0;
        let hi = nmos_hvt().ion(W, Volts(1.0)).0;
        let ratio = hi / lo;
        assert!(
            (0.4..1.0).contains(&ratio),
            "high-Vt drive should be a moderate fraction of nominal, got {ratio}"
        );
    }

    #[test]
    fn pmos_current_sign_convention() {
        let m = pmos();
        // Conducting PMOS: gate low, source at Vdd, drain low.
        let id = m.ids_terminals(W, 0.0, 0.0, 1.0, 1.0);
        assert!(id < 0.0, "conducting PMOS drain current must be negative");
    }

    #[test]
    fn channel_is_source_drain_symmetric() {
        let m = nmos();
        // Swap source/drain; current must reverse exactly.
        let fwd = m.ids_terminals(W, 1.0, 0.7, 0.2, 0.0);
        let rev = m.ids_terminals(W, 1.0, 0.2, 0.7, 0.0);
        assert!(
            (fwd + rev).abs() < 1e-12 * fwd.abs().max(1.0),
            "fwd {fwd} rev {rev}"
        );
    }

    #[test]
    fn monotonic_in_vgs() {
        let m = nmos();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=50 {
            let vg = i as f64 / 50.0;
            let id = m.ids_terminals(W, vg, 1.0, 0.0, 0.0);
            assert!(id > prev, "Ids must rise with Vgs (vg = {vg})");
            prev = id;
        }
    }

    #[test]
    fn subthreshold_slope_close_to_card() {
        let m = nmos();
        // Measure decades of current per volt well below threshold
        // (the window must stay ≳ 100 mV under Vth,eff, where the EKV
        // interpolation is purely exponential).
        let i1 = m.ids_terminals(W, 0.00, 1.0, 0.0, 0.0);
        let i2 = m.ids_terminals(W, 0.05, 1.0, 0.0, 0.0);
        let decades_per_volt = (i2 / i1).log10() / 0.05;
        let expected = 1.0 / (m.params().n_slope * m.v_t * std::f64::consts::LN_10);
        assert!(
            (decades_per_volt / expected - 1.0).abs() < 0.15,
            "slope {decades_per_volt} vs expected {expected}"
        );
    }

    #[test]
    fn dibl_raises_leakage_with_vds() {
        let m = nmos();
        let low = m.ids_terminals(W, 0.0, 0.1, 0.0, 0.0);
        let high = m.ids_terminals(W, 0.0, 1.0, 0.0, 0.0);
        assert!(high > low * 1.2, "DIBL must raise off-current with Vds");
    }

    #[test]
    fn gate_leak_grows_exponentially_with_bias() {
        let m = nmos();
        let low = m.leakage(W, 0.0, 0.5, 0.5, 0.0).gate.0;
        let high = m.leakage(W, 0.0, 1.0, 1.0, 0.0).gate.0;
        assert!(high > 2.0 * low, "gate leakage must grow with |Vgd|");
        let none = m.leakage(W, 0.0, 0.0, 0.0, 0.0).gate.0;
        assert!(none < 0.1 * low, "no oxide bias ⇒ negligible gate leakage");
    }

    #[test]
    fn leakage_total_adds_components() {
        let m = nmos();
        let l = m.leakage(W, 0.0, 1.0, 0.0, 0.0);
        let sum = l.channel.0 + l.gate.0 + l.junction.0;
        assert!((l.total().0 - sum).abs() <= 1e-18);
    }

    #[test]
    fn hotter_leaks_more() {
        let tech = Node45::tt();
        let cold = tech.mos_at(Polarity::Nmos, VtClass::Nominal, 300.0);
        let hot = tech.mos_at(Polarity::Nmos, VtClass::Nominal, 380.0);
        assert!(hot.ioff(W, Volts(1.0)).0 > 3.0 * cold.ioff(W, Volts(1.0)).0);
    }

    #[test]
    fn derivatives_match_secants() {
        let m = nmos();
        let op = m.eval(W, 0.6, 0.8, 0.1, 0.0);
        let h = 1e-4;
        let gm_ref = (m.ids_terminals(W, 0.6 + h, 0.8, 0.1, 0.0)
            - m.ids_terminals(W, 0.6 - h, 0.8, 0.1, 0.0))
            / (2.0 * h);
        assert!((op.gm - gm_ref).abs() < 1e-3 * gm_ref.abs().max(1e-12));
    }

    #[test]
    fn capacitances_scale_with_width() {
        let m = nmos();
        let c1 = m.capacitances(W);
        let c2 = m.capacitances(2.0 * W);
        assert!((c2.cgs.0 / c1.cgs.0 - 2.0).abs() < 1e-9);
        assert!((c2.cdb.0 / c1.cdb.0 - 2.0).abs() < 1e-9);
        assert!(c1.gate_total().0 > 0.0);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let tech = Node45::tt();
        let mut p = tech.mos(Polarity::Nmos, VtClass::Nominal).params().clone();
        p.vth0 = -0.1;
        assert!(MosModel::at_room_temperature(p).is_err());
    }

    #[test]
    fn ion_ballpark_for_45nm() {
        // HP 45 nm NMOS drives very roughly ~0.5–2 mA/µm.
        let m = nmos();
        let per_um = m.ion(1.0e-6, Volts(1.0)).0;
        assert!(
            (2e-4..3e-3).contains(&per_um),
            "Ion/µm = {per_um} out of 45 nm ballpark"
        );
    }

    #[test]
    fn ioff_ballpark_for_45nm() {
        // HP 45 nm NMOS subthreshold: very roughly 10–500 nA/µm at room T.
        let m = nmos();
        let per_um = m.ioff(1.0e-6, Volts(1.0)).0;
        assert!(
            (1e-9..2e-6).contains(&per_um),
            "Ioff/µm = {per_um} out of 45 nm ballpark"
        );
    }
}
