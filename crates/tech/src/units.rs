//! Strongly-typed physical quantities.
//!
//! Each quantity is a transparent newtype over `f64` in SI base units
//! (volts, amperes, seconds, farads, ohms, watts, metres, kelvin, hertz,
//! joules). The newtypes implement the arithmetic that is physically
//! meaningful in this codebase — same-type addition/subtraction, scaling
//! by `f64`, and the handful of cross-type products that come up in
//! delay/power analysis (`Ohms * Farads = Seconds`,
//! `Volts * Amps = Watts`, `Watts * Seconds = Joules`, …).
//!
//! The inner value is public (`quantity.0`) for the numeric kernels; the
//! types exist so *interfaces* cannot confuse, say, a threshold voltage
//! with a channel length.
//!
//! # Example
//!
//! ```
//! use lnoc_tech::units::{Ohms, Farads, Seconds};
//! let tau: Seconds = Ohms(1.0e3) * Farads(50.0e-15);
//! assert!((tau.0 - 50.0e-12).abs() < 1e-24);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// Returns the raw value in SI base units.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value of the quantity.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write_engineering(f, self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl From<f64> for $name {
            #[inline]
            fn from(v: f64) -> Self {
                Self(v)
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    Volts,
    "V"
);
quantity!(
    /// Electric current in amperes.
    Amps,
    "A"
);
quantity!(
    /// Time in seconds.
    Seconds,
    "s"
);
quantity!(
    /// Capacitance in farads.
    Farads,
    "F"
);
quantity!(
    /// Resistance in ohms.
    Ohms,
    "Ω"
);
quantity!(
    /// Power in watts.
    Watts,
    "W"
);
quantity!(
    /// Length in metres.
    Meters,
    "m"
);
quantity!(
    /// Absolute temperature in kelvin.
    Kelvin,
    "K"
);
quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// Energy in joules.
    Joules,
    "J"
);

/// Formats `value` with an engineering (SI) prefix, e.g. `61.40 ps`.
fn write_engineering(f: &mut fmt::Formatter<'_>, value: f64, unit: &str) -> fmt::Result {
    if value == 0.0 {
        return write!(f, "0 {unit}");
    }
    if !value.is_finite() {
        return write!(f, "{value} {unit}");
    }
    const PREFIXES: [(f64, &str); 9] = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "µ"),
        (1e-9, "n"),
        (1e-12, "p"),
    ];
    let magnitude = value.abs();
    for (scale, prefix) in PREFIXES {
        if magnitude >= scale {
            let precision = f.precision().unwrap_or(3);
            return write!(f, "{:.*} {}{}", precision, value / scale, prefix, unit);
        }
    }
    let precision = f.precision().unwrap_or(3);
    write!(f, "{:.*} f{}", precision, value / 1e-15, unit)
}

// --- Cross-type products used across the workspace -----------------------

impl Mul<Farads> for Ohms {
    type Output = Seconds;
    /// RC time constant.
    #[inline]
    fn mul(self, rhs: Farads) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

impl Mul<Ohms> for Farads {
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: Ohms) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

impl Mul<Amps> for Volts {
    type Output = Watts;
    /// Instantaneous power.
    #[inline]
    fn mul(self, rhs: Amps) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Volts> for Amps {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// Energy over an interval.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Volts> for Farads {
    type Output = Coulombs;
    /// Charge on a capacitor.
    #[inline]
    fn mul(self, rhs: Volts) -> Coulombs {
        Coulombs(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// Average power over an interval.
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    /// Breakeven time for an energy cost against a power savings rate.
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

quantity!(
    /// Electric charge in coulombs.
    Coulombs,
    "C"
);

impl Mul<Volts> for Coulombs {
    type Output = Joules;
    /// CV² style energies: `Q * V`.
    #[inline]
    fn mul(self, rhs: Volts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Volts> for Amps {
    type Output = Siemens;
    /// Conductance.
    #[inline]
    fn div(self, rhs: Volts) -> Siemens {
        Siemens(self.0 / rhs.0)
    }
}

quantity!(
    /// Conductance in siemens.
    Siemens,
    "S"
);

impl Siemens {
    /// Reciprocal resistance.
    #[inline]
    pub fn to_ohms(self) -> Ohms {
        Ohms(1.0 / self.0)
    }
}

impl Hertz {
    /// The period of one cycle at this frequency.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the frequency is not positive.
    #[inline]
    pub fn period(self) -> Seconds {
        debug_assert!(self.0 > 0.0, "period of a non-positive frequency");
        Seconds(1.0 / self.0)
    }
}

impl Seconds {
    /// The frequency whose period is this duration.
    #[inline]
    pub fn frequency(self) -> Hertz {
        debug_assert!(self.0 > 0.0, "frequency of a non-positive period");
        Hertz(1.0 / self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_product_is_time() {
        let tau = Ohms(2.0e3) * Farads(10.0e-15);
        assert!((tau.0 - 20.0e-12).abs() < 1e-26);
    }

    #[test]
    fn vi_product_is_power() {
        let p = Volts(1.0) * Amps(2.0e-3);
        assert!((p.0 - 2.0e-3).abs() < 1e-18);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Joules(4.0e-12) / Seconds(2.0e-9);
        assert!((p.0 - 2.0e-3).abs() < 1e-18);
    }

    #[test]
    fn like_ratio_is_dimensionless() {
        let r = Seconds(10.0e-12) / Seconds(5.0e-12);
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_uses_engineering_prefixes() {
        assert_eq!(format!("{:.2}", Seconds(61.4e-12)), "61.40 ps");
        assert_eq!(format!("{:.2}", Watts(182.81e-3)), "182.81 mW");
        assert_eq!(format!("{:.1}", Hertz(3.0e9)), "3.0 GHz");
        assert_eq!(format!("{}", Volts(0.0)), "0 V");
    }

    #[test]
    fn display_femto_fallback() {
        assert_eq!(format!("{:.1}", Farads(50.0e-15)), "50.0 fF");
    }

    #[test]
    fn period_frequency_roundtrip() {
        let f = Hertz(3.0e9);
        let t = f.period();
        assert!((t.frequency().0 - f.0).abs() / f.0 < 1e-12);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Watts = [Watts(1.0), Watts(2.5), Watts(0.5)].into_iter().sum();
        assert!((total.0 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn negation_and_abs() {
        let v = Volts(-0.3);
        assert!((v.abs().0 - 0.3).abs() < 1e-15);
        assert!(((-v).0 - 0.3).abs() < 1e-15);
    }

    #[test]
    fn min_max() {
        assert_eq!(Volts(1.0).max(Volts(2.0)), Volts(2.0));
        assert_eq!(Volts(1.0).min(Volts(2.0)), Volts(1.0));
    }
}
