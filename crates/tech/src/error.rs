//! Error type for technology-model construction and lookup.

use std::error::Error;
use std::fmt;

/// Errors produced while building or querying technology models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TechError {
    /// A device or wire parameter was outside its physically meaningful
    /// range (e.g. a non-positive width).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint, e.g. `"must be positive"`.
        constraint: &'static str,
    },
    /// A requested wire layer class is not defined for this node.
    UnknownLayer {
        /// The requested layer name.
        layer: String,
    },
}

impl fmt::Display for TechError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechError::InvalidParameter {
                name,
                value,
                constraint,
            } => {
                write!(f, "invalid parameter `{name}` = {value}: {constraint}")
            }
            TechError::UnknownLayer { layer } => {
                write!(f, "unknown interconnect layer `{layer}`")
            }
        }
    }
}

impl Error for TechError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = TechError::InvalidParameter {
            name: "width",
            value: -1.0,
            constraint: "must be positive",
        };
        let msg = e.to_string();
        assert!(msg.contains("width"));
        assert!(msg.contains("must be positive"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TechError>();
    }
}
